//! The [`Strategy`] trait and the built-in range / tuple / map strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// produces the value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map_fn`, mirroring `prop_map`.
    fn prop_map<O, F>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            map_fn,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map_fn: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map_fn)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty integer range strategy");
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $ty
                }
            }
        )*
    };
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// A fixed value as a strategy (mirrors `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
