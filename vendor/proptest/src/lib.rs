//! Offline stand-in for `proptest`.
//!
//! Implements the surface the workspace's property tests use — the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`],
//! [`strategy::Strategy`] with `prop_map`, [`any`], numeric range strategies,
//! tuple strategies, and [`collection::vec`] — backed by a fixed-seed
//! deterministic generator instead of shrinking-capable random exploration.
//! Every `cargo test` run therefore exercises the identical case set, which
//! is exactly what the workspace wants for reproducible CI.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a vector strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            !size.is_empty(),
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`proptest::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing one of a fixed set of values, mirroring
    /// `proptest::sample::select` for `Vec` inputs.
    pub struct Select<T: Clone>(Vec<T>);

    /// Builds a selection strategy over `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() as usize) % self.0.len()].clone()
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        // Finite values only; property tests here never want NaN/inf inputs.
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy wrapper returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Mirrors `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident
         ( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Fixed stream per property (named by the function) so every
                // run and every property sees its own reproducible cases.
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Mirrors `prop_assert!`; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
