//! Deterministic random source for the proptest stand-in.

/// SplitMix64-based deterministic generator.
///
/// Every property test derives its stream from the property's name, so test
/// order, thread count, and repetition never change the cases a property
/// sees.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed global seed; combined with the property name via FNV-1a.
    const GLOBAL_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Stream seeded from a property name.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ Self::GLOBAL_SEED,
        }
    }

    /// Stream from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 mantissa bits of a u64 → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error type mirroring `proptest::test_runner::TestCaseError` (unused by the
/// panic-based stub runner, kept for API familiarity).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
