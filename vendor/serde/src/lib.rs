//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derive macros from the stub `serde_derive`. Blanket implementations
//! make every type satisfy the traits, so generic bounds written against
//! them (should any appear later) keep compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for `serde::de`, so `use serde::de::DeserializeOwned` resolves.
pub mod de {
    pub use crate::DeserializeOwned;
}
