//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` so configuration
//! types keep the annotation they would carry with real serde; nothing ever
//! serializes a value. The derives therefore expand to nothing, which keeps
//! the build dependency-free and network-free. The `serde` helper attribute
//! is accepted (and ignored) so field annotations remain legal.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
