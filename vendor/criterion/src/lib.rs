//! Offline stand-in for `criterion`.
//!
//! Implements exactly the surface the workspace benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical analysis, each benchmark runs
//! a short calibration pass followed by a fixed number of timed batches and
//! prints the median per-iteration wall-clock time. That keeps
//! `cargo bench` useful for relative comparisons while building offline.

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// One benchmark's recorded result, as written to the JSON report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Full benchmark id (`group/id` for grouped benches).
    pub name: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: u128,
    /// Fastest batch's per-iteration time in nanoseconds.
    pub min_ns: u128,
    /// Slowest batch's per-iteration time in nanoseconds.
    pub max_ns: u128,
    /// Number of timed batches behind the statistics.
    pub samples: usize,
}

/// Results of every benchmark run by this process, in execution order.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Number of timed batches per benchmark.
const BATCHES: usize = 7;
/// Target wall-clock time per batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);

/// Minimal benchmark driver with criterion's method names.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), f);
        self
    }

    /// Opens a named group; group benchmarks print as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters_per_batch: u64,
    samples: Vec<Duration>,
    calibrating: bool,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_per_batch: 1,
            samples: Vec::new(),
            calibrating: true,
        }
    }

    /// Times `routine`, first calibrating the batch size so each timed batch
    /// runs for roughly `BATCH_TARGET`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.calibrating {
            // Double the batch size until one batch is long enough to time.
            let mut iters: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    std_black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= BATCH_TARGET || iters >= 1 << 24 {
                    self.iters_per_batch = iters.max(1);
                    break;
                }
                iters = iters.saturating_mul(2);
            }
            self.calibrating = false;
        }
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                std_black_box(routine());
            }
            let per_iter = start.elapsed() / u32::try_from(self.iters_per_batch).unwrap_or(1);
            self.samples.push(per_iter);
        }
    }
}

fn run_benchmark<F>(id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::new();
    f(&mut bencher);
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let min = bencher.samples.first().copied().unwrap_or_default();
    let max = bencher.samples.last().copied().unwrap_or_default();
    println!(
        "bench {id:<48} median {:>10}   min {:>10}   max {:>10}",
        format_duration(median),
        format_duration(min),
        format_duration(max)
    );
    if let Ok(mut records) = RECORDS.lock() {
        records.push(BenchRecord {
            name: id.to_string(),
            median_ns: median.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: bencher.samples.len(),
        });
    }
}

/// Writes every recorded benchmark to the JSON report named by the
/// `HYFLEX_BENCH_JSON` environment variable (no-op when unset). Called by
/// [`criterion_main!`] after all groups finish, so each bench binary emits
/// machine-readable results alongside the human-readable `bench …` lines.
///
/// The report is *merged*, not overwritten: records already present in the
/// file keep their entry unless this run re-recorded the same name (the new
/// result wins), so pointing several bench binaries at one path accumulates
/// a single workspace-wide `BENCH.json`.
pub fn write_json_report() {
    let Ok(path) = std::env::var("HYFLEX_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let fresh = match RECORDS.lock() {
        Ok(records) => records.clone(),
        Err(_) => return,
    };
    let mut merged: Vec<BenchRecord> = std::fs::read_to_string(&path)
        .map(|existing| parse_report(&existing))
        .unwrap_or_default();
    for record in fresh {
        if let Some(slot) = merged.iter_mut().find(|r| r.name == record.name) {
            *slot = record;
        } else {
            merged.push(record);
        }
    }
    let mut json = String::from("{\n  \"benches\": [\n");
    for (i, r) in merged.iter().enumerate() {
        let comma = if i + 1 == merged.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}{comma}\n",
            escape_json(&r.name),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&path, json) {
        eprintln!("criterion: failed to write {path}: {err}");
    }
}

/// Parses a report previously produced by [`write_json_report`] (one record
/// per line). Unrecognized lines are skipped, so a hand-edited or corrupt
/// file degrades to a partial merge instead of an error.
fn parse_report(text: &str) -> Vec<BenchRecord> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let body = line.strip_prefix('{')?.strip_suffix('}')?;
            let name_field = body.strip_prefix("\"name\":\"")?;
            let (name, rest) = split_escaped_string(name_field)?;
            let mut median_ns = None;
            let mut min_ns = None;
            let mut max_ns = None;
            let mut samples = None;
            for field in rest.trim_start_matches(',').split(',') {
                let (key, value) = field.split_once(':')?;
                let value = value.trim();
                match key.trim().trim_matches('"') {
                    "median_ns" => median_ns = value.parse().ok(),
                    "min_ns" => min_ns = value.parse().ok(),
                    "max_ns" => max_ns = value.parse().ok(),
                    "samples" => samples = value.parse().ok(),
                    _ => {}
                }
            }
            Some(BenchRecord {
                name,
                median_ns: median_ns?,
                min_ns: min_ns?,
                max_ns: max_ns?,
                samples: samples?,
            })
        })
        .collect()
}

/// Splits `"…\" suffix` at the first unescaped quote, unescaping the head.
fn split_escaped_string(text: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = text.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &text[i + 1..])),
            '\\' => {
                let (_, next) = chars.next()?;
                out.push(next);
            }
            _ => out.push(c),
        }
    }
    None
}

fn escape_json(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Matches criterion's simple `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Matches criterion's `criterion_main!(group, ...)` form. After every
/// group runs, the machine-readable JSON report is flushed (see
/// [`write_json_report`] and the `HYFLEX_BENCH_JSON` environment variable).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_parse() {
        let records = vec![
            BenchRecord {
                name: "group/bench_a".to_string(),
                median_ns: 1234,
                min_ns: 1200,
                max_ns: 1300,
                samples: 7,
            },
            BenchRecord {
                name: "odd \"name\"".to_string(),
                median_ns: 5,
                min_ns: 4,
                max_ns: 9,
                samples: 7,
            },
        ];
        let mut json = String::from("{\n  \"benches\": [\n");
        for (i, r) in records.iter().enumerate() {
            let comma = if i + 1 == records.len() { "" } else { "," };
            json.push_str(&format!(
                "    {{\"name\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}{comma}\n",
                escape_json(&r.name),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples
            ));
        }
        json.push_str("  ]\n}\n");
        assert_eq!(parse_report(&json), records);
    }

    #[test]
    fn parse_skips_unrecognized_lines() {
        let text = "{\n  \"benches\": [\nnot json\n  ]\n}\n";
        assert!(parse_report(text).is_empty());
    }
}
