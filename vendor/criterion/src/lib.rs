//! Offline stand-in for `criterion`.
//!
//! Implements exactly the surface the workspace benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical analysis, each benchmark runs
//! a short calibration pass followed by a fixed number of timed batches and
//! prints the median per-iteration wall-clock time. That keeps
//! `cargo bench` useful for relative comparisons while building offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Number of timed batches per benchmark.
const BATCHES: usize = 7;
/// Target wall-clock time per batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);

/// Minimal benchmark driver with criterion's method names.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), f);
        self
    }

    /// Opens a named group; group benchmarks print as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters_per_batch: u64,
    samples: Vec<Duration>,
    calibrating: bool,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_per_batch: 1,
            samples: Vec::new(),
            calibrating: true,
        }
    }

    /// Times `routine`, first calibrating the batch size so each timed batch
    /// runs for roughly `BATCH_TARGET`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.calibrating {
            // Double the batch size until one batch is long enough to time.
            let mut iters: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    std_black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= BATCH_TARGET || iters >= 1 << 24 {
                    self.iters_per_batch = iters.max(1);
                    break;
                }
                iters = iters.saturating_mul(2);
            }
            self.calibrating = false;
        }
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                std_black_box(routine());
            }
            let per_iter = start.elapsed() / u32::try_from(self.iters_per_batch).unwrap_or(1);
            self.samples.push(per_iter);
        }
    }
}

fn run_benchmark<F>(id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::new();
    f(&mut bencher);
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let min = bencher.samples.first().copied().unwrap_or_default();
    let max = bencher.samples.last().copied().unwrap_or_default();
    println!(
        "bench {id:<48} median {:>10}   min {:>10}   max {:>10}",
        format_duration(median),
        format_duration(min),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Matches criterion's simple `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Matches criterion's `criterion_main!(group, ...)` form.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
