//! Open-loop traffic and overload survival on a heterogeneous fleet.
//!
//! Builds a gamma-burst arrival trace (coefficient of variation 2) shaped
//! by a three-phase diurnal rate curve, and offers it — at roughly 1.5x
//! the fleet's sustainable rate — to a mixed fleet of two HyFlexPIM chips
//! and one ASADI† chip under EDF batching. Three operating points show the
//! survival toolkit working together:
//!
//! 1. **naive** — everything admitted, nothing shed: the queue eats the
//!    overload and the tail (p99/p99.9) explodes;
//! 2. **shed + token bucket** — admission capped near capacity with
//!    deadline-aware shedding behind it: goodput recovers because device
//!    time stops being spent on requests that were already dead;
//! 3. **autoscaled** — the same trace against a four-replica fleet that
//!    starts at one active chip and grows reactively as queues build.
//!
//! Run with: `cargo run --release --example open_loop_traffic`

use hyflex::baselines::{AcceleratorBackend, Asadi, AsadiPrecision};
use hyflex::pim::backend::{Backend, HyFlexPim};
use hyflex::runtime::{
    AdmissionPolicy, ArrivalProcess, AutoscalerConfig, OverloadConfig, OverloadReport, OverloadSim,
    RatePhase, RequestClass, RequestTrace, SchedulerConfig, SchedulingPolicy, TrafficConfig,
};
use hyflex::transformer::ModelConfig;
use std::sync::Arc;

fn trace(num_requests: usize) -> Result<RequestTrace, Box<dyn std::error::Error>> {
    Ok(RequestTrace::new(TrafficConfig {
        // Gamma inter-arrivals with shape 0.25: CV = 2, i.e. much burstier
        // than Poisson, under a morning/peak/night diurnal curve.
        process: ArrivalProcess::GammaBurst {
            qps: 5200.0,
            shape: 0.25,
        },
        rate_curve: vec![
            RatePhase::new("morning", 0.4, 0.8),
            RatePhase::new("peak", 0.4, 1.5),
            RatePhase::new("night", 0.4, 0.7),
        ],
        num_requests,
        classes: vec![
            RequestClass::new(64, 3.0).with_slo_ns(5e6), // 5 ms interactive SLO
            RequestClass::new(256, 1.0).with_priority(1),
        ],
        seed: 7,
        ..TrafficConfig::default()
    })?)
}

fn mixed_fleet() -> Result<Vec<Arc<dyn Backend>>, Box<dyn std::error::Error>> {
    let hyflex = HyFlexPim::paper(ModelConfig::bert_large(), 0.05)?;
    Ok(vec![
        Arc::new(hyflex.clone()),
        Arc::new(hyflex),
        Arc::new(AcceleratorBackend::new(
            Asadi::new(AsadiPrecision::Int8),
            ModelConfig::bert_large(),
        )),
    ])
}

fn row(label: &str, report: &OverloadReport) {
    println!(
        "{:>22} {:>9.0} {:>9.0} {:>10.1} {:>10.2} {:>10} {:>7} {:>9}",
        label,
        report.goodput_qps,
        report.achieved_qps,
        report.slo_attainment * 100.0,
        report.latency.p99_ms,
        report
            .latency
            .p999_ms
            .map_or_else(|| "n/a".to_string(), |ms| format!("{ms:.2}")),
        report.shed,
        report.rejected
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_requests = 40_000;
    let trace_mean = trace(num_requests)?.mean_qps();
    println!(
        "BERT-Large mix 3x N=64 (5 ms SLO) : 1x N=256; gamma-burst arrivals (CV 2) under a \
         diurnal curve, long-run mean {trace_mean:.0} QPS, {num_requests} requests\n"
    );
    println!(
        "{:>22} {:>9} {:>9} {:>10} {:>10} {:>10} {:>7} {:>9}",
        "operating point",
        "goodput",
        "achieved",
        "SLO att %",
        "p99 ms",
        "p99.9 ms",
        "shed",
        "rejected"
    );

    let scheduler = SchedulerConfig {
        policy: SchedulingPolicy::Edf,
        ..SchedulerConfig::default()
    };

    // 1. Naive: unbounded admission, no shedding — the closed-loop answer.
    let naive = OverloadSim::with_replicas(
        mixed_fleet()?,
        OverloadConfig {
            scheduler,
            ..OverloadConfig::new(trace(num_requests)?)
        },
    )?
    .run()?;
    row("naive (queue it all)", &naive);

    // 2. Survival: token-bucket admission near fleet capacity, plus
    //    deadline-aware shedding for what the bucket lets through.
    let survival = OverloadSim::with_replicas(
        mixed_fleet()?,
        OverloadConfig {
            scheduler,
            admission: AdmissionPolicy::TokenBucket {
                rate_qps: 4200.0,
                burst: 256.0,
            },
            shed: true,
            ..OverloadConfig::new(trace(num_requests)?)
        },
    )?
    .run()?;
    row("shed + token bucket", &survival);

    // 3. Autoscaled: a 4-replica fleet that starts at one active chip and
    //    grows when per-replica queues build up (50 ms actuation lag).
    let mut fleet = mixed_fleet()?;
    fleet.push(Arc::new(HyFlexPim::paper(ModelConfig::bert_large(), 0.05)?));
    let autoscaled = OverloadSim::with_replicas(
        fleet,
        OverloadConfig {
            scheduler,
            admission: AdmissionPolicy::QueueDepth {
                max_outstanding: 512,
            },
            shed: true,
            autoscaler: Some(AutoscalerConfig {
                min_replicas: 1,
                max_replicas: 4,
                check_interval_s: 0.02,
                actuation_lag_s: 0.05,
                scale_up_outstanding: 48.0,
                scale_down_outstanding: 4.0,
                ewma_alpha: None,
            }),
            ..OverloadConfig::new(trace(num_requests)?)
        },
    )?
    .run()?;
    row("autoscaled fleet", &autoscaled);
    println!(
        "\nautoscaler: peak {} of 4 replicas active, {} actuations",
        autoscaled.peak_active_replicas,
        autoscaled.autoscale_events.len()
    );

    println!("\nPer-phase breakdown (shed + token bucket):");
    println!(
        "{:>10} {:>9} {:>10} {:>7} {:>9} {:>10} {:>9}",
        "phase", "offered", "completed", "shed", "rejected", "SLO att %", "p99 ms"
    );
    for phase in &survival.phases {
        println!(
            "{:>10} {:>9} {:>10} {:>7} {:>9} {:>10.1} {:>9.2}",
            phase.label,
            phase.offered,
            phase.completed,
            phase.shed,
            phase.rejected,
            phase.slo_attainment * 100.0,
            phase.p99_ms
        );
    }
    println!(
        "\nDeterministic for a fixed seed; see crates/runtime/src/overload.rs for the engine."
    );
    Ok(())
}
