//! Compare every registered backend on one serving workload.
//!
//! Demonstrates the unified `Backend` API: `SystemBuilder` constructs a
//! validated, model-bound backend by name, and the same closed-loop
//! `ServingSim` machinery drives HyFlexPIM and all four baselines at a
//! matched offered load (see also the `fig19_backend_serving` binary).
//!
//! Run with: `cargo run --release --example backend_comparison`

use hyflex::baselines::{BackendRegistry, SystemBuilder};
use hyflex::runtime::{ServingConfig, ServingSim};
use hyflex::transformer::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seq_len = 128;
    let slc_rate = 0.05;

    // Anchor the offered load to HyFlexPIM's single-request service rate so
    // every backend faces the same traffic.
    let anchor = SystemBuilder::paper()
        .model(ModelConfig::bert_large())
        .slc_rate(slc_rate)
        .build()?
        .evaluate_batched(seq_len, 1)?;
    let offered_qps = 1e9 / anchor.makespan_ns;
    println!(
        "BERT-Large, N = {seq_len}, offered load {offered_qps:.0} QPS \
         (HyFlexPIM's single-request service rate), 400 Poisson arrivals\n"
    );
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "backend", "achieved QPS", "p50 ms", "p95 ms", "p99 ms", "util %"
    );

    for name in BackendRegistry::paper().names() {
        let backend = SystemBuilder::paper()
            .model(ModelConfig::bert_large())
            .slc_rate(slc_rate)
            .backend(name)
            .build()?;
        let label = backend.name().to_string();
        let report = ServingSim::with_backend(
            backend,
            ServingConfig {
                qps: offered_qps,
                num_requests: 400,
                seq_len,
                slc_rank_fraction: slc_rate,
                seed: 7,
                ..ServingConfig::default()
            },
        )?
        .run()?;
        println!(
            "{:<22} {:>12.0} {:>10.3} {:>10.3} {:>10.3} {:>8.1}",
            label,
            report.achieved_qps,
            report.latency.p50_ms,
            report.latency.p95_ms,
            report.latency.p99_ms,
            report.device_utilization * 100.0
        );
    }
    println!(
        "\nBackends that cannot sustain the offered load saturate: their tail \
         percentiles grow with queue depth. Deterministic for a fixed seed."
    );
    Ok(())
}
