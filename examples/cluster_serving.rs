//! Multi-chip serving: batched HyFlexPIM replicas behind a dispatcher.
//!
//! Offers one Poisson request stream — a 3:1 mix of short interactive
//! requests (with an SLO) and long batch requests — to clusters of 1, 2,
//! and 4 HyFlexPIM chips under round-robin and join-shortest-queue
//! dispatch. The offered load saturates a single chip, so adding replicas
//! raises sustained throughput and pulls tail latency and SLO attainment
//! back up; join-shortest-queue reacts to the work each request actually
//! carries, where round-robin only counts requests.
//!
//! Run with: `cargo run --release --example cluster_serving`

use hyflex::pim::backend::HyFlexPim;
use hyflex::runtime::{
    ClusterConfig, ClusterSim, DispatchPolicy, RequestClass, SchedulerConfig, ServingConfig,
};
use hyflex::transformer::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backend = HyFlexPim::paper(ModelConfig::bert_large(), 0.05)?;
    // ~3x one chip's sustained rate for this mix: a single chip saturates
    // hard, two chips still run overloaded, four have headroom.
    let offered_qps = 6000.0;
    let slo_ns = 5e6; // 5 ms interactive SLO
    println!(
        "BERT-Large, 5% SLC; mix: 3x N=64 (SLO {} ms) : 1x N=256; offered {offered_qps} QPS\n",
        slo_ns / 1e6
    );
    println!(
        "{:>6} {:>13} {:>12} {:>10} {:>10} {:>11} {:>10}",
        "chips", "dispatch", "QPS", "p50 ms", "p99 ms", "SLO att %", "util %"
    );
    for chips in [1usize, 2, 4] {
        for dispatch in DispatchPolicy::ALL {
            let config = ClusterConfig {
                chips,
                dispatch,
                serving: ServingConfig {
                    qps: offered_qps,
                    num_requests: 2000,
                    classes: vec![
                        RequestClass::new(64, 3.0).with_slo_ns(slo_ns),
                        RequestClass::new(256, 1.0).with_priority(1),
                    ],
                    slc_rank_fraction: 0.05,
                    seed: 7,
                    scheduler: SchedulerConfig::default(),
                    ..ServingConfig::default()
                },
            };
            let report = ClusterSim::with_backend(backend.clone(), config)?.run()?;
            println!(
                "{:>6} {:>13} {:>12.0} {:>10.3} {:>10.3} {:>11.1} {:>10.1}",
                chips,
                dispatch.name(),
                report.achieved_qps,
                report.latency.p50_ms,
                report.latency.p99_ms,
                report.slo_attainment * 100.0,
                report.mean_chip_utilization * 100.0
            );
        }
    }
    println!("\nDeterministic for a fixed seed; see crates/runtime/src/cluster.rs for the engine.");
    Ok(())
}
