//! Vision scenario: a tiny ViT on the synthetic CIFAR-10 stand-in, evaluated
//! under the hybrid SLC/MLC mapping, plus the ViT-Base paper-scale cost.
//!
//! Run with: `cargo run --release --example vit_inference`

use hyflex_pim::gradient_redistribution::GradientRedistribution;
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_pim::perf::{EvaluationPoint, PerformanceModel};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use hyflex_workloads::vision::{self, VisionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = vision::generate(&VisionConfig::default(), 99);
    let mut rng = Rng::seed_from(99);
    let mut model = TransformerModel::new(ModelConfig::tiny_vit(10), &mut rng)?;
    let trainer = Trainer::new(
        AdamWConfig {
            learning_rate: 3e-3,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        },
        16,
    );
    trainer.train(&mut model, &dataset.train, 5)?;
    let pipeline = GradientRedistribution {
        finetune_epochs: 2,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline.apply(&mut model, &dataset.train, &dataset.eval)?;
    println!(
        "tiny ViT accuracy: dense {:.3} -> factored+fine-tuned {:.3}",
        report.eval_dense.metrics.primary_value(),
        report.eval_finetuned.metrics.primary_value()
    );

    let simulator = NoiseSimulator::paper_default();
    for rate in [0.0, 0.05, 0.30, 1.0] {
        let spec = HybridMappingSpec::gradient_based(rate);
        let (eval, stats) =
            simulator.evaluate(&model, &report.layer_profiles, &spec, &dataset.eval, 5)?;
        println!(
            "  SLC rate {:>3.0}% -> accuracy {:.3} (SLC ranks {}, MLC ranks {})",
            rate * 100.0,
            eval.metrics.primary_value(),
            stats.slc_ranks,
            stats.mlc_ranks
        );
    }

    // Paper-scale ViT-Base inference cost (197 patch tokens).
    let perf = PerformanceModel::paper_default();
    let summary = perf.evaluate(&EvaluationPoint {
        model: ModelConfig::vit_base(),
        seq_len: 197,
        slc_rank_fraction: 0.05,
    })?;
    println!(
        "\nViT-Base @ 197 tokens, 5% SLC: {:.2} mJ, {:.1} us, {:.2} TOPS/mm^2",
        summary.energy.total_mj(),
        summary.latency.total_ns() / 1e3,
        summary.tops_per_mm2
    );
    Ok(())
}
