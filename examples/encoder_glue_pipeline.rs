//! Encoder scenario: sweep the seven synthetic GLUE tasks through the hybrid
//! SLC/MLC mapping at several protection rates (a miniature Figure 12(a)).
//!
//! Run with: `cargo run --release --example encoder_glue_pipeline`

use hyflex_pim::gradient_redistribution::GradientRedistribution;
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_tensor::rng::Rng;
use hyflex_tensor::stats::geometric_mean;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rates = [0.0, 0.05, 0.10, 0.30, 1.0];
    let simulator = NoiseSimulator::paper_default();
    println!("Synthetic GLUE sweep on the tiny encoder (metric: accuracy / Pearson)");
    println!(
        "{:<10} {:>9} {}",
        "Task",
        "baseline",
        rates
            .iter()
            .map(|r| format!("{:>8}", format!("{}%", (r * 100.0) as u32)))
            .collect::<String>()
    );

    let mut per_rate_scores: Vec<Vec<f64>> = vec![Vec::new(); rates.len()];
    for (index, task) in GlueTask::all().into_iter().enumerate() {
        let seed = 50 + index as u64;
        let dataset = glue::generate(task, &GlueConfig::default(), seed);
        let config = if task.is_regression() {
            ModelConfig::tiny_encoder_regression()
        } else {
            ModelConfig::tiny_encoder(2)
        };
        let mut rng = Rng::seed_from(seed);
        let mut model = TransformerModel::new(config, &mut rng)?;
        let trainer = Trainer::new(
            AdamWConfig {
                learning_rate: 3e-3,
                weight_decay: 0.0,
                ..AdamWConfig::default()
            },
            16,
        );
        trainer.train(&mut model, &dataset.train, 4)?;
        let pipeline = GradientRedistribution {
            finetune_epochs: 2,
            ..GradientRedistribution::new(trainer)
        };
        let report = pipeline.apply(&mut model, &dataset.train, &dataset.eval)?;

        let mut row = format!(
            "{:<10} {:>9.3}",
            task.name(),
            report.eval_finetuned.metrics.primary_value()
        );
        for (ri, &rate) in rates.iter().enumerate() {
            let spec = HybridMappingSpec::gradient_based(rate);
            let (eval, _) = simulator.evaluate(
                &model,
                &report.layer_profiles,
                &spec,
                &dataset.eval,
                seed * 10,
            )?;
            let score = eval.metrics.primary_value();
            per_rate_scores[ri].push(score.max(1e-3));
            row.push_str(&format!("{score:>8.3}"));
        }
        println!("{row}");
    }

    println!();
    for (ri, &rate) in rates.iter().enumerate() {
        println!(
            "geometric average across tasks at {:>3.0}% SLC: {:.3}",
            rate * 100.0,
            geometric_mean(&per_rate_scores[ri])
        );
    }
    Ok(())
}
