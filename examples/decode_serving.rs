//! Autoregressive decode serving with the KV cache in the analog arrays.
//!
//! Streams a Poisson prompt trace through the continuous-batching decode
//! engine three times — once per KV placement policy — and prints the
//! trade each policy makes when the cache competes for the same SLC/MLC
//! pool the weights live in:
//!
//! * **slc-only** — one write pulse per appended token, but 2x the cells:
//!   the pool overcommits first and evicts the most mid-decode requests;
//! * **mlc-only** — half the cells, but every append pays 4
//!   program-and-verify pulses on the decode critical path and 2x the
//!   write energy per value;
//! * **hybrid** — appends land in SLC (fast path), and tokens that cool
//!   past the hot window are demoted to MLC in the background: SLC speed
//!   at close to MLC density, the decode-time analogue of the paper's
//!   gradient-based SLC/MLC redistribution.
//!
//! Run with: `cargo run --release --example decode_serving`

use hyflex::pim::backend::{Backend, HyFlexPim};
use hyflex::runtime::{
    ArrivalProcess, DecodeConfig, DecodeSim, KvPlacementPolicy, RequestTrace, TrafficConfig,
};
use hyflex::transformer::ModelConfig;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backend: Arc<dyn Backend> = Arc::new(HyFlexPim::paper(ModelConfig::bert_large(), 0.05)?);
    let trace = RequestTrace::new(TrafficConfig {
        process: ArrivalProcess::Poisson { qps: 8000.0 },
        num_requests: 600,
        seq_len: 128,
        seed: 7,
        ..TrafficConfig::default()
    })?;

    println!("Decode serving: 600 prompts (N = 128) at 8000 QPS, 32 output tokens each");
    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>9} {:>9} {:>11}",
        "placement", "goodput", "tokens/s", "TPOT ms", "evicted", "demoted", "uJ/token"
    );
    for placement in [
        KvPlacementPolicy::SlcOnly,
        KvPlacementPolicy::MlcOnly,
        KvPlacementPolicy::Hybrid { hot_window: 16 },
    ] {
        let report = DecodeSim::new(
            Arc::clone(&backend),
            trace.clone(),
            DecodeConfig {
                placement,
                output_tokens: 32,
                kv_pus: 4,
                ..DecodeConfig::default()
            },
        )?
        .run()?;
        println!(
            "{:<12} {:>9.0} {:>10.0} {:>9.4} {:>9} {:>9} {:>11.1}",
            report.placement,
            report.goodput_rps,
            report.tokens_per_s,
            report.tpot.tpot_ms.unwrap_or(f64::NAN),
            report.evicted,
            report.demoted_tokens,
            report.energy_per_token_pj / 1e6,
        );
    }
    println!(
        "\nHybrid keeps slc-only's append latency at close to mlc-only's density:\n\
         fewer capacity evictions than slc-only, faster and cheaper tokens than mlc-only."
    );
    Ok(())
}
