//! Quickstart: the full HyFlexPIM flow on a tiny encoder in under a minute.
//!
//! 1. Generate a synthetic GLUE-like task and train a tiny encoder on it.
//! 2. Run SVD-based gradient redistribution (factorize, fine-tune, collect
//!    singular-value gradients).
//! 3. Map the factored model onto hybrid SLC/MLC RRAM at a 10 % protection
//!    rate and evaluate accuracy under the calibrated device noise.
//! 4. Ask the analytical performance model what the same mapping costs on the
//!    paper-scale BERT-Large configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use hyflex_pim::gradient_redistribution::GradientRedistribution;
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_pim::perf::{EvaluationPoint, PerformanceModel};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic task + tiny encoder.
    let dataset = glue::generate(GlueTask::Mrpc, &GlueConfig::default(), 42);
    let mut rng = Rng::seed_from(42);
    let mut model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng)?;
    let trainer = Trainer::new(
        AdamWConfig {
            learning_rate: 3e-3,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        },
        16,
    );
    trainer.train(&mut model, &dataset.train, 4)?;
    let dense_eval = trainer.evaluate(&model, &dataset.eval)?;
    println!(
        "dense model accuracy:            {:.3}",
        dense_eval.metrics.primary_value()
    );

    // 2. Gradient redistribution (Algorithm 1).
    let pipeline = GradientRedistribution {
        finetune_epochs: 2,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline.apply(&mut model, &dataset.train, &dataset.eval)?;
    println!(
        "factored + fine-tuned accuracy:  {:.3}",
        report.eval_finetuned.metrics.primary_value()
    );
    println!(
        "top-10% ranks hold {:.0}% of the singular-value gradient mass",
        100.0 * report.mean_concentration(0.10)
    );

    // 3. Hybrid SLC/MLC mapping with noise injection.
    let simulator = NoiseSimulator::paper_default();
    for rate in [0.0, 0.10, 1.0] {
        let spec = HybridMappingSpec::gradient_based(rate);
        let (noisy_eval, stats) =
            simulator.evaluate(&model, &report.layer_profiles, &spec, &dataset.eval, 7)?;
        println!(
            "SLC rate {:>3.0}% -> accuracy {:.3}  ({} SLC ranks / {} MLC ranks)",
            rate * 100.0,
            noisy_eval.metrics.primary_value(),
            stats.slc_ranks,
            stats.mlc_ranks
        );
    }

    // 4. What does this mapping cost at paper scale?
    let perf = PerformanceModel::paper_default();
    let summary = perf.evaluate(&EvaluationPoint {
        model: ModelConfig::bert_large(),
        seq_len: 128,
        slc_rank_fraction: 0.10,
    })?;
    println!(
        "BERT-Large @ N=128, 10% SLC: {:.2} mJ per inference, {:.1} us latency, {:.2} TOPS/mm^2",
        summary.energy.total_mj(),
        summary.latency.total_ns() / 1e3,
        summary.tops_per_mm2
    );
    Ok(())
}
