//! Decoder scenario: fine-tune a tiny decoder on the synthetic WikiText-2
//! stand-in, check how the hybrid mapping affects its loss, and estimate the
//! energy/latency of GPT-2-scale decoding on HyFlexPIM versus the baselines.
//!
//! Run with: `cargo run --release --example decoder_generation_energy`

use hyflex_baselines::BackendRegistry;
use hyflex_pim::gradient_redistribution::GradientRedistribution;
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::{AdamWConfig, ModelConfig, ModelGraph, Trainer};
use hyflex_workloads::lm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional part: tiny decoder on the synthetic corpus. The model is
    // assembled declaratively: the graph describes the stem/blocks/head
    // topology, `build` instantiates it (bit-identical to the direct
    // `TransformerModel::new` constructor for the same seed).
    let dataset = lm::wikitext2_dataset(77);
    let graph = ModelGraph::from_config(ModelConfig::tiny_decoder())?;
    print!("{}", graph.summary());
    let mut rng = Rng::seed_from(77);
    let mut model = graph.build(&mut rng)?;
    let trainer = Trainer::new(
        AdamWConfig {
            learning_rate: 3e-3,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        },
        8,
    );
    trainer.train(&mut model, &dataset.train, 5)?;
    let pipeline = GradientRedistribution {
        finetune_epochs: 2,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline.apply(&mut model, &dataset.train, &dataset.eval)?;
    println!(
        "tiny decoder eval loss: dense {:.3} -> factored+fine-tuned {:.3}",
        report.eval_dense.mean_loss, report.eval_finetuned.mean_loss
    );

    let simulator = NoiseSimulator::paper_default();
    for rate in [0.0, 0.20, 0.50, 1.0] {
        let spec = HybridMappingSpec::gradient_based(rate);
        let (eval, _) =
            simulator.evaluate(&model, &report.layer_profiles, &spec, &dataset.eval, 3)?;
        println!(
            "  SLC rate {:>3.0}% -> eval loss {:.3} (perplexity {:.2})",
            rate * 100.0,
            eval.mean_loss,
            eval.metrics.perplexity().unwrap_or(f64::NAN)
        );
    }

    // Architecture part: GPT-2-scale decoding cost at N = 1024.
    println!("\nGPT-2 @ N=1024, end-to-end energy per inference (paper-scale dimensions):");
    let gpt2 = ModelConfig::gpt2_small();
    for accelerator in BackendRegistry::paper().accelerators(0.20) {
        let energy = accelerator.end_to_end_energy(&gpt2, 1024)?;
        println!(
            "  {:<22} {:>10.2} mJ",
            accelerator.name(),
            energy.total_mj()
        );
    }
    Ok(())
}
