//! Closed-loop batched serving on the HyFlexPIM device model.
//!
//! Simulates Poisson request arrivals against the analytical BERT-Large
//! deployment (5 % SLC protection) for batch caps 1, 4, and 16, and reports
//! throughput plus p50/p95/p99 latency for each. Batching overlaps requests
//! in the layer pipeline, recovering the fill/drain overhead of a single
//! request (the `1 + (L-1)/N` latency factor): under an overload the
//! saturated throughput climbs from the single-request service rate toward
//! the pipeline's steady-state rate, and the queue drains faster, so every
//! latency percentile drops as the batch cap grows.
//!
//! Run with: `cargo run --release --example serving_sim`

use hyflex_pim::perf::EvaluationPoint;
use hyflex_pim::PerformanceModel;
use hyflex_runtime::{SchedulerConfig, ServingConfig, ServingSim};
use hyflex_transformer::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::bert_large();
    let seq_len = 128;
    let slc_rank_fraction = 0.05;
    let perf = PerformanceModel::paper_default();

    // Offer twice the single-request service rate: a saturating overload
    // under which the batch cap decides the sustained rate.
    let single = perf.evaluate_batched(
        &EvaluationPoint {
            model: model.clone(),
            seq_len,
            slc_rank_fraction,
        },
        1,
    )?;
    let offered_qps = 2.0 * 1e9 / single.makespan_ns;
    println!(
        "BERT-Large, N = {seq_len}, {:.0}% SLC — single-request latency {:.1} µs",
        slc_rank_fraction * 100.0,
        single.makespan_ns / 1e3
    );
    println!(
        "offered load: {offered_qps:.0} QPS (2x the single-request service rate), 4000 requests\n"
    );
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>11} {:>8}",
        "batch cap", "QPS", "p50 ms", "p95 ms", "p99 ms", "mean batch", "util %"
    );

    for max_batch_size in [1usize, 4, 16] {
        let config = ServingConfig {
            qps: offered_qps,
            num_requests: 4000,
            seq_len,
            slc_rank_fraction,
            seed: 7,
            scheduler: SchedulerConfig {
                max_batch_size,
                ..SchedulerConfig::default()
            },
            ..ServingConfig::default()
        };
        let report = ServingSim::new(perf.clone(), model.clone(), config)?.run()?;
        println!(
            "{:>10} {:>12.0} {:>10.3} {:>10.3} {:>10.3} {:>11.1} {:>8.1}",
            max_batch_size,
            report.achieved_qps,
            report.latency.p50_ms,
            report.latency.p95_ms,
            report.latency.p99_ms,
            report.mean_batch_size,
            report.device_utilization * 100.0
        );
    }
    println!("\nDeterministic for a fixed seed; see crates/runtime for the scheduler model.");
    Ok(())
}
