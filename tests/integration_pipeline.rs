//! End-to-end integration test: synthetic workload → training → gradient
//! redistribution → hybrid SLC/MLC noise injection → evaluation, plus the
//! architecture model on the same mapping.

use hyflex_pim::gradient_redistribution::GradientRedistribution;
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_pim::perf::{EvaluationPoint, PerformanceModel};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

fn trainer() -> Trainer {
    Trainer::new(
        AdamWConfig {
            learning_rate: 3e-3,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        },
        16,
    )
}

#[test]
fn full_software_hardware_pipeline_runs_end_to_end() {
    // 1. Train a tiny encoder on a synthetic GLUE task.
    let dataset = glue::generate(GlueTask::Qnli, &GlueConfig::default(), 7);
    let mut rng = Rng::seed_from(7);
    let mut model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
    let trainer = trainer();
    trainer.train(&mut model, &dataset.train, 4).unwrap();
    let dense = trainer.evaluate(&model, &dataset.eval).unwrap();
    assert!(
        dense.metrics.primary_value() > 0.6,
        "dense training should learn the synthetic task, got {:.3}",
        dense.metrics.primary_value()
    );

    // 2. Gradient redistribution.
    let pipeline = GradientRedistribution {
        finetune_epochs: 2,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline
        .apply(&mut model, &dataset.train, &dataset.eval)
        .unwrap();
    assert_eq!(report.layer_profiles.len(), 12);
    assert!(report.eval_finetuned.metrics.primary_value() > 0.55);

    // 3. Hybrid mapping + noise injection at the paper's protection range.
    let simulator = NoiseSimulator::paper_default();
    let spec = HybridMappingSpec::gradient_based(0.10);
    let (noisy, stats) = simulator
        .evaluate(&model, &report.layer_profiles, &spec, &dataset.eval, 11)
        .unwrap();
    assert!(stats.slc_ranks > 0 && stats.mlc_ranks > stats.slc_ranks);
    let drop = report.eval_finetuned.metrics.primary_value() - noisy.metrics.primary_value();
    assert!(
        drop < 0.15,
        "10% SLC protection should keep the accuracy drop small, got {drop:.3}"
    );

    // 4. The architecture model evaluates the same mapping at paper scale.
    let perf = PerformanceModel::paper_default();
    let summary = perf
        .evaluate(&EvaluationPoint {
            model: ModelConfig::bert_large(),
            seq_len: 128,
            slc_rank_fraction: 0.10,
        })
        .unwrap();
    assert!(summary.energy.total_pj() > 0.0);
    assert!(summary.latency.total_ns() > 0.0);
    assert!(summary.tops_per_mm2 > 0.0);
}

#[test]
fn decoder_pipeline_runs_end_to_end() {
    let dataset = hyflex_workloads::lm::wikitext2_dataset(13);
    let mut rng = Rng::seed_from(13);
    let mut model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
    let trainer = trainer();
    trainer.train(&mut model, &dataset.train, 4).unwrap();
    let pipeline = GradientRedistribution {
        finetune_epochs: 1,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline
        .apply(&mut model, &dataset.train, &dataset.eval)
        .unwrap();

    let simulator = NoiseSimulator::paper_default();
    // The paper uses up to 20% SLC for decoder models.
    let protected = simulator
        .evaluate(
            &model,
            &report.layer_profiles,
            &HybridMappingSpec::gradient_based(0.20),
            &dataset.eval,
            3,
        )
        .unwrap()
        .0;
    let unprotected = simulator
        .evaluate(
            &model,
            &report.layer_profiles,
            &HybridMappingSpec::gradient_based(0.0),
            &dataset.eval,
            3,
        )
        .unwrap()
        .0;
    // Loss with protection should not exceed loss without protection.
    assert!(protected.mean_loss <= unprotected.mean_loss + 0.05);
}

#[test]
fn vision_pipeline_runs_end_to_end() {
    let dataset = hyflex_workloads::vision::generate(
        &hyflex_workloads::vision::VisionConfig {
            train_samples: 120,
            eval_samples: 40,
            ..Default::default()
        },
        17,
    );
    let mut rng = Rng::seed_from(17);
    let mut model = TransformerModel::new(ModelConfig::tiny_vit(10), &mut rng).unwrap();
    let trainer = trainer();
    trainer.train(&mut model, &dataset.train, 5).unwrap();
    let pipeline = GradientRedistribution {
        finetune_epochs: 1,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline
        .apply(&mut model, &dataset.train, &dataset.eval)
        .unwrap();
    assert!(report.eval_finetuned.metrics.primary_value() > 0.3);
    let simulator = NoiseSimulator::paper_default();
    let (noisy, _) = simulator
        .evaluate(
            &model,
            &report.layer_profiles,
            &HybridMappingSpec::gradient_based(0.05),
            &dataset.eval,
            5,
        )
        .unwrap();
    assert!(noisy.metrics.primary_value() > 0.2);
}
