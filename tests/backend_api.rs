//! Cross-crate integration of the unified `Backend` API: every registered
//! backend (HyFlexPIM + the four baselines) flows through `SystemBuilder`,
//! `BatchScheduler`, and `ServingSim`; the HyFlexPIM path stays bit-identical
//! to the pre-refactor `PerformanceModel` surface; and the batched-evaluation
//! edge cases (batch of one, empty batch, padded mixed-length batches) hold
//! for all of them.

use hyflex::baselines::{BackendParams, BackendRegistry, SystemBuilder};
use hyflex::pim::backend::{Backend, HyFlexPim, InferenceRequest};
use hyflex::pim::perf::EvaluationPoint;
use hyflex::pim::{PerformanceModel, PimError};
use hyflex::runtime::{
    par_backend_eval, BatchScheduler, JobPool, SchedulerConfig, ServingConfig, ServingSim,
};
use hyflex::transformer::ModelConfig;
use std::sync::Arc;

fn all_backends() -> Vec<Box<dyn Backend>> {
    let registry = BackendRegistry::paper();
    let params = BackendParams::paper(ModelConfig::bert_large());
    registry
        .names()
        .into_iter()
        .map(|name| registry.build(name, &params).unwrap())
        .collect()
}

#[test]
fn every_registered_backend_runs_through_serving_sim() {
    for backend in all_backends() {
        let name = backend.name().to_string();
        let config = ServingConfig {
            qps: 500.0,
            num_requests: 150,
            seq_len: 128,
            slc_rank_fraction: 0.05,
            seed: 19,
            ..ServingConfig::default()
        };
        let report = ServingSim::with_backend(backend, config)
            .unwrap_or_else(|e| panic!("{name}: sim construction failed: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
        assert_eq!(report.completed, 150, "{name}");
        assert!(report.latency.p50_ms > 0.0, "{name}");
        assert!(report.latency.p50_ms <= report.latency.p95_ms, "{name}");
        assert!(report.latency.p95_ms <= report.latency.p99_ms, "{name}");
        assert!(
            report.device_utilization > 0.0 && report.device_utilization <= 1.0,
            "{name}: utilization {}",
            report.device_utilization
        );
    }
}

#[test]
fn hyflexpim_backend_is_bit_identical_to_the_performance_model() {
    let slc = 0.05;
    let backend = HyFlexPim::paper(ModelConfig::bert_large(), slc).unwrap();
    let perf = PerformanceModel::paper_default();
    for seq_len in [64usize, 128, 512, 2048] {
        let point = EvaluationPoint {
            model: ModelConfig::bert_large(),
            seq_len,
            slc_rank_fraction: slc,
        };
        assert_eq!(
            backend
                .evaluate(&InferenceRequest::of_len(0, seq_len))
                .unwrap(),
            perf.evaluate(&point).unwrap()
        );
        for batch in [1usize, 4, 32] {
            assert_eq!(
                backend.evaluate_batched(seq_len, batch).unwrap(),
                perf.evaluate_batched(&point, batch).unwrap()
            );
        }
    }
    // The parallel generic driver reproduces evaluate_many bit for bit.
    let requests: Vec<InferenceRequest> = (0..6)
        .map(|i| InferenceRequest::of_len(i, 128 + 64 * i as usize))
        .collect();
    let points: Vec<EvaluationPoint> = requests
        .iter()
        .map(|r| EvaluationPoint {
            model: ModelConfig::bert_large(),
            seq_len: r.seq_len,
            slc_rank_fraction: slc,
        })
        .collect();
    assert_eq!(
        par_backend_eval(&JobPool::new(3), &backend, &requests).unwrap(),
        perf.evaluate_many(&points).unwrap()
    );
}

#[test]
fn batch_of_one_is_bit_identical_to_evaluate_for_every_backend() {
    for backend in all_backends() {
        let name = backend.name().to_string();
        let single = backend.evaluate(&InferenceRequest::of_len(0, 128)).unwrap();
        let batched = backend.evaluate_batched(128, 1).unwrap();
        assert_eq!(batched.single, single, "{name}");
        assert_eq!(batched.batch_size, 1, "{name}");
        assert_eq!(batched.latency.queueing_ns, 0.0, "{name}");
        assert_eq!(
            batched.first_request_ns,
            single.latency.total_ns(),
            "{name}"
        );
        assert_eq!(batched.makespan_ns, single.latency.total_ns(), "{name}");
    }
}

#[test]
fn empty_batch_is_a_typed_error_not_a_nan() {
    for backend in all_backends() {
        let name = backend.name().to_string();
        let err = backend.evaluate_batched(128, 0).unwrap_err();
        assert!(
            matches!(err, PimError::EmptyBatch),
            "{name}: expected PimError::EmptyBatch, got {err:?}"
        );
    }
}

#[test]
fn mixed_seq_len_padding_never_shrinks_the_initiation_interval() {
    // A mixed batch executes padded to its longest sequence. That padded
    // shape must never have a smaller initiation interval than any of its
    // constituent shapes, otherwise padding would *raise* modeled throughput.
    let lengths = [64usize, 128, 256, 512, 1024];
    for backend in all_backends() {
        let name = backend.name().to_string();
        let mut last = 0.0f64;
        for &seq_len in &lengths {
            let interval = backend
                .evaluate_batched(seq_len, 8)
                .unwrap()
                .initiation_interval_ns;
            assert!(
                interval >= last,
                "{name}: interval shrank from {last} to {interval} ns at N={seq_len}"
            );
            last = interval;
        }
    }
    // End to end through the scheduler: a mixed batch is charged and
    // evaluated at its max sequence length.
    let backend: Arc<dyn Backend> =
        Arc::new(HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap());
    let mut scheduler =
        BatchScheduler::for_backend(Arc::clone(&backend), SchedulerConfig::default()).unwrap();
    for (id, seq) in [64usize, 512, 128, 256].iter().enumerate() {
        scheduler
            .submit(InferenceRequest::new(id as u64, id as f64, *seq))
            .unwrap();
    }
    let batch = scheduler.next_batch().unwrap();
    assert_eq!(batch.max_seq_len, 512);
    let padded = backend
        .evaluate_batched(batch.max_seq_len, batch.len())
        .unwrap();
    for &seq in &[64usize, 128, 256] {
        let shorter = backend.evaluate_batched(seq, batch.len()).unwrap();
        assert!(padded.initiation_interval_ns >= shorter.initiation_interval_ns);
    }
}

#[test]
fn system_builder_validates_rates_and_backend_names() {
    // SLC rates outside [0, 1] are rejected up front...
    for bad in [-0.5, 1.5, f64::NAN] {
        assert!(SystemBuilder::paper().slc_rate(bad).build().is_err());
    }
    // ...and unknown backend names fail with a message listing the roster.
    let err = SystemBuilder::paper()
        .backend("systolic-array")
        .build()
        .unwrap_err()
        .to_string();
    for name in BackendRegistry::paper().names() {
        assert!(err.contains(name), "error should list {name}: {err}");
    }
    // The happy path builds every registered backend.
    for name in BackendRegistry::paper().names() {
        let backend = SystemBuilder::paper().backend(name).build().unwrap();
        assert!(!backend.name().is_empty());
    }
}

#[test]
fn baselines_are_slower_than_hyflexpim_in_the_serving_model() {
    // Ordering sanity for Figure 19: at N = 128 the single-request makespan
    // of every baseline exceeds HyFlexPIM's.
    let backends = all_backends();
    let hyflex = backends[0].evaluate_batched(128, 1).unwrap().makespan_ns;
    for backend in &backends[1..] {
        let theirs = backend.evaluate_batched(128, 1).unwrap().makespan_ns;
        assert!(
            theirs > hyflex,
            "{}: {theirs} ns should exceed HyFlexPIM's {hyflex} ns",
            backend.name()
        );
    }
}
