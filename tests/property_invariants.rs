//! Property-based tests of core invariants, using proptest.

use hyflex_parallel::JobPool;
use hyflex_pim::selection::{self, SelectionStrategy};
use hyflex_rram::cell::CellMode;
use hyflex_rram::noise::{ber_from_sigma, sigma_from_ber};
use hyflex_tensor::activations::softmax;
use hyflex_tensor::quant::QuantizedMatrix;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::svd::hard_threshold_rank;
use hyflex_tensor::{kernels, svd, Matrix, SvdAlgorithm};
use proptest::prelude::*;

fn arbitrary_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(rows, cols, seed)| {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SVD reconstructs any matrix and its singular values are sorted.
    #[test]
    fn svd_reconstructs_and_sorts(m in arbitrary_matrix(12)) {
        let d = svd::svd(&m).unwrap();
        let reconstructed = d.reconstruct();
        prop_assert!(m.approx_eq(&reconstructed, 1e-2));
        for pair in d.singular_values.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-6);
        }
    }

    /// Truncated reconstruction error never decreases as rank is reduced.
    #[test]
    fn truncation_error_is_monotone(m in arbitrary_matrix(10)) {
        let d = svd::svd(&m).unwrap();
        let mut last_err = -1.0f32;
        for k in (1..=d.rank()).rev() {
            let err = m.relative_error(&d.truncate(k).unwrap().reconstruct()).unwrap();
            prop_assert!(err + 1e-4 >= last_err);
            last_err = err;
        }
    }

    /// INT8 quantization keeps every element within one quantization step.
    #[test]
    fn quantization_error_is_bounded(m in arbitrary_matrix(16)) {
        let q = QuantizedMatrix::quantize_int8(&m).unwrap();
        let deq = q.dequantize();
        let max_err = m.sub(&deq).unwrap().max_abs();
        prop_assert!(max_err <= q.scale() * 0.5 + 1e-6);
    }

    /// Softmax outputs are a probability distribution for any finite logits.
    #[test]
    fn softmax_is_a_distribution(values in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = softmax(&values);
        prop_assert_eq!(p.len(), values.len());
        prop_assert!(p.iter().all(|x| (0.0..=1.0).contains(x)));
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// The BER model is monotone in sigma and inverts correctly.
    ///
    /// The range stays below ~20% because an SLC cell's lowest level has an
    /// enormous noise margin: its flip probability saturates, so average BERs
    /// approaching 25% are physically unreachable for SLC.
    #[test]
    fn ber_sigma_round_trip(ber in 0.001f64..0.2) {
        for mode in [CellMode::Slc, CellMode::MLC2] {
            let sigma = sigma_from_ber(ber, mode).unwrap();
            let back = ber_from_sigma(sigma, mode);
            prop_assert!((back - ber).abs() < 1e-3);
        }
    }

    /// SVD invariants hold for both algorithms at the hard-threshold rank:
    /// singular values are non-negative and non-increasing, U/V columns are
    /// orthonormal within tolerance, and the randomized sketch's
    /// reconstruction error never beats Jacobi's by more than float noise —
    /// nor trails it by more than the acceptance margin.
    #[test]
    fn svd_invariants_hold_for_both_algorithms(m in arbitrary_matrix(16)) {
        let k = hard_threshold_rank(m.rows(), m.cols());
        let exact = svd::svd_with(&m, SvdAlgorithm::Jacobi, k).unwrap();
        let exact_err = m.relative_error(&exact.reconstruct()).unwrap();
        for algo in [SvdAlgorithm::Jacobi, SvdAlgorithm::Randomized] {
            let d = svd::svd_with(&m, algo, k).unwrap();
            prop_assert_eq!(d.rank(), k);
            for pair in d.singular_values.windows(2) {
                prop_assert!(pair[0] >= pair[1] - 1e-5, "{}: {:?}", algo, pair);
            }
            prop_assert!(d.singular_values.iter().all(|s| *s >= 0.0));
            let utu = d.u.transpose().matmul(&d.u).unwrap();
            prop_assert!(utu.approx_eq(&Matrix::identity(k), 1e-2), "{}: UᵀU ≉ I", algo);
            let vvt = d.vt.matmul(&d.vt.transpose()).unwrap();
            prop_assert!(vvt.approx_eq(&Matrix::identity(k), 1e-2), "{}: VᵀV ≉ I", algo);
            let err = m.relative_error(&d.reconstruct()).unwrap();
            prop_assert!(
                err <= exact_err + 5e-2,
                "{}: err {} vs jacobi {}",
                algo, err, exact_err
            );
        }
    }

    /// The blocked kernels are bit-identical to the naive reference loops,
    /// and the pooled GEMM is bit-identical for every worker count.
    #[test]
    fn kernel_matmul_is_bit_identical_to_naive(seed in any::<u64>(), workers in 1usize..5) {
        let mut rng = Rng::seed_from(seed);
        let m = 1 + (seed % 40) as usize;
        let k = 1 + ((seed >> 8) % 40) as usize;
        let n = 1 + ((seed >> 16) % 40) as usize;
        let a = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(k, n, 0.0, 1.0, &mut rng);
        // Naive ikj reference with the zero-skip, exactly as `Matrix::matmul`
        // computed it before the kernel layer.
        let mut naive = Matrix::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                let aik = a.at(i, kk);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = naive.at(i, j) + aik * b.at(kk, j);
                    naive.set(i, j, v);
                }
            }
        }
        let blocked = a.matmul(&b).unwrap();
        prop_assert_eq!(blocked.as_slice(), naive.as_slice());
        let pooled = kernels::matmul_pooled(&a, &b, &JobPool::new(workers)).unwrap();
        prop_assert_eq!(pooled.as_slice(), naive.as_slice());
    }

    /// The matrix product is associative within floating-point tolerance.
    #[test]
    fn matmul_is_associative(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let a = Matrix::random_normal(4, 6, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(6, 5, 0.0, 1.0, &mut rng);
        let c = Matrix::random_normal(5, 3, 0.0, 1.0, &mut rng);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-3));
    }

    /// Rank selection always protects exactly the requested number of ranks
    /// (and at least one when the rate is non-zero), for every strategy.
    #[test]
    fn rank_selection_counts_are_exact(rank in 1usize..128, rate in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let profile = hyflex_pim::gradient_redistribution::LayerGradientProfile {
            layer_index: 0,
            name: "blocks.0.attn.q_proj".to_string(),
            rank,
            singular_values: (0..rank).map(|_| rng.uniform() as f32).collect(),
            sigma_gradients: (0..rank).map(|_| rng.uniform()).collect(),
        };
        let expected = selection::protected_count(rank, rate);
        for strategy in SelectionStrategy::all() {
            let mask = selection::select_protected_ranks(&profile, strategy, rate);
            prop_assert_eq!(mask.len(), rank);
            prop_assert_eq!(mask.iter().filter(|m| **m).count(), expected);
        }
    }

    /// SLC cell fraction is monotone in the rank protection rate.
    #[test]
    fn slc_cell_fraction_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(selection::slc_cell_fraction(lo, 2) <= selection::slc_cell_fraction(hi, 2) + 1e-12);
    }

    /// The packed kernels (`matmul_transpose`, `matmul_transpose_left`,
    /// `matvec`) are bit-identical to their naive reference loops: panel
    /// packing and register blocking relocate memory, never the per-element
    /// accumulation order.
    #[test]
    fn packed_kernels_are_bit_identical_to_naive(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let m = 1 + (seed % 40) as usize;
        let k = 1 + ((seed >> 8) % 40) as usize;
        let n = 1 + ((seed >> 16) % 40) as usize;
        let a = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(n, k, 0.0, 1.0, &mut rng);

        // a · bᵀ: independent row-dot-row accumulation, ascending k.
        let fast = kernels::matmul_transpose(&a, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for (x, y) in a.row(i).iter().zip(b.row(j).iter()) {
                    acc += x * y;
                }
                prop_assert_eq!(fast.at(i, j).to_bits(), acc.to_bits());
            }
        }

        // aᵀ · b without materializing the transpose must equal the
        // materialized two-step product bitwise.
        let c = Matrix::random_normal(m, n, 0.0, 1.0, &mut rng);
        let fused = kernels::matmul_transpose_left(&a, &c).unwrap();
        let two_step = a.transpose().matmul(&c).unwrap();
        prop_assert_eq!(fused.as_slice(), two_step.as_slice());

        // a · v: row dots, ascending k.
        let v: Vec<f32> = rng.normal_vec(k);
        let fast = kernels::matvec(&a, &v).unwrap();
        for (r, &got) in fast.iter().enumerate() {
            let mut acc = 0.0f32;
            for (x, y) in a.row(r).iter().zip(v.iter()) {
                acc += x * y;
            }
            prop_assert_eq!(got.to_bits(), acc.to_bits());
        }
    }
}

// The full-pipeline bit-identity proptest runs far fewer cases: each case
// runs `GradientRedistribution::apply` five times (serial + four pool
// widths) end to end.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// `GradientRedistribution::apply` on the persistent pool is
    /// bit-identical to the serial pipeline — same factored model, same
    /// report — for worker counts {1, 2, 4, 8} and both SVD algorithms
    /// (each layer's sketch is seeded from its own name, so no worker
    /// schedule can change which sketch a layer draws).
    #[test]
    fn pooled_gradient_redistribution_apply_matches_serial_bitwise(seed in any::<u64>()) {
        use hyflex_pim::gradient_redistribution::GradientRedistribution;
        use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
        use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

        let mut rng = Rng::seed_from(seed);
        let model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
        let dataset = glue::generate(GlueTask::Mrpc, &GlueConfig::default(), seed);
        let train = &dataset.train[..dataset.train.len().min(16)];
        let eval = &dataset.eval[..dataset.eval.len().min(8)];
        let algorithm = if seed.is_multiple_of(2) {
            SvdAlgorithm::Jacobi
        } else {
            SvdAlgorithm::Randomized
        };
        let pipeline = GradientRedistribution {
            svd_algorithm: algorithm,
            finetune_epochs: 1,
            ..GradientRedistribution::new(Trainer::new(AdamWConfig::default(), 8))
        };

        let mut serial_model = model.clone();
        let serial_report = pipeline
            .apply_with_pool(&mut serial_model, train, eval, &JobPool::serial())
            .unwrap();
        for workers in [1usize, 2, 4, 8] {
            let mut pooled_model = model.clone();
            let pooled_report = pipeline
                .apply_with_pool(&mut pooled_model, train, eval, &JobPool::new(workers))
                .unwrap();
            prop_assert_eq!(&pooled_model, &serial_model, "model diverged at workers={}", workers);
            prop_assert_eq!(&pooled_report, &serial_report, "report diverged at workers={}", workers);
        }
    }
}

/// Stress: 10⁴ tiny jobs with uneven costs through `par_map`, each outer job
/// occasionally re-entering the pool with a nested `scope` *and* a nested
/// `par_map` (both run inline on the session worker — no thread explosion),
/// with the result checked against the serial map.
#[test]
fn pool_stress_nested_scopes_inside_ten_thousand_uneven_jobs() {
    fn uneven(x: u64) -> u64 {
        // Cost varies by two orders of magnitude across neighbours.
        let spins = (x % 64) * 16;
        let mut acc = x;
        for i in 0..spins {
            acc = acc.wrapping_mul(2654435761).wrapping_add(i);
        }
        acc
    }

    let pool = JobPool::new(4);
    let items: Vec<u64> = (0..10_000).collect();
    let work = |&x: &u64| {
        let mut value = uneven(x);
        if x % 97 == 0 {
            // Nested borrowed entry points from inside a pool job.
            let parts = pool.par_map(&[x, x + 1, x + 2], |&y| uneven(y));
            let sum = std::sync::atomic::AtomicU64::new(0);
            pool.scope(|s| {
                for &p in &parts {
                    let sum = &sum;
                    s.spawn(move || {
                        sum.fetch_add(p, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
            value = value.wrapping_add(sum.load(std::sync::atomic::Ordering::Relaxed));
        }
        value
    };
    let expected: Vec<u64> = items.iter().map(work).collect();
    let got = pool.par_map(&items, work);
    assert_eq!(got, expected);
}
