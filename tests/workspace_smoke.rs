//! Workspace surface smoke test: the default configuration must construct,
//! validate, and drive one end-to-end performance-model evaluation. Catches
//! config regressions (invalid defaults, broken re-exports, non-finite
//! outputs) before the heavier integration tests run.

use hyflex_pim::perf::{EvaluationPoint, PerformanceModel};
use hyflex_pim::HyFlexPimConfig;
use hyflex_transformer::ModelConfig;

#[test]
fn default_config_is_valid() {
    let config = HyFlexPimConfig::default();
    config.validate().expect("default config must validate");
    // The default must match the paper's published configuration so every
    // downstream experiment starts from Table 2 numbers.
    assert_eq!(config.weight_bits, 8);
    assert_eq!(config.input_bits, 8);
    assert_eq!(
        config.analog_array_rows * config.analog_array_cols,
        64 * 128,
        "analog arrays should be the paper's 64x128 geometry"
    );
}

#[test]
fn default_performance_model_evaluates_one_point() {
    let model = PerformanceModel::new(HyFlexPimConfig::default())
        .expect("default config must build a performance model");
    let summary = model
        .evaluate(&EvaluationPoint {
            model: ModelConfig::bert_base(),
            seq_len: 128,
            slc_rank_fraction: 0.10,
        })
        .expect("default model must evaluate BERT-Base at n=128");
    assert!(
        summary.energy.total_pj().is_finite() && summary.energy.total_pj() > 0.0,
        "total energy must be positive and finite"
    );
    assert!(
        summary.latency.total_ns().is_finite() && summary.latency.total_ns() > 0.0,
        "total latency must be positive and finite"
    );
    assert!(
        summary.tops_per_mm2.is_finite() && summary.tops_per_mm2 > 0.0,
        "area efficiency must be positive and finite"
    );
}

#[test]
fn facade_reexports_resolve() {
    // The root `hyflex` facade must expose every member crate.
    let _ = hyflex::pim::HyFlexPimConfig::default();
    let _ = hyflex::tensor::Matrix::zeros(2, 2);
    let _ = hyflex::transformer::ModelConfig::bert_base();
    let _ = hyflex::rram::ArraySpec::analog();
    let _ = hyflex::circuits::Table2::paper_65nm();
    let _ = hyflex::workloads::GlueTask::all();
}
