//! Golden bit-identity fixtures for the transformer layer-graph refactor.
//!
//! The files under `tests/fixtures/` capture seeded `forward` and
//! `forward_backward` outputs of the pre-refactor hand-wired model. Every
//! `f32` is stored as its exact IEEE-754 bit pattern and compared with bit
//! equality, so any numeric drift introduced by restructuring the model —
//! however small — fails CI. The cases cover all three topologies the graph
//! builder assembles (encoder, decoder, vision encoder) plus gradient
//! accumulation through the full backward pass.
//!
//! Regenerate (only when intentionally re-baselining the numerics) with:
//! `cargo test --test golden_model -- --ignored regenerate_golden_fixtures`

use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use hyflex_transformer::layers::AnyLinear;
use hyflex_transformer::{ModelConfig, ModelInput, TransformerModel};
use std::fmt::Write as _;
use std::path::PathBuf;

fn fixture_path(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_{case}.txt"))
}

/// Encodes named matrices as a text fixture: one `# name` header per matrix,
/// a `rows cols` line, then one line of hex `f32::to_bits` words per row.
fn encode(sections: &[(String, Matrix)]) -> String {
    let mut out = String::new();
    for (name, m) in sections {
        writeln!(out, "# {name}").unwrap();
        writeln!(out, "{} {}", m.rows(), m.cols()).unwrap();
        for r in 0..m.rows() {
            let row = m
                .row(r)
                .iter()
                .map(|v| format!("{:08x}", v.to_bits()))
                .collect::<Vec<_>>()
                .join(" ");
            writeln!(out, "{row}").unwrap();
        }
    }
    out
}

fn decode(text: &str) -> Vec<(String, Matrix)> {
    let mut sections = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(header) = lines.next() {
        let name = header
            .strip_prefix("# ")
            .unwrap_or_else(|| panic!("fixture section header expected, got {header:?}"));
        let shape = lines.next().expect("fixture shape line");
        let mut dims = shape
            .split_whitespace()
            .map(|d| d.parse::<usize>().unwrap());
        let (rows, cols) = (dims.next().unwrap(), dims.next().unwrap());
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let line = lines.next().expect("fixture data row");
            data.extend(
                line.split_whitespace()
                    .map(|w| f32::from_bits(u32::from_str_radix(w, 16).unwrap())),
            );
        }
        assert_eq!(
            data.len(),
            rows * cols,
            "fixture {name} row length mismatch"
        );
        let m = Matrix::from_vec(rows, cols, data).expect("fixture shape");
        sections.push((name.to_string(), m));
    }
    sections
}

/// The dense weight gradient of one static linear, for gradient capture.
fn weight_grad(linear: &AnyLinear) -> Matrix {
    match linear {
        AnyLinear::Dense(d) => d.weight_param().grad().clone(),
        AnyLinear::Factored(_) => panic!("golden cases use dense models"),
    }
}

/// Runs one named golden case and returns its `(name, matrix)` captures.
fn run_case(case: &str) -> Vec<(String, Matrix)> {
    match case {
        "encoder_forward" => {
            let mut rng = Rng::seed_from(42);
            let model = TransformerModel::new(ModelConfig::tiny_encoder(3), &mut rng).unwrap();
            let logits = model
                .forward(&ModelInput::Tokens(vec![1, 5, 9, 2, 0, 7]))
                .unwrap();
            vec![("logits".to_string(), logits)]
        }
        "decoder_forward" => {
            let mut rng = Rng::seed_from(43);
            let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
            let logits = model
                .forward(&ModelInput::Tokens(vec![3, 1, 4, 1, 5]))
                .unwrap();
            vec![("logits".to_string(), logits)]
        }
        "vit_forward" => {
            let mut rng = Rng::seed_from(44);
            let model = TransformerModel::new(ModelConfig::tiny_vit(10), &mut rng).unwrap();
            let patches = Matrix::random_normal(9, 24, 0.0, 1.0, &mut rng);
            let logits = model.forward(&ModelInput::Features(patches)).unwrap();
            vec![("logits".to_string(), logits)]
        }
        "encoder_backward" => {
            let mut rng = Rng::seed_from(45);
            let mut model = TransformerModel::new(ModelConfig::tiny_encoder(3), &mut rng).unwrap();
            let input = ModelInput::Tokens(vec![2, 8, 1, 1, 6]);
            let (logits, d_logits) = model
                .forward_backward(&input, &mut |logits: &Matrix| logits.scale(0.5))
                .unwrap();
            let blocks = model.blocks();
            vec![
                ("logits".to_string(), logits),
                ("d_logits".to_string(), d_logits),
                (
                    "blocks.0.attn.q_proj.weight.grad".to_string(),
                    weight_grad(blocks[0].attention().projections()[0]),
                ),
                (
                    "blocks.1.ffn.fc2.weight.grad".to_string(),
                    weight_grad(blocks[1].ffn().layers()[1]),
                ),
            ]
        }
        "decoder_backward" => {
            let mut rng = Rng::seed_from(46);
            let mut model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
            let input = ModelInput::Tokens(vec![7, 7, 3, 0]);
            let (logits, _) = model
                .forward_backward(&input, &mut |logits: &Matrix| logits.scale(0.25))
                .unwrap();
            let blocks = model.blocks();
            vec![
                ("logits".to_string(), logits),
                (
                    "blocks.0.attn.v_proj.weight.grad".to_string(),
                    weight_grad(blocks[0].attention().projections()[2]),
                ),
            ]
        }
        other => panic!("unknown golden case {other}"),
    }
}

const CASES: &[&str] = &[
    "encoder_forward",
    "decoder_forward",
    "vit_forward",
    "encoder_backward",
    "decoder_backward",
];

#[test]
fn golden_fixtures_match_bit_exactly() {
    for case in CASES {
        let path = fixture_path(case);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let expected = decode(&text);
        let actual = run_case(case);
        assert_eq!(
            expected.len(),
            actual.len(),
            "golden case {case}: capture count changed"
        );
        for ((en, em), (an, am)) in expected.iter().zip(&actual) {
            assert_eq!(en, an, "golden case {case}: capture name changed");
            assert_eq!(
                em.shape(),
                am.shape(),
                "golden case {case}/{en}: shape changed"
            );
            for r in 0..em.rows() {
                for (c, (e, a)) in em.row(r).iter().zip(am.row(r)).enumerate() {
                    assert_eq!(
                        e.to_bits(),
                        a.to_bits(),
                        "golden case {case}/{en}[{r},{c}]: {e:?} != {a:?}"
                    );
                }
            }
        }
    }
}

/// Round-trip sanity of the fixture codec itself.
#[test]
fn fixture_codec_round_trips() {
    let m =
        Matrix::from_rows(&[vec![1.5, -0.0, f32::MIN_POSITIVE], vec![3.25, -7.5, 0.0]]).unwrap();
    let sections = vec![("demo".to_string(), m)];
    let decoded = decode(&encode(&sections));
    assert_eq!(sections, decoded);
}

/// Rewrites every fixture from the current implementation. Ignored by
/// default: run only when intentionally re-baselining the golden numerics.
#[test]
#[ignore = "rewrites the golden fixtures; run only to re-baseline"]
fn regenerate_golden_fixtures() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).unwrap();
    for case in CASES {
        let sections = run_case(case);
        std::fs::write(fixture_path(case), encode(&sections)).unwrap();
    }
}
