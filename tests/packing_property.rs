//! Property-based proof that packed mixed-length batching is exact.
//!
//! `TransformerModel::forward_batch` packs every request's rows into one
//! matrix (no padding) and relies on `AttentionMask::Packed` to keep the
//! requests from attending across segment boundaries. Because the matmul
//! kernel skips exact zeros and softmax turns `-inf` scores into exact
//! `+0.0` weights, the packed path must reproduce the per-request
//! `forward` outputs *bit for bit* — not just approximately. These
//! properties pin that contract for both bidirectional (encoder) and
//! causal (decoder) masks across randomized batch shapes and seeds.

use hyflex_tensor::rng::Rng;
use hyflex_transformer::{ModelConfig, ModelInput, TransformerModel};
use proptest::prelude::*;

/// Compares logits bit-for-bit, mapping through `f32::to_bits` so that the
/// failure message shows exactly which element diverged.
fn assert_bit_identical(packed: &[hyflex_tensor::Matrix], unpacked: &[hyflex_tensor::Matrix]) {
    assert_eq!(packed.len(), unpacked.len());
    for (request, (p, u)) in packed.iter().zip(unpacked).enumerate() {
        assert_eq!(p.rows(), u.rows(), "request {request}: row count");
        assert_eq!(p.cols(), u.cols(), "request {request}: col count");
        for r in 0..p.rows() {
            for (c, (pv, uv)) in p.row(r).iter().zip(u.row(r)).enumerate() {
                assert_eq!(
                    pv.to_bits(),
                    uv.to_bits(),
                    "request {request} logit ({r}, {c}): packed {pv:?} vs unpacked {uv:?}",
                );
            }
        }
    }
}

/// A batch of 1..=5 token sequences, each 1..=12 tokens drawn from the tiny
/// configs' shared vocabulary (64) within their max sequence length (16).
fn arbitrary_batch() -> impl Strategy<Value = Vec<ModelInput>> {
    proptest::collection::vec(
        (1usize..=12, any::<u64>()).prop_map(|(len, seed)| {
            let mut rng = Rng::seed_from(seed);
            ModelInput::Tokens((0..len).map(|_| rng.below(64)).collect())
        }),
        1..6,
    )
}

fn check_packed_matches_unpacked(config: ModelConfig, model_seed: u64, batch: &[ModelInput]) {
    let mut rng = Rng::seed_from(model_seed);
    let model = TransformerModel::new(config, &mut rng).unwrap();
    let packed = model.forward_batch(batch).unwrap();
    let unpacked: Vec<_> = batch
        .iter()
        .map(|input| model.forward(input).unwrap())
        .collect();
    assert_bit_identical(&packed, &unpacked);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encoder (bidirectional mask): packed batching is bit-exact.
    #[test]
    fn packed_encoder_batch_is_bit_identical(
        batch in arbitrary_batch(),
        model_seed in any::<u64>(),
    ) {
        check_packed_matches_unpacked(ModelConfig::tiny_encoder(3), model_seed, &batch);
    }

    /// Decoder (causal mask): packed batching is bit-exact.
    #[test]
    fn packed_decoder_batch_is_bit_identical(
        batch in arbitrary_batch(),
        model_seed in any::<u64>(),
    ) {
        check_packed_matches_unpacked(ModelConfig::tiny_decoder(), model_seed, &batch);
    }

    /// Language-model logits are per-token, so the decoder check also pins
    /// every intermediate row; the regression head exercises mean pooling
    /// over a packed segment instead.
    #[test]
    fn packed_regression_batch_is_bit_identical(
        batch in arbitrary_batch(),
        model_seed in any::<u64>(),
    ) {
        check_packed_matches_unpacked(
            ModelConfig::tiny_encoder_regression(),
            model_seed,
            &batch,
        );
    }
}

#[test]
fn empty_batch_is_rejected() {
    let mut rng = Rng::seed_from(1);
    let model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
    assert!(model.forward_batch(&[]).is_err());
}

#[test]
fn singleton_batch_matches_forward() {
    let mut rng = Rng::seed_from(2);
    let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
    let input = ModelInput::Tokens(vec![5, 9, 1, 40]);
    let packed = model.forward_batch(std::slice::from_ref(&input)).unwrap();
    let single = model.forward(&input).unwrap();
    assert_bit_identical(&packed, std::slice::from_ref(&single));
}
