//! Cross-crate integration of the batched-inference runtime: the facade
//! re-export, the batch-aware performance model, the scheduler's capacity
//! contract, and full closed-loop serving runs — homogeneous, mixed
//! sequence lengths (property-tested end to end), SLO-aware policies, and
//! multi-chip clusters — exercised together the way
//! `examples/serving_sim.rs` and `examples/cluster_serving.rs` use them.

use hyflex::pim::backend::{Backend, HyFlexPim};
use hyflex::pim::perf::EvaluationPoint;
use hyflex::pim::PerformanceModel;
use hyflex::runtime::{
    par_perf_eval, ClusterConfig, ClusterSim, DispatchPolicy, InferenceRequest, JobPool,
    RequestClass, SchedulerConfig, SchedulingPolicy, ServingConfig, ServingSim,
};
use hyflex::transformer::ModelConfig;
use hyflex_runtime::BatchScheduler;
use proptest::prelude::*;

fn serving_config(max_batch_size: usize) -> ServingConfig {
    ServingConfig {
        qps: 5000.0,
        num_requests: 600,
        seq_len: 128,
        slc_rank_fraction: 0.05,
        seed: 18,
        scheduler: SchedulerConfig {
            max_batch_size,
            ..SchedulerConfig::default()
        },
        ..ServingConfig::default()
    }
}

#[test]
fn serving_reports_throughput_and_tail_latency_for_required_batch_sizes() {
    let perf = PerformanceModel::paper_default();
    let model = ModelConfig::bert_large();
    let mut achieved = Vec::new();
    for batch in [1usize, 4, 16] {
        let report = ServingSim::new(perf.clone(), model.clone(), serving_config(batch))
            .expect("serving sim builds")
            .run()
            .expect("serving run completes");
        assert_eq!(report.completed, 600);
        assert!(report.achieved_qps > 0.0);
        assert!(report.latency.p50_ms > 0.0);
        assert!(report.latency.p50_ms <= report.latency.p95_ms);
        assert!(report.latency.p95_ms <= report.latency.p99_ms);
        achieved.push(report.achieved_qps);
    }
    // 5000 QPS exceeds the ~3.7k single-request service rate: only the
    // batched configurations can keep up with the offered load.
    assert!(
        achieved[1] > achieved[0] && achieved[2] > achieved[0],
        "batching must raise sustained throughput under overload: {achieved:?}"
    );
}

#[test]
fn scheduler_capacity_contract_holds_through_the_facade() {
    let mut scheduler = BatchScheduler::new(
        hyflex::pim::HyFlexPimConfig::paper_default(),
        ModelConfig::bert_large(),
        SchedulerConfig {
            max_batch_size: 8,
            max_wait_ns: 0.0,
            pus_per_layer: 1,
            ..SchedulerConfig::default()
        },
    )
    .unwrap();
    for id in 0..40 {
        scheduler
            .submit(InferenceRequest::new(id, id as f64, 512))
            .unwrap();
    }
    while let Some(batch) = scheduler.next_batch() {
        assert!(batch.len() <= 8);
        assert!(batch.cells_used <= scheduler.capacity_cells());
    }
}

fn paper_backend() -> HyFlexPim {
    HyFlexPim::paper(ModelConfig::bert_base(), 0.05).unwrap()
}

/// An arbitrary heterogeneous workload: 2–4 classes over a spread of
/// sequence lengths, random weights, load, and batch cap.
fn arbitrary_mix() -> impl Strategy<Value = ServingConfig> {
    let class = (
        proptest::sample::select(vec![32usize, 64, 128, 256, 384]),
        0.5..4.0f64,
    );
    (
        proptest::collection::vec(class, 2..5),
        500.0..20_000.0f64,
        1usize..=16,
        any::<u64>(),
    )
        .prop_map(|(classes, qps, max_batch_size, seed)| ServingConfig {
            qps,
            num_requests: 80,
            classes: classes
                .into_iter()
                .map(|(seq_len, weight)| RequestClass::new(seq_len, weight))
                .collect(),
            slc_rank_fraction: 0.05,
            seed,
            scheduler: SchedulerConfig {
                max_batch_size,
                ..SchedulerConfig::default()
            },
            ..ServingConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mixed sequence lengths through the full closed loop: every request
    /// completes exactly once, batches respect FCFS order and both caps,
    /// and capacity is charged at the padded (max-sequence) shape.
    #[test]
    fn mixed_length_serving_preserves_order_caps_and_padding(config in arbitrary_mix()) {
        let backend = paper_backend();
        let capacity_cells = backend.capacity() * config.scheduler.pus_per_layer;
        let cap = config.scheduler.max_batch_size;
        let sim = ServingSim::with_backend(backend.clone(), config.clone()).unwrap();
        let (report, traces) = sim.run_traced().unwrap();
        prop_assert_eq!(report.completed, config.num_requests);

        let mut served_ids = Vec::new();
        let mut last_launch = f64::NEG_INFINITY;
        for trace in &traces {
            let batch = &trace.batch;
            prop_assert!(!batch.is_empty());
            prop_assert!(batch.len() <= cap);
            // Capacity bound, charged at the padded execution shape.
            prop_assert!(batch.cells_used <= capacity_cells);
            prop_assert_eq!(
                batch.cells_used,
                batch.len() * backend.request_cells(batch.max_seq_len)
            );
            // Padding monotonicity: the executed shape is the batch max,
            // and every member fits under it.
            let member_max = batch.requests.iter().map(|r| r.seq_len).max().unwrap();
            prop_assert_eq!(batch.max_seq_len, member_max);
            prop_assert!(batch.requests.iter().all(|r| r.seq_len <= batch.max_seq_len));
            // Batches launch in time order on the single chip, never
            // before every member has arrived.
            prop_assert!(trace.launch_ns >= last_launch);
            last_launch = trace.launch_ns;
            for r in &batch.requests {
                prop_assert!(r.arrival_ns <= trace.launch_ns);
                served_ids.push(r.id);
            }
        }
        // FCFS: the concatenated batch membership is exactly arrival order.
        prop_assert!(served_ids.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(served_ids.len(), config.num_requests);
    }
}

#[test]
fn edf_beats_fcfs_on_slo_attainment_under_overload() {
    // The fig20 scenario, pinned as a regression: interactive requests
    // with a meetable SLO drown behind no-SLO batch work under FCFS, and
    // EDF recovers them.
    let backend = paper_backend();
    let slo_ns = 25.0 * backend.evaluate_batched(64, 1).unwrap().makespan_ns;
    let sustainable = {
        let short = backend.evaluate_batched(64, 16).unwrap().makespan_ns / 16.0;
        let long = backend.evaluate_batched(256, 16).unwrap().makespan_ns / 16.0;
        1e9 / ((3.0 * short + long) / 4.0)
    };
    let run = |policy: SchedulingPolicy| {
        let config = ServingConfig {
            qps: 1.3 * sustainable,
            num_requests: 500,
            classes: vec![
                RequestClass::new(64, 3.0)
                    .with_slo_ns(slo_ns)
                    .with_priority(0),
                RequestClass::new(256, 1.0).with_priority(1),
            ],
            slc_rank_fraction: 0.05,
            seed: 20,
            ..ServingConfig::default()
        };
        let config = ServingConfig {
            scheduler: SchedulerConfig {
                policy,
                ..SchedulerConfig::default()
            },
            ..config
        };
        ServingSim::with_backend(paper_backend(), config)
            .unwrap()
            .run()
            .unwrap()
    };
    let fcfs = run(SchedulingPolicy::Fcfs);
    let edf = run(SchedulingPolicy::Edf);
    assert!(
        edf.slo_attainment > fcfs.slo_attainment + 0.05,
        "EDF must clearly beat FCFS under overload: edf {} vs fcfs {}",
        edf.slo_attainment,
        fcfs.slo_attainment
    );
    // Both ran the same closed loop to completion.
    assert_eq!(fcfs.completed, 500);
    assert_eq!(edf.completed, 500);
}

#[test]
fn cluster_conserves_requests_across_chips_and_dispatchers() {
    for dispatch in DispatchPolicy::ALL {
        let config = ClusterConfig {
            chips: 3,
            dispatch,
            serving: ServingConfig {
                qps: 9000.0,
                num_requests: 360,
                classes: vec![RequestClass::new(64, 2.0), RequestClass::new(256, 1.0)],
                slc_rank_fraction: 0.05,
                seed: 11,
                ..ServingConfig::default()
            },
        };
        let (report, traces) = ClusterSim::with_backend(paper_backend(), config)
            .unwrap()
            .run_traced()
            .unwrap();
        // Exactly num_requests complete, each request on exactly one chip.
        assert_eq!(report.completed, 360, "{dispatch}");
        assert_eq!(report.per_chip_completed.iter().sum::<usize>(), 360);
        let mut ids: Vec<u64> = traces
            .iter()
            .flat_map(|t| t.batch.requests.iter().map(|r| r.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..360u64).collect::<Vec<_>>(), "{dispatch}");
        assert!(
            report.per_chip_completed.iter().all(|&c| c > 0),
            "{dispatch}"
        );
    }
}

#[test]
fn parallel_perf_sweep_through_the_facade_matches_serial() {
    let perf = PerformanceModel::paper_default();
    let points: Vec<EvaluationPoint> = [0.05, 0.5, 1.0]
        .iter()
        .map(|&slc| EvaluationPoint {
            model: ModelConfig::bert_base(),
            seq_len: 256,
            slc_rank_fraction: slc,
        })
        .collect();
    let serial = perf.evaluate_many(&points).unwrap();
    let parallel = par_perf_eval(&JobPool::new(3), &perf, &points).unwrap();
    assert_eq!(serial, parallel);
}
