//! Cross-crate integration of the batched-inference runtime: the facade
//! re-export, the batch-aware performance model, the scheduler's capacity
//! contract, and a full closed-loop serving run, exercised together the way
//! `examples/serving_sim.rs` uses them.

use hyflex::pim::perf::EvaluationPoint;
use hyflex::pim::PerformanceModel;
use hyflex::runtime::{
    par_perf_eval, InferenceRequest, JobPool, SchedulerConfig, ServingConfig, ServingSim,
};
use hyflex::transformer::ModelConfig;
use hyflex_runtime::BatchScheduler;

fn serving_config(max_batch_size: usize) -> ServingConfig {
    ServingConfig {
        qps: 5000.0,
        num_requests: 600,
        seq_len: 128,
        slc_rank_fraction: 0.05,
        seed: 18,
        scheduler: SchedulerConfig {
            max_batch_size,
            ..SchedulerConfig::default()
        },
    }
}

#[test]
fn serving_reports_throughput_and_tail_latency_for_required_batch_sizes() {
    let perf = PerformanceModel::paper_default();
    let model = ModelConfig::bert_large();
    let mut achieved = Vec::new();
    for batch in [1usize, 4, 16] {
        let report = ServingSim::new(perf.clone(), model.clone(), serving_config(batch))
            .expect("serving sim builds")
            .run()
            .expect("serving run completes");
        assert_eq!(report.completed, 600);
        assert!(report.achieved_qps > 0.0);
        assert!(report.latency.p50_ms > 0.0);
        assert!(report.latency.p50_ms <= report.latency.p95_ms);
        assert!(report.latency.p95_ms <= report.latency.p99_ms);
        achieved.push(report.achieved_qps);
    }
    // 5000 QPS exceeds the ~3.7k single-request service rate: only the
    // batched configurations can keep up with the offered load.
    assert!(
        achieved[1] > achieved[0] && achieved[2] > achieved[0],
        "batching must raise sustained throughput under overload: {achieved:?}"
    );
}

#[test]
fn scheduler_capacity_contract_holds_through_the_facade() {
    let mut scheduler = BatchScheduler::new(
        hyflex::pim::HyFlexPimConfig::paper_default(),
        ModelConfig::bert_large(),
        SchedulerConfig {
            max_batch_size: 8,
            max_wait_ns: 0.0,
            pus_per_layer: 1,
        },
    )
    .unwrap();
    for id in 0..40 {
        scheduler
            .submit(InferenceRequest {
                id,
                arrival_ns: id as f64,
                seq_len: 512,
            })
            .unwrap();
    }
    while let Some(batch) = scheduler.next_batch() {
        assert!(batch.len() <= 8);
        assert!(batch.cells_used <= scheduler.capacity_cells());
    }
}

#[test]
fn parallel_perf_sweep_through_the_facade_matches_serial() {
    let perf = PerformanceModel::paper_default();
    let points: Vec<EvaluationPoint> = [0.05, 0.5, 1.0]
        .iter()
        .map(|&slc| EvaluationPoint {
            model: ModelConfig::bert_base(),
            seq_len: 256,
            slc_rank_fraction: slc,
        })
        .collect();
    let serial = perf.evaluate_many(&points).unwrap();
    let parallel = par_perf_eval(&JobPool::new(3), &perf, &points).unwrap();
    assert_eq!(serial, parallel);
}
