//! Property-based proofs for the decode-serving subsystem.
//!
//! Two contracts are pinned here. First, iteration-level *batched* decode
//! (`TransformerModel::decode_step_batch` — the numerical kernel behind the
//! runtime's continuous batcher) must reproduce per-request sequential
//! `decode_step` logits *bit for bit*, including when requests join the
//! batch at different iterations, because each sub-layer is row-independent
//! and attention runs against each request's own KV cache. Second, the
//! `DecodeSim` engine's accounting must conserve requests under any traffic
//! and any placement policy: every offered request is admitted or shed, and
//! every admitted request completes or is evicted — nothing is lost or
//! double-counted, and identical inputs give bit-identical reports.

use hyflex_pim::backend::{Backend, HyFlexPim};
use hyflex_pim::PerformanceModel;
use hyflex_runtime::{
    ArrivalProcess, DecodeConfig, DecodeSim, KvPlacementPolicy, RequestTrace, TrafficConfig,
};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::{KvCache, ModelConfig, TransformerModel};
use proptest::prelude::*;
use std::sync::Arc;

const VOCAB: usize = 64;

/// One decode request: its prompt and the iteration it joins the batch.
#[derive(Debug, Clone)]
struct DecodeRequest {
    prompt: Vec<usize>,
    joins_at: usize,
}

/// 1..=4 requests with 1..=6-token prompts joining within the first 4
/// iterations of an 8-iteration run (tiny decoder max sequence is 16).
fn arbitrary_requests() -> impl Strategy<Value = Vec<DecodeRequest>> {
    proptest::collection::vec(
        (1usize..=6, 0usize..4, any::<u64>()).prop_map(|(len, joins_at, seed)| {
            let mut rng = Rng::seed_from(seed);
            DecodeRequest {
                prompt: (0..len).map(|_| rng.below(VOCAB)).collect(),
                joins_at,
            }
        }),
        1..5,
    )
}

/// Runs `iterations` of continuous batched decode next to the sequential
/// reference and asserts every logits row matches bit for bit.
fn check_batched_decode_is_bit_identical(
    model_seed: u64,
    requests: &[DecodeRequest],
    iterations: usize,
) {
    let mut rng = Rng::seed_from(model_seed);
    let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
    let layers = model.config().num_layers;

    // Pre-draw every token stream so both paths feed identical inputs
    // (greedy sampling would also match, but pre-drawing keeps a divergence
    // in one iteration from cascading into confusing downstream failures).
    let streams: Vec<Vec<usize>> = requests
        .iter()
        .enumerate()
        .map(|(b, _)| {
            let mut rng = Rng::seed_from(model_seed ^ (b as u64 + 1));
            (0..iterations).map(|_| rng.below(VOCAB)).collect()
        })
        .collect();

    // Sequential reference: each request prefills and decodes alone.
    let mut reference: Vec<Vec<hyflex_tensor::Matrix>> = Vec::new();
    for (b, request) in requests.iter().enumerate() {
        let mut cache = KvCache::new(layers);
        model.prefill(&request.prompt, &mut cache).unwrap();
        let mut logits = Vec::new();
        for &token in streams[b]
            .iter()
            .take(iterations.saturating_sub(request.joins_at))
        {
            logits.push(model.decode_step(token, &mut cache).unwrap());
        }
        reference.push(logits);
    }

    // Continuous batch: requests join at their iteration and share every
    // subsequent decode step, each against its own cache.
    let mut caches: Vec<Option<KvCache>> = vec![None; requests.len()];
    let mut decoded = vec![0usize; requests.len()];
    for iteration in 0..iterations {
        for (b, request) in requests.iter().enumerate() {
            if request.joins_at == iteration {
                let mut cache = KvCache::new(layers);
                model.prefill(&request.prompt, &mut cache).unwrap();
                caches[b] = Some(cache);
            }
        }
        let members: Vec<usize> = (0..requests.len())
            .filter(|&b| caches[b].is_some())
            .collect();
        if members.is_empty() {
            continue;
        }
        let tokens: Vec<usize> = members.iter().map(|&b| streams[b][decoded[b]]).collect();
        let mut borrowed: Vec<&mut KvCache> = Vec::new();
        let mut rest: &mut [Option<KvCache>] = &mut caches;
        let mut cursor = 0usize;
        for &b in &members {
            let (_, tail) = rest.split_at_mut(b - cursor);
            let (slot, tail) = tail.split_at_mut(1);
            borrowed.push(slot[0].as_mut().unwrap());
            rest = tail;
            cursor = b + 1;
        }
        let batched = model.decode_step_batch(&tokens, &mut borrowed).unwrap();
        for (row, &b) in members.iter().enumerate() {
            let expected = &reference[b][decoded[b]];
            assert_eq!(expected.rows(), 1);
            assert_eq!(batched.cols(), expected.cols());
            for (c, (bv, ev)) in batched.row(row).iter().zip(expected.row(0)).enumerate() {
                assert_eq!(
                    bv.to_bits(),
                    ev.to_bits(),
                    "request {b} decode step {} logit {c}: batched {bv:?} vs sequential {ev:?}",
                    decoded[b],
                );
            }
            decoded[b] += 1;
        }
    }
}

fn paper_backend() -> Arc<dyn Backend> {
    Arc::new(
        HyFlexPim::new(
            PerformanceModel::paper_default(),
            ModelConfig::bert_large(),
            0.05,
        )
        .unwrap(),
    )
}

/// Runs a randomized decode-serving workload and checks the conservation
/// identities plus run-to-run determinism.
fn check_decode_serving_conserves_requests(
    placement: KvPlacementPolicy,
    qps: f64,
    num_requests: usize,
    output_tokens: usize,
    kv_pus: usize,
    seed: u64,
) {
    let trace = RequestTrace::new(TrafficConfig {
        process: ArrivalProcess::Poisson { qps },
        num_requests,
        seq_len: 128,
        seed,
        ..TrafficConfig::default()
    })
    .unwrap();
    let sim = DecodeSim::new(
        paper_backend(),
        trace,
        DecodeConfig {
            placement,
            output_tokens,
            max_batch_size: 8,
            kv_pus,
            ..DecodeConfig::default()
        },
    )
    .unwrap();
    let report = sim.run().unwrap();
    assert_eq!(report.offered, num_requests);
    assert_eq!(
        report.offered,
        report.admitted + report.shed,
        "admission leak: {report:?}"
    );
    assert_eq!(
        report.admitted,
        report.completed + report.evicted,
        "retirement leak: {report:?}"
    );
    assert!(
        report.decoded_tokens <= report.admitted * output_tokens,
        "decoded more tokens than admitted work allows: {report:?}"
    );
    assert!(
        report.decoded_tokens >= report.completed * output_tokens,
        "completed requests decode their full output: {report:?}"
    );
    assert!(report.peak_kv_cells <= report.kv_capacity_cells);
    // Identical inputs, identical report — bit for bit.
    assert_eq!(report, sim.run().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Continuous batched decode with staggered joins is bit-identical to
    /// per-request sequential decode.
    #[test]
    fn batched_decode_is_bit_identical_to_sequential(
        requests in arbitrary_requests(),
        model_seed in any::<u64>(),
    ) {
        check_batched_decode_is_bit_identical(model_seed, &requests, 8);
    }

    /// Request conservation holds for every placement policy across
    /// randomized traffic, pool sizes, and output lengths — including
    /// overloaded pools that shed and evict.
    #[test]
    fn decode_serving_conserves_requests(
        qps in 500f64..40_000.0,
        num_requests in 10usize..60,
        output_tokens in 1usize..48,
        kv_pus in 1usize..6,
        seed in any::<u64>(),
        placement_index in 0usize..3,
    ) {
        let placement = [
            KvPlacementPolicy::SlcOnly,
            KvPlacementPolicy::MlcOnly,
            KvPlacementPolicy::Hybrid { hot_window: 16 },
        ][placement_index];
        check_decode_serving_conserves_requests(
            placement,
            qps,
            num_requests,
            output_tokens,
            kv_pus,
            seed,
        );
    }
}

#[test]
fn batch_of_one_matches_sequential_exactly() {
    let requests = vec![DecodeRequest {
        prompt: vec![3, 1, 4],
        joins_at: 0,
    }];
    check_batched_decode_is_bit_identical(7, &requests, 8);
}
