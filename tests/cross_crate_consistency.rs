//! Consistency checks between independent implementations of the same
//! quantity in different crates.

use hyflex_circuits::adc::{AdcMode, SarAdc};
use hyflex_pim::config::HyFlexPimConfig;
use hyflex_pim::mapping;
use hyflex_pim::perf::{EvaluationPoint, PerformanceModel};
use hyflex_rram::mapping::{MappedMatrix, WeightMapping};
use hyflex_rram::noise::NoiseModel;
use hyflex_rram::spec::ArraySpec;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use hyflex_transformer::config::{ModelConfig, StaticLayerKind};
use hyflex_transformer::ops_count;

#[test]
fn adc_resolution_formula_matches_adc_modes() {
    // The array-spec formula (ceil(log2 rows) + bits/cell - 1) must agree
    // with the two ADC modes the circuit model implements.
    let spec = ArraySpec::analog();
    assert_eq!(spec.required_adc_bits(1), AdcMode::Slc6Bit.bits());
    assert_eq!(spec.required_adc_bits(2), AdcMode::Mlc7Bit.bits());
    // And the ADC full scale matches the maximum column sum of that geometry.
    let adc = SarAdc::for_crossbar(AdcMode::Mlc7Bit, spec.rows, 2).unwrap();
    assert_eq!(adc.full_scale(), (spec.rows * 3) as f64);
}

#[test]
fn bit_serial_crossbar_gemv_matches_dense_reference_within_quantization() {
    // The digit-level RRAM model and the plain float GEMV must agree when the
    // device is ideal and the ADC is not truncating.
    let mut rng = Rng::seed_from(3);
    let weights = Matrix::random_normal(64, 12, 0.0, 0.4, &mut rng);
    let input: Vec<f32> = (0..64).map(|_| rng.normal_with(0.0, 0.4) as f32).collect();
    let mut mapping = WeightMapping::mlc_default();
    mapping.adc_bits = None;
    let mapped = MappedMatrix::program(&weights, mapping, &NoiseModel::ideal(), &mut rng).unwrap();
    let pim = mapped.gemv(&input).unwrap();
    let exact = weights.transpose().matvec(&input).unwrap();
    for (a, b) in pim.iter().zip(exact.iter()) {
        assert!((a - b).abs() < 0.05, "PIM {a} vs exact {b}");
    }
}

#[test]
fn layer_mapping_cell_counts_match_config_capacity_accounting() {
    // crates/core/mapping (per-layer) and HyFlexPimConfig (per-chip capacity)
    // must use the same cells-per-weight constants.
    let hw = HyFlexPimConfig::paper_default();
    let energy = hyflex_circuits::EnergyModel::default();
    let model = ModelConfig::bert_base();
    let m = mapping::map_layer(&model, StaticLayerKind::Query, &hw, 1.0, &energy).unwrap();
    let weights = m.slc.weights;
    assert_eq!(m.slc.cells, weights * hw.slc_cells_per_weight());
    let m = mapping::map_layer(&model, StaticLayerKind::Query, &hw, 0.0, &energy).unwrap();
    assert_eq!(m.mlc.cells, m.mlc.weights * hw.mlc_cells_per_weight());
}

#[test]
fn performance_model_ops_match_ops_count_totals() {
    let perf = PerformanceModel::paper_default();
    let model = ModelConfig::bert_base();
    let summary = perf
        .evaluate(&EvaluationPoint {
            model: model.clone(),
            seq_len: 512,
            slc_rank_fraction: 0.1,
        })
        .unwrap();
    assert_eq!(summary.total_ops, ops_count::total_ops(&model, 512) * 2);
}

#[test]
fn table2_area_matches_performance_model_area() {
    let perf = PerformanceModel::paper_default();
    let table = hyflex_circuits::Table2::paper_65nm();
    assert!((perf.chip_area_mm2() - table.chip_area_mm2()).abs() < 1e-9);
}

#[test]
fn noise_model_is_shared_between_rram_and_core_defaults() {
    let hw = HyFlexPimConfig::paper_default();
    let standalone = NoiseModel::calibrated_to_paper();
    assert_eq!(hw.noise, standalone);
}
