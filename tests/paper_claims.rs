//! Tests of the paper's headline quantitative claims, checked against the
//! reproduction's own models (shape and direction, not absolute joules).

use hyflex_baselines::{Accelerator, Asadi, AsadiPrecision, HyFlexPimAccelerator, NonPim, Sprint};
use hyflex_pim::mapping;
use hyflex_pim::perf::{EvaluationPoint, PerformanceModel};
use hyflex_pim::scalability::ScalabilityModel;
use hyflex_transformer::config::{ModelConfig, StaticLayerKind};
use hyflex_transformer::ops_count;

/// Section 2.1: more than 70 % of transformer computation comes from static
/// weights at typical sequence lengths.
#[test]
fn static_weights_dominate_computation() {
    for model in [ModelConfig::bert_base(), ModelConfig::bert_large()] {
        for n in [128, 512, 1024] {
            assert!(
                ops_count::static_weight_fraction(&model, n) > 0.7,
                "{} at N={n}",
                model.name
            );
        }
    }
}

/// Section 3.3 / 6.1: with 5-10 % protection, 90-95 % of the encoder weights
/// are processed in MLC.
#[test]
fn low_protection_rates_keep_most_weights_in_mlc() {
    let hw = hyflex_pim::HyFlexPimConfig::paper_default();
    let energy = hyflex_circuits::EnergyModel::default();
    for rate in [0.05, 0.10] {
        let block = mapping::map_block(&ModelConfig::bert_base(), &hw, rate, &energy).unwrap();
        let weights: usize = block.iter().map(|m| m.slc.weights + m.mlc.weights).sum();
        let mlc: usize = block.iter().map(|m| m.mlc.weights).sum();
        let fraction = mlc as f64 / weights as f64;
        assert!(
            fraction > 0.88 && fraction < 0.97,
            "MLC weight fraction {fraction:.3} at rate {rate}"
        );
    }
}

/// Section 6.3.1 / Figure 16: HyFlexPIM achieves a 1.1-1.86x (max ~1.9x)
/// throughput advantage over ASADI-dagger; our model must land in a
/// comparable band and never fall below parity.
#[test]
fn throughput_speedup_over_asadi_is_in_band() {
    let asadi = Asadi::new(AsadiPrecision::Int8);
    let model = ModelConfig::bert_large();
    for (n, rate) in [(128usize, 0.05f64), (1024, 0.10), (4096, 0.30)] {
        let hyflex = HyFlexPimAccelerator::new(rate);
        let speedup =
            hyflex.tops_per_mm2(&model, n).unwrap() / asadi.tops_per_mm2(&model, n).unwrap();
        assert!(
            (1.0..=2.6).contains(&speedup),
            "speedup {speedup:.2} at N={n}, rate {rate}"
        );
    }
}

/// Figure 14: linear-layer energy advantage over ASADI-dagger peaks around
/// the paper's ~1.24x at low SLC rates and shrinks as the SLC rate grows.
#[test]
fn linear_layer_energy_gain_over_asadi_shrinks_with_slc_rate() {
    let asadi = Asadi::new(AsadiPrecision::Int8);
    let model = ModelConfig::bert_large();
    let gain = |rate: f64| {
        let hyflex = HyFlexPimAccelerator::new(rate);
        asadi.linear_layer_energy_pj(&model, 128).unwrap()
            / hyflex.linear_layer_energy_pj(&model, 128).unwrap()
    };
    let at_5 = gain(0.05);
    let at_50 = gain(0.50);
    assert!(
        at_5 > at_50,
        "gain should shrink with SLC rate: {at_5:.2} vs {at_50:.2}"
    );
    assert!(at_5 > 1.1 && at_5 < 2.0, "gain at 5% SLC: {at_5:.2}");
}

/// Figures 14/15: HyFlexPIM is more energy-efficient than SPRINT, the NMP
/// baseline, and the non-PIM baseline, with the largest margins against the
/// movement-dominated designs.
#[test]
fn end_to_end_energy_beats_all_baselines() {
    let model = ModelConfig::bert_large();
    let hyflex = HyFlexPimAccelerator::new(0.05);
    let ours = hyflex.end_to_end_energy(&model, 128).unwrap().total_pj();
    let sprint = Sprint::new()
        .end_to_end_energy(&model, 128)
        .unwrap()
        .total_pj();
    let non_pim = NonPim::new()
        .end_to_end_energy(&model, 128)
        .unwrap()
        .total_pj();
    assert!(ours < sprint);
    assert!(ours < non_pim);
    assert!(
        non_pim / ours > 2.0,
        "expected a multi-x advantage over the non-PIM baseline, got {:.2}",
        non_pim / ours
    );
}

/// Figure 16 (SPRINT comparison): the throughput advantage over SPRINT is an
/// order of magnitude, and it is larger at short sequences where the FFNs
/// SPRINT cannot accelerate dominate.
#[test]
fn speedup_over_sprint_is_large_and_shrinks_with_sequence_length() {
    let sprint = Sprint::new();
    let model = ModelConfig::bert_large();
    let hyflex = HyFlexPimAccelerator::new(0.10);
    let speedup = |n: usize| {
        hyflex.tops_per_mm2(&model, n).unwrap() / sprint.tops_per_mm2(&model, n).unwrap()
    };
    let short = speedup(128);
    let long = speedup(4096);
    assert!(short > 5.0, "short-sequence speedup {short:.1}");
    assert!(
        short > long,
        "advantage should shrink with N: {short:.1} vs {long:.1}"
    );
}

/// Figure 17: two PUs per layer give ~1.99x throughput; quad- and octa-chip
/// Llama3 give ~1.96x and ~3.65x over dual-chip.
#[test]
fn scalability_matches_figure_17_shape() {
    let model = ScalabilityModel::paper_default();
    let points = model.figure17().unwrap();
    let by_label = |needle: &str| {
        points
            .iter()
            .find(|p| p.label.contains(needle))
            .unwrap()
            .normalized_throughput
    };
    let dual_pu = by_label("x2 PUs");
    assert!((1.9..=2.0).contains(&dual_pu), "x2 PUs -> {dual_pu:.3}");
    let quad = by_label("quad");
    let octa = by_label("octa");
    assert!((1.8..=2.0).contains(&quad), "quad-chip -> {quad:.3}");
    assert!((3.2..=4.0).contains(&octa), "octa-chip -> {octa:.3}");
}

/// Section 5.4 / Table 2: the hard-threshold factorization keeps every
/// BERT-Large layer within one PU (one layer per PU across 24 PUs).
#[test]
fn bert_large_maps_one_layer_per_pu() {
    let perf = PerformanceModel::paper_default();
    let summary = perf
        .evaluate(&EvaluationPoint {
            model: ModelConfig::bert_large(),
            seq_len: 128,
            slc_rank_fraction: 0.05,
        })
        .unwrap();
    assert_eq!(summary.chips, 1);
    // All six static layers of one block fit in one PU's analog arrays.
    let hw = hyflex_pim::HyFlexPimConfig::paper_default();
    let energy = hyflex_circuits::EnergyModel::default();
    let block = mapping::map_block(&ModelConfig::bert_large(), &hw, 0.05, &energy).unwrap();
    let arrays: usize = block.iter().map(|m| m.total_arrays()).sum();
    assert!(arrays <= hw.analog_modules_per_pu * hw.analog_arrays_per_module);
}

/// The reconfigurable ADC claim: switching an analog module between SLC and
/// MLC modes changes only the resolution (6 vs 7 bits), not the hardware.
#[test]
fn adc_reconfiguration_covers_both_modes() {
    use hyflex_circuits::adc::{AdcMode, SarAdc};
    let mut adc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
    assert_eq!(adc.convert(33.0).comparisons, 6);
    adc.reconfigure(AdcMode::Mlc7Bit, 192.0).unwrap();
    assert_eq!(adc.convert(33.0).comparisons, 7);
}

/// Static-weight shapes used throughout the hardware model match the paper's
/// Figure 1 dimensions for every evaluated model.
#[test]
fn static_layer_shapes_match_figure_1_for_all_models() {
    for model in ModelConfig::paper_models() {
        let dh = model.hidden_dim;
        let dff = model.ffn_dim;
        assert_eq!(model.static_layer_shape(StaticLayerKind::Query), (dh, dh));
        assert_eq!(model.static_layer_shape(StaticLayerKind::Ffn1), (dh, dff));
        assert_eq!(model.static_layer_shape(StaticLayerKind::Ffn2), (dff, dh));
    }
}
