//! Per-event energy model derived from the Table 2 power budget.
//!
//! The paper reports component power (Table 2) and component activity
//! (100 ns crossbar read cycles, a 1.28 GS/s shared ADC, a 1 GHz digital
//! clock). Dividing power by the corresponding event rate yields per-event
//! energies, which is what the architecture-level performance model actually
//! consumes. Memory-movement and digital-compute energies used by the
//! baseline accelerators (DRAM/HBM/SRAM accesses, INT8/FP32 MACs) are also
//! collected here so every crate draws from a single set of constants.

use crate::table2::Table2;
use serde::{Deserialize, Serialize};

/// Crossbar read cycle: 128 bit lines digitized through one 1.28 GS/s ADC.
pub const CROSSBAR_READ_CYCLE_NS: f64 = 100.0;

/// Digital clock frequency for the S&A, SFU and controllers (Section 5.4).
pub const DIGITAL_CLOCK_HZ: f64 = 1.0e9;

/// Shared-ADC sample rate (Section 5.4).
pub const ADC_SAMPLE_RATE_HZ: f64 = 1.28e9;

/// Per-event energies (picojoules) and related constants for the 65 nm node.
///
/// All fields are public: this is a passive configuration record that the
/// architecture model and the baselines consume directly; experiments can
/// tweak individual entries for sensitivity studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one ADC conversion (one bit-line sample), pJ.
    pub adc_conversion_pj: f64,
    /// Energy of one analog array read cycle (all 64 rows, 128 bit lines), pJ.
    pub analog_array_read_cycle_pj: f64,
    /// Energy of the word-line drivers of one analog array for one cycle, pJ.
    pub analog_wldrv_cycle_pj: f64,
    /// Energy of one shift-and-add operation, pJ.
    pub shift_add_op_pj: f64,
    /// Energy of one sample-and-hold capture, pJ.
    pub sample_hold_pj: f64,
    /// Energy to write one SLC cell (single SET/RESET pulse), pJ.
    pub slc_cell_write_pj: f64,
    /// Energy to write one 2-bit MLC cell (iterative program-and-verify), pJ.
    pub mlc_cell_write_pj: f64,
    /// Energy of one digital-PIM array compute cycle, pJ.
    pub digital_array_cycle_pj: f64,
    /// Energy of the digital-PIM word-line drivers for one array cycle, pJ.
    pub digital_wldrv_cycle_pj: f64,
    /// Energy per scalar element through the SFU pipeline, pJ.
    pub sfu_element_pj: f64,
    /// Energy per byte read from the input/output SRAM registers, pJ.
    pub sram_register_byte_pj: f64,
    /// Energy per byte moved across the inner-unit shared bus, pJ.
    pub inner_bus_byte_pj: f64,
    /// Energy per byte moved across the global (PCIe-class) bus, pJ.
    pub global_bus_byte_pj: f64,
    /// Energy per byte of off-chip DRAM access (non-PIM baseline), pJ.
    pub dram_access_byte_pj: f64,
    /// Energy per byte of HBM near-memory access (NMP baseline), pJ.
    pub hbm_access_byte_pj: f64,
    /// Energy per byte of large on-chip SRAM cache access, pJ.
    pub sram_cache_byte_pj: f64,
    /// Energy of one INT8 multiply-accumulate in a digital datapath, pJ.
    pub int8_mac_pj: f64,
    /// Energy of one FP32 multiply-accumulate in a digital datapath, pJ.
    pub fp32_mac_pj: f64,
}

impl EnergyModel {
    /// Derives the per-event energies from the paper's Table 2 power budget.
    pub fn from_table2(table: &Table2) -> Self {
        let analog = &table.analog;
        let arrays_per_module = 512.0;
        let read_cycle_s = CROSSBAR_READ_CYCLE_NS * 1e-9;

        let adc_power_mw = analog.component("ADC").map(|c| c.power_mw).unwrap_or(512.0);
        let adc_conversion_pj = adc_power_mw / arrays_per_module * 1e-3 / ADC_SAMPLE_RATE_HZ * 1e12;

        let array_power_mw = analog
            .component("RRAM Array")
            .map(|c| c.power_mw)
            .unwrap_or(60.78);
        let analog_array_read_cycle_pj =
            array_power_mw / arrays_per_module * 1e-3 * read_cycle_s * 1e12;

        let wldrv_power_mw = analog
            .component("WL DRV")
            .map(|c| c.power_mw)
            .unwrap_or(297.71);
        let analog_wldrv_cycle_pj = wldrv_power_mw / arrays_per_module * 1e-3 * read_cycle_s * 1e12;

        let sa_power_mw = analog.component("S&A").map(|c| c.power_mw).unwrap_or(59.54);
        let shift_add_op_pj = sa_power_mw / arrays_per_module * 1e-3 / ADC_SAMPLE_RATE_HZ * 1e12;

        let sh_power_mw = analog.component("S&H").map(|c| c.power_mw).unwrap_or(12e-6);
        let sample_hold_pj = sh_power_mw / arrays_per_module * 1e-3 / ADC_SAMPLE_RATE_HZ * 1e12;

        let digital = &table.digital;
        let digital_arrays = 256.0;
        let digital_cycle_s = 1.0 / DIGITAL_CLOCK_HZ;
        let d_array_power_mw = digital
            .component("RRAM Array")
            .map(|c| c.power_mw)
            .unwrap_or(3890.02);
        let digital_array_cycle_pj =
            d_array_power_mw / digital_arrays * 1e-3 * digital_cycle_s * 1e12;
        let d_wldrv_power_mw = digital
            .component("WL DRV")
            .map(|c| c.power_mw)
            .unwrap_or(2381.64);
        let digital_wldrv_cycle_pj =
            d_wldrv_power_mw / digital_arrays * 1e-3 * digital_cycle_s * 1e12;

        let sfu_power_mw = digital
            .component("SFU")
            .map(|c| c.power_mw)
            .unwrap_or(138.89);
        let sfu_element_pj =
            sfu_power_mw * 1e-3 * digital_cycle_s / super::sfu::SFU_INPUTS_PER_CYCLE as f64 * 1e12;

        EnergyModel {
            adc_conversion_pj,
            analog_array_read_cycle_pj,
            analog_wldrv_cycle_pj,
            shift_add_op_pj,
            sample_hold_pj,
            // SET pulse: 1.62 V across ~6 kΩ for ~10 ns ≈ 4.4 pJ; MLC needs
            // iterative program-and-verify (4 pulses for 2-bit cells).
            slc_cell_write_pj: 4.4,
            mlc_cell_write_pj: 17.6,
            digital_array_cycle_pj,
            digital_wldrv_cycle_pj,
            sfu_element_pj,
            // SRAM register / cache / interconnect / DRAM constants follow the
            // sources cited in Section 5.3 (ARM memory compiler, O'Connor et
            // al. for DRAM, TransPIM for HBM banks), all at 65 nm.
            sram_register_byte_pj: 0.5,
            inner_bus_byte_pj: 1.0,
            global_bus_byte_pj: 40.0,
            dram_access_byte_pj: 160.0,
            hbm_access_byte_pj: 32.0,
            sram_cache_byte_pj: 4.0,
            int8_mac_pj: 0.4,
            fp32_mac_pj: 4.6,
        }
    }

    /// Energy of one full analog-array bit-serial read cycle, including the
    /// 128 ADC conversions, sample-and-hold captures, and shift-add updates.
    pub fn analog_cycle_total_pj(&self, bit_lines: usize) -> f64 {
        self.analog_array_read_cycle_pj
            + self.analog_wldrv_cycle_pj
            + bit_lines as f64
                * (self.adc_conversion_pj + self.sample_hold_pj + self.shift_add_op_pj)
    }

    /// Energy to program a matrix of `cells` cells in the given mode.
    pub fn array_write_pj(&self, cells: usize, mlc: bool) -> f64 {
        let per_cell = if mlc {
            self.mlc_cell_write_pj
        } else {
            self.slc_cell_write_pj
        };
        cells as f64 * per_cell
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::from_table2(&Table2::paper_65nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_energy_is_sub_picojoule_per_conversion() {
        let e = EnergyModel::default();
        // 1 mW per ADC at 1.28 GS/s -> 0.78 pJ per conversion.
        assert!((e.adc_conversion_pj - 0.78).abs() < 0.05);
    }

    #[test]
    fn analog_array_cycle_energy_matches_power_budget() {
        let e = EnergyModel::default();
        // 60.78 mW / 512 arrays over 100 ns ≈ 11.9 pJ.
        assert!((e.analog_array_read_cycle_pj - 11.9).abs() < 0.5);
        // WL drivers: 297.71 mW / 512 over 100 ns ≈ 58 pJ.
        assert!((e.analog_wldrv_cycle_pj - 58.1).abs() < 1.0);
    }

    #[test]
    fn full_cycle_total_is_dominated_by_adc_and_wldrv() {
        let e = EnergyModel::default();
        let total = e.analog_cycle_total_pj(128);
        let adc_part = 128.0 * e.adc_conversion_pj;
        assert!(total > adc_part);
        assert!((adc_part + e.analog_wldrv_cycle_pj) / total > 0.8);
    }

    #[test]
    fn mlc_writes_cost_more_than_slc_writes() {
        let e = EnergyModel::default();
        assert!(e.mlc_cell_write_pj > 2.0 * e.slc_cell_write_pj);
        assert!(e.array_write_pj(100, true) > e.array_write_pj(100, false));
    }

    #[test]
    fn memory_hierarchy_energies_are_ordered() {
        let e = EnergyModel::default();
        assert!(e.sram_register_byte_pj < e.sram_cache_byte_pj);
        assert!(e.sram_cache_byte_pj < e.hbm_access_byte_pj);
        assert!(e.hbm_access_byte_pj < e.dram_access_byte_pj);
        assert!(e.inner_bus_byte_pj < e.global_bus_byte_pj);
    }

    #[test]
    fn fp32_mac_costs_more_than_int8_mac() {
        let e = EnergyModel::default();
        assert!(e.fp32_mac_pj > 5.0 * e.int8_mac_pj);
    }

    #[test]
    fn sfu_energy_per_element_is_small() {
        let e = EnergyModel::default();
        // 138.89 mW / 256 elements per 1 ns cycle ≈ 0.54 pJ per element.
        assert!((e.sfu_element_pj - 0.54).abs() < 0.05);
    }

    #[test]
    fn digital_array_cycle_energy() {
        let e = EnergyModel::default();
        // 3890 mW / 256 arrays over 1 ns ≈ 15.2 pJ.
        assert!((e.digital_array_cycle_pj - 15.2).abs() < 0.5);
        assert!((e.digital_wldrv_cycle_pj - 9.3).abs() < 0.5);
    }
}
