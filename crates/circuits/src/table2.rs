//! Component-level area and power breakdown (paper Table 2, 65 nm).
//!
//! These constants are the anchor of the whole performance model: the paper
//! derives its architecture-level energy and area numbers from exactly this
//! table (NVSIM for the RRAM arrays, the ARM memory compiler for the SRAM
//! registers, published ADC surveys for the converters, and synthesis for the
//! SFU). The benchmark binary `table2_hw_config` prints this structure in the
//! same layout as the paper.

use serde::Serialize;

/// One row of Table 2: a peripheral or memory component inside a PIM module.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComponentSpec {
    /// Component name as printed in the paper.
    pub name: &'static str,
    /// Area in mm² for all instances inside one module.
    pub area_mm2: f64,
    /// Power in mW for all instances inside one module.
    pub power_mw: f64,
    /// Short description of the sizing parameter (e.g. "64×128", "6-b/7-b").
    pub parameter: &'static str,
    /// Number of instances inside one module.
    pub count: usize,
}

/// Area/power breakdown of one PIM module plus the module count per chip.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModuleBreakdown {
    /// Module name ("Analog RRAM Module" / "Digital RRAM Module").
    pub name: &'static str,
    /// Per-component rows.
    pub components: Vec<ComponentSpec>,
    /// Number of such modules in one HyFlexPIM chip (24 analog PUs × modules).
    pub modules_per_chip: usize,
}

impl ModuleBreakdown {
    /// Total area of one module (the paper's "Sum" row), mm².
    pub fn module_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total power of one module (the paper's "Sum" row), mW.
    pub fn module_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }

    /// Chip-level area contribution (the paper's "Total" row), mm².
    pub fn chip_area_mm2(&self) -> f64 {
        self.module_area_mm2() * self.modules_per_chip as f64
    }

    /// Chip-level power contribution (the paper's "Total" row), mW.
    pub fn chip_power_mw(&self) -> f64 {
        self.module_power_mw() * self.modules_per_chip as f64
    }

    /// Looks up a component row by name.
    pub fn component(&self, name: &str) -> Option<&ComponentSpec> {
        self.components.iter().find(|c| c.name == name)
    }
}

/// The full Table 2: analog and digital module breakdowns.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table2 {
    /// Analog RRAM PIM module breakdown.
    pub analog: ModuleBreakdown,
    /// Digital RRAM PIM module breakdown.
    pub digital: ModuleBreakdown,
}

impl Table2 {
    /// The published 65 nm numbers.
    pub fn paper_65nm() -> Self {
        let analog = ModuleBreakdown {
            name: "Analog RRAM Module",
            modules_per_chip: 24,
            components: vec![
                ComponentSpec {
                    name: "RRAM Array",
                    area_mm2: 0.048,
                    power_mw: 60.78,
                    parameter: "1-b/2-b, 64x128",
                    count: 512,
                },
                ComponentSpec {
                    name: "IR",
                    area_mm2: 0.00065,
                    power_mw: 0.13,
                    parameter: "64 B each",
                    count: 512,
                },
                ComponentSpec {
                    name: "OR",
                    area_mm2: 0.00129,
                    power_mw: 0.53,
                    parameter: "128 B each",
                    count: 512,
                },
                ComponentSpec {
                    name: "WL DRV",
                    area_mm2: 0.02,
                    power_mw: 297.71,
                    parameter: "1-b resolution",
                    count: 64 * 512,
                },
                ComponentSpec {
                    name: "ADC",
                    area_mm2: 0.30,
                    power_mw: 512.00,
                    parameter: "6-b/7-b SAR",
                    count: 512,
                },
                ComponentSpec {
                    name: "S&A",
                    area_mm2: 0.10,
                    power_mw: 59.54,
                    parameter: "shift & adder",
                    count: 512,
                },
                ComponentSpec {
                    name: "S&H",
                    area_mm2: 6e-5,
                    power_mw: 12e-6,
                    parameter: "sample & hold",
                    count: 512,
                },
            ],
        };
        let digital = ModuleBreakdown {
            name: "Digital RRAM Module",
            modules_per_chip: 8,
            components: vec![
                ComponentSpec {
                    name: "RRAM Array",
                    area_mm2: 2.86,
                    power_mw: 3890.02,
                    parameter: "1-b, 1024x1024",
                    count: 256,
                },
                ComponentSpec {
                    name: "IR",
                    area_mm2: 0.0031,
                    power_mw: 0.76,
                    parameter: "1 KB each",
                    count: 256,
                },
                ComponentSpec {
                    name: "OR",
                    area_mm2: 0.0032,
                    power_mw: 1.65,
                    parameter: "1 KB each",
                    count: 256,
                },
                ComponentSpec {
                    name: "WL DRV",
                    area_mm2: 0.14,
                    power_mw: 2381.64,
                    parameter: "1-b resolution",
                    count: 1024 * 256,
                },
                ComponentSpec {
                    name: "S&A",
                    area_mm2: 0.21,
                    power_mw: 119.08,
                    parameter: "shift & adder",
                    count: 1024,
                },
                ComponentSpec {
                    name: "S&H",
                    area_mm2: 13e-5,
                    power_mw: 23e-6,
                    parameter: "sample & hold",
                    count: 1024,
                },
                ComponentSpec {
                    name: "SFU",
                    area_mm2: 4.79,
                    power_mw: 138.89,
                    parameter: "256 inputs/cycle",
                    count: 1,
                },
            ],
        };
        Table2 { analog, digital }
    }

    /// Total chip area (analog + digital contributions), mm².
    pub fn chip_area_mm2(&self) -> f64 {
        self.analog.chip_area_mm2() + self.digital.chip_area_mm2()
    }

    /// Total chip power (analog + digital contributions), mW.
    pub fn chip_power_mw(&self) -> f64 {
        self.analog.chip_power_mw() + self.digital.chip_power_mw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analog_module_sums_match_paper() {
        let t = Table2::paper_65nm();
        // Paper: Sum = 0.47 mm^2, 930.69 mW per analog module.
        assert!((t.analog.module_area_mm2() - 0.47).abs() < 0.01);
        assert!((t.analog.module_power_mw() - 930.69).abs() < 1.0);
        // Paper: Total = 11.24 mm^2, 22,336.59 mW for 24 analog modules.
        assert!((t.analog.chip_area_mm2() - 11.24).abs() < 0.1);
        assert!((t.analog.chip_power_mw() - 22_336.59).abs() < 25.0);
    }

    #[test]
    fn digital_module_sums_match_paper() {
        let t = Table2::paper_65nm();
        // Paper: Sum = 8.01 mm^2, 6,532.05 mW per digital module.
        assert!((t.digital.module_area_mm2() - 8.01).abs() < 0.01);
        assert!((t.digital.module_power_mw() - 6532.05).abs() < 1.0);
        // Paper: Total = 64.05 mm^2, 52,256.41 mW for 8 digital modules.
        assert!((t.digital.chip_area_mm2() - 64.05).abs() < 0.1);
        assert!((t.digital.chip_power_mw() - 52_256.41).abs() < 10.0);
    }

    #[test]
    fn adc_dominates_analog_module_area_and_power() {
        // The paper highlights that the ADC is ~64% of analog module area and
        // ~55% of its power — the motivation for sharing one ADC per array
        // and for the MLC mode keeping ADC energy flat.
        let t = Table2::paper_65nm();
        let adc = t.analog.component("ADC").unwrap();
        assert!(adc.area_mm2 / t.analog.module_area_mm2() > 0.6);
        assert!(adc.power_mw / t.analog.module_power_mw() > 0.5);
    }

    #[test]
    fn sfu_dominates_digital_module_area() {
        let t = Table2::paper_65nm();
        let sfu = t.digital.component("SFU").unwrap();
        assert!(sfu.area_mm2 / t.digital.module_area_mm2() > 0.5);
    }

    #[test]
    fn component_lookup() {
        let t = Table2::paper_65nm();
        assert!(t.analog.component("WL DRV").is_some());
        assert!(t.analog.component("does-not-exist").is_none());
    }

    #[test]
    fn chip_totals_are_consistent() {
        let t = Table2::paper_65nm();
        let area = t.chip_area_mm2();
        let power = t.chip_power_mw();
        assert!((area - (11.24 + 64.05)).abs() < 0.2);
        assert!((power - (22_336.59 + 52_256.41)).abs() < 40.0);
    }
}
