//! Digital shift-and-add recombination of bit-line results.
//!
//! After the ADC digitizes the per-column analog sums, the shift-and-add
//! (S&A) unit weights each result by the significance of its input bit and of
//! the column's weight bits, then accumulates (Figures 6 and 7). For SLC the
//! consecutive weight columns carry single bits (shift by 1 per column); for
//! 2-bit MLC each column carries two bits (shift by 2, i.e. ×4 per column).

use crate::error::CircuitError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Shift-and-add accumulator for one output element.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShiftAdder {
    accumulator: i64,
    operations: u64,
}

impl ShiftAdder {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        ShiftAdder::default()
    }

    /// Adds `code` shifted left by `shift` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] if the shift exceeds 62 bits
    /// (the accumulator would overflow).
    pub fn accumulate(&mut self, code: i64, shift: u32) -> Result<()> {
        if shift > 62 {
            return Err(CircuitError::InvalidConfig(format!(
                "shift {shift} exceeds the 62-bit accumulator range"
            )));
        }
        self.accumulator += code << shift;
        self.operations += 1;
        Ok(())
    }

    /// Accumulates an ADC code for input bit `input_bit` and weight cell
    /// column `cell_index`, where each cell column carries `bits_per_cell`
    /// weight bits. This is exactly the shift pattern of Figures 6 and 7.
    ///
    /// # Errors
    ///
    /// Propagates overflow errors from [`ShiftAdder::accumulate`].
    pub fn accumulate_pim(
        &mut self,
        code: i64,
        input_bit: u32,
        cell_index: u32,
        bits_per_cell: u8,
    ) -> Result<()> {
        let shift = input_bit + cell_index * u32::from(bits_per_cell);
        self.accumulate(code, shift)
    }

    /// Current accumulated value.
    pub fn value(&self) -> i64 {
        self.accumulator
    }

    /// Number of shift-add operations performed.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Resets the accumulator for the next output element.
    pub fn reset(&mut self) {
        self.accumulator = 0;
        self.operations = 0;
    }
}

/// Number of shift-add operations needed per output element for a full
/// bit-serial GEMV: one per (input bit × weight cell column).
pub fn ops_per_output(input_bits: u8, weight_bits: u8, bits_per_cell: u8) -> u64 {
    let cells = weight_bits.div_ceil(bits_per_cell);
    u64::from(input_bits) * u64::from(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_applies_shift() {
        let mut sa = ShiftAdder::new();
        sa.accumulate(3, 0).unwrap();
        sa.accumulate(3, 2).unwrap();
        assert_eq!(sa.value(), 3 + 12);
        assert_eq!(sa.operations(), 2);
        sa.reset();
        assert_eq!(sa.value(), 0);
        assert_eq!(sa.operations(), 0);
    }

    #[test]
    fn overflow_guard() {
        let mut sa = ShiftAdder::new();
        assert!(sa.accumulate(1, 63).is_err());
        assert!(sa.accumulate(1, 62).is_ok());
    }

    #[test]
    fn pim_shift_pattern_reconstructs_slc_multiplication() {
        // 4-bit weight 0b1011 = 11, 4-bit input 0b0110 = 6 (Figure 6 style).
        let weight_bits = [1i64, 1, 0, 1]; // LSB first
        let input_bits = [0i64, 1, 1, 0];
        let mut sa = ShiftAdder::new();
        for (w_idx, &w) in weight_bits.iter().enumerate() {
            for (a_idx, &a) in input_bits.iter().enumerate() {
                // Column sum for one input bit and one SLC weight column is a*w.
                sa.accumulate_pim(a * w, a_idx as u32, w_idx as u32, 1)
                    .unwrap();
            }
        }
        assert_eq!(sa.value(), 11 * 6);
    }

    #[test]
    fn pim_shift_pattern_reconstructs_mlc_multiplication() {
        // Same operands, but weight packed as 2-bit MLC digits: 0b1011 -> [3, 2].
        let weight_digits = [3i64, 2];
        let input_bits = [0i64, 1, 1, 0];
        let mut sa = ShiftAdder::new();
        for (cell, &digit) in weight_digits.iter().enumerate() {
            for (a_idx, &a) in input_bits.iter().enumerate() {
                sa.accumulate_pim(a * digit, a_idx as u32, cell as u32, 2)
                    .unwrap();
            }
        }
        assert_eq!(sa.value(), 11 * 6);
    }

    #[test]
    fn mlc_halves_the_shift_add_work() {
        let slc = ops_per_output(8, 8, 1);
        let mlc = ops_per_output(8, 8, 2);
        assert_eq!(slc, 64);
        assert_eq!(mlc, 32);
        assert_eq!(slc, 2 * mlc);
    }
}
