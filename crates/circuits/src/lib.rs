#![forbid(unsafe_code)]
//! # hyflex-circuits
//!
//! Mixed-signal peripheral circuit models and the component-level area /
//! power / energy accounting used by the HyFlexPIM architecture model.
//!
//! The paper's analog PIM module surrounds each 64×128 RRAM array with input
//! and output registers, word-line drivers, sample-and-hold circuits, a
//! shared reconfigurable 6-b/7-b SAR ADC, and a digital shift-and-add unit;
//! the digital PIM module replaces the analog periphery with a Special
//! Function Unit (SFU) for softmax, layer normalization, and GELU
//! (Figure 5, Table 2). This crate models each of those blocks both
//! *functionally* (bit-accurate conversion, Taylor-series exponentials) and
//! *as cost contributors* (area, power, per-event energy at 65 nm).
//!
//! Modules:
//!
//! * [`adc`] — successive-approximation ADC with the paper's MSB-capacitor
//!   bypass reconfiguration between 6-bit (SLC) and 7-bit (MLC) modes.
//! * [`shift_add`] — the digital shift-and-add recombination of bit-line
//!   results for SLC (×2 per column) and MLC (×4 per column) mappings.
//! * [`peripherals`] — word-line drivers and sample-and-hold circuits.
//! * [`sfu`] — the floating-point special function unit: max-search,
//!   Taylor-series exponentiation, division, square root; softmax, layer
//!   norm, and GELU built from those primitives with cycle accounting.
//! * [`table2`] — the component-level area/power breakdown of Table 2.
//! * [`energy`] — per-event energies derived from Table 2 (pJ per ADC
//!   conversion, per array read cycle, per SFU input, ...).
//! * [`scaling`] — Stillmaker–Baas style technology scaling helpers used to
//!   normalize every number to the paper's 65 nm node.

pub mod adc;
pub mod energy;
pub mod error;
pub mod peripherals;
pub mod scaling;
pub mod sfu;
pub mod shift_add;
pub mod table2;

pub use adc::SarAdc;
pub use energy::EnergyModel;
pub use error::CircuitError;
pub use sfu::SpecialFunctionUnit;
pub use shift_add::ShiftAdder;
pub use table2::{ComponentSpec, ModuleBreakdown, Table2};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
