//! Word-line drivers and sample-and-hold circuits.
//!
//! These are small blocks functionally, but they matter for the energy
//! breakdown: the word-line drivers are the second-largest power consumer in
//! the analog module (Table 2), because every active row of every array is
//! driven each input-bit cycle.

use crate::error::CircuitError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A 1-bit word-line driver (1-bit DAC) feeding one crossbar row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WordlineDriver {
    read_voltage: f64,
    activations: u64,
}

impl WordlineDriver {
    /// Creates a driver with the given read voltage (volts).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for non-positive voltages.
    pub fn new(read_voltage: f64) -> Result<Self> {
        if !(read_voltage.is_finite() && read_voltage > 0.0) {
            return Err(CircuitError::InvalidConfig(format!(
                "read voltage {read_voltage} must be positive"
            )));
        }
        Ok(WordlineDriver {
            read_voltage,
            activations: 0,
        })
    }

    /// Drives one input bit: returns the applied voltage (0 for a zero bit).
    pub fn drive(&mut self, bit: bool) -> f64 {
        if bit {
            self.activations += 1;
            self.read_voltage
        } else {
            0.0
        }
    }

    /// Number of `1` bits driven so far (proportional to dynamic energy).
    pub fn activations(&self) -> u64 {
        self.activations
    }
}

/// A sample-and-hold circuit capturing one bit-line output before the shared
/// ADC digitizes it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleAndHold {
    held: Option<f64>,
    samples: u64,
}

impl SampleAndHold {
    /// Creates an empty sample-and-hold stage.
    pub fn new() -> Self {
        SampleAndHold::default()
    }

    /// Samples a new analog value, replacing the previous one.
    pub fn sample(&mut self, value: f64) {
        self.held = Some(value);
        self.samples += 1;
    }

    /// The held value, if any has been sampled.
    pub fn held(&self) -> Option<f64> {
        self.held
    }

    /// Reads the held value with a droop factor applied after `hold_ns`
    /// nanoseconds (a first-order leak with a 10 µs time constant — droop is
    /// negligible over the 100 ns conversion window, which is the point).
    pub fn read_after(&self, hold_ns: f64) -> Option<f64> {
        const TAU_NS: f64 = 10_000.0;
        self.held.map(|v| v * (-hold_ns / TAU_NS).exp())
    }

    /// Number of samples captured.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_validates_voltage_and_counts_activations() {
        assert!(WordlineDriver::new(0.0).is_err());
        assert!(WordlineDriver::new(-0.2).is_err());
        let mut drv = WordlineDriver::new(0.2).unwrap();
        assert_eq!(drv.drive(false), 0.0);
        assert_eq!(drv.drive(true), 0.2);
        assert_eq!(drv.drive(true), 0.2);
        assert_eq!(drv.activations(), 2);
    }

    #[test]
    fn sample_and_hold_round_trips() {
        let mut sh = SampleAndHold::new();
        assert_eq!(sh.held(), None);
        sh.sample(1.25);
        assert_eq!(sh.held(), Some(1.25));
        assert_eq!(sh.samples(), 1);
        sh.sample(0.5);
        assert_eq!(sh.held(), Some(0.5));
        assert_eq!(sh.samples(), 2);
    }

    #[test]
    fn droop_is_negligible_over_the_conversion_window() {
        let mut sh = SampleAndHold::new();
        sh.sample(1.0);
        let after_conversion = sh.read_after(100.0).unwrap();
        assert!(after_conversion > 0.98);
        // But a very long hold visibly droops.
        let after_long_hold = sh.read_after(50_000.0).unwrap();
        assert!(after_long_hold < 0.05);
    }
}
