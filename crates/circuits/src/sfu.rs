//! Special Function Unit (SFU) for non-linear operations.
//!
//! The digital PIM module embeds an SFU that evaluates softmax, layer
//! normalization, and GELU in floating point using a fully pipelined datapath
//! of max-search, subtraction, Taylor-series exponentiation, addition,
//! division, multiplication, and square-root stages (paper Section 3.1).
//! Each SFU instance processes 256 inputs per cycle, a rate chosen to balance
//! the GEMV throughput of the digital PIM arrays (≈273 operations per cycle).
//!
//! The functional implementations here use the same argument-reduced Taylor
//! exponential the hardware would, so their numerical error against the exact
//! reference in `hyflex-tensor::activations` is representative.

use crate::error::CircuitError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Inputs processed per cycle by one SFU (paper Section 3.1).
pub const SFU_INPUTS_PER_CYCLE: usize = 256;

/// Taylor-series terms used for the exponential (after argument reduction).
pub const DEFAULT_TAYLOR_TERMS: usize = 8;

/// Pipeline statistics accumulated by SFU evaluations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SfuStats {
    /// Total scalar elements processed.
    pub elements: u64,
    /// Total pipeline cycles consumed.
    pub cycles: u64,
    /// Number of kernel invocations (softmax rows, layer-norm rows, ...).
    pub invocations: u64,
}

impl SfuStats {
    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &SfuStats) {
        self.elements += other.elements;
        self.cycles += other.cycles;
        self.invocations += other.invocations;
    }
}

/// Taylor-series exponential with argument reduction.
///
/// The argument is repeatedly halved until `|x| ≤ 0.5`, the truncated Taylor
/// series is evaluated, and the result is squared back up. This is the
/// standard trick for keeping a short series accurate over the range softmax
/// needs (large negative arguments).
pub fn taylor_exp(x: f32, terms: usize) -> f32 {
    if terms == 0 {
        return 1.0;
    }
    let mut halvings = 0u32;
    let mut reduced = x as f64;
    while reduced.abs() > 0.5 && halvings < 60 {
        reduced *= 0.5;
        halvings += 1;
    }
    let mut sum = 1.0f64;
    let mut term = 1.0f64;
    for k in 1..terms {
        term *= reduced / k as f64;
        sum += term;
    }
    for _ in 0..halvings {
        sum *= sum;
    }
    sum as f32
}

/// The floating-point special function unit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpecialFunctionUnit {
    taylor_terms: usize,
    stats: SfuStats,
}

impl SpecialFunctionUnit {
    /// Creates an SFU with the default Taylor-series depth.
    pub fn new() -> Self {
        SpecialFunctionUnit {
            taylor_terms: DEFAULT_TAYLOR_TERMS,
            stats: SfuStats::default(),
        }
    }

    /// Creates an SFU with a custom Taylor-series depth (for ablations).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] when `terms` is zero or
    /// implausibly large.
    pub fn with_taylor_terms(terms: usize) -> Result<Self> {
        if terms == 0 || terms > 64 {
            return Err(CircuitError::InvalidConfig(format!(
                "Taylor series depth {terms} must be in 1..=64"
            )));
        }
        Ok(SpecialFunctionUnit {
            taylor_terms: terms,
            stats: SfuStats::default(),
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SfuStats {
        self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SfuStats::default();
    }

    fn record(&mut self, elements: usize, pipeline_passes: u64) {
        self.stats.elements += elements as u64;
        self.stats.invocations += 1;
        // Each pipeline pass streams the elements through at 256 per cycle.
        let cycles_per_pass = elements.div_ceil(SFU_INPUTS_PER_CYCLE) as u64;
        self.stats.cycles += cycles_per_pass * pipeline_passes;
    }

    /// Hardware softmax: max-search, subtract, Taylor exp, sum, divide.
    pub fn softmax(&mut self, logits: &[f32]) -> Vec<f32> {
        if logits.is_empty() {
            return Vec::new();
        }
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits
            .iter()
            .map(|&x| taylor_exp(x - max, self.taylor_terms))
            .collect();
        let sum: f32 = exps.iter().sum();
        // Five pipeline passes: max, subtract, exp, sum, divide.
        self.record(logits.len(), 5);
        if sum == 0.0 {
            return vec![1.0 / logits.len() as f32; logits.len()];
        }
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Hardware layer normalization (mean, variance, rsqrt, scale/shift).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] when parameter lengths differ.
    pub fn layer_norm(&mut self, x: &[f32], gamma: &[f32], beta: &[f32]) -> Result<Vec<f32>> {
        if x.len() != gamma.len() || x.len() != beta.len() {
            return Err(CircuitError::InvalidConfig(
                "layer_norm parameter lengths must match the input".to_string(),
            ));
        }
        if x.is_empty() {
            return Ok(Vec::new());
        }
        let n = x.len() as f32;
        let mean = x.iter().sum::<f32>() / n;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv_std = 1.0 / (var + 1e-5).sqrt();
        // Four pipeline passes: mean, variance, normalize, affine.
        self.record(x.len(), 4);
        Ok(x.iter()
            .zip(gamma.iter().zip(beta.iter()))
            .map(|(v, (g, b))| (v - mean) * inv_std * g + b)
            .collect())
    }

    /// Hardware GELU using the tanh approximation with the Taylor exponential
    /// (`tanh(z) = 1 − 2 / (e^{2z} + 1)`).
    pub fn gelu(&mut self, x: &[f32]) -> Vec<f32> {
        const SQRT_2_OVER_PI: f32 = 0.797_884_6;
        let out = x
            .iter()
            .map(|&v| {
                let inner = SQRT_2_OVER_PI * (v + 0.044_715 * v * v * v);
                let e = taylor_exp(2.0 * inner, self.taylor_terms);
                let tanh = 1.0 - 2.0 / (e + 1.0);
                0.5 * v * (1.0 + tanh)
            })
            .collect();
        // Three pipeline passes: polynomial, exp, combine.
        self.record(x.len(), 3);
        out
    }

    /// Cycles needed to stream `elements` values through one pipeline pass.
    pub fn cycles_for(&self, elements: usize) -> u64 {
        elements.div_ceil(SFU_INPUTS_PER_CYCLE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_tensor::activations;

    #[test]
    fn taylor_exp_matches_reference_over_softmax_range() {
        for &x in &[-10.0f32, -4.0, -1.0, -0.3, 0.0, 0.4, 1.7, 3.0] {
            let approx = taylor_exp(x, DEFAULT_TAYLOR_TERMS);
            let exact = x.exp();
            let rel = ((approx - exact) / exact.max(1e-12)).abs();
            assert!(rel < 1e-4, "exp({x}): {approx} vs {exact}");
        }
        assert_eq!(taylor_exp(0.3, 0), 1.0);
    }

    #[test]
    fn sfu_softmax_matches_exact_softmax() {
        let mut sfu = SpecialFunctionUnit::new();
        let logits = [1.2f32, -0.7, 3.3, 0.0, -5.0];
        let hw = sfu.softmax(&logits);
        let exact = activations::softmax(&logits);
        for (a, b) in hw.iter().zip(exact.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!((hw.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(sfu.softmax(&[]).is_empty());
    }

    #[test]
    fn sfu_layer_norm_matches_exact_reference() {
        let mut sfu = SpecialFunctionUnit::new();
        let x = [0.5f32, -1.0, 2.0, 0.3];
        let gamma = [1.0f32; 4];
        let beta = [0.0f32; 4];
        let hw = sfu.layer_norm(&x, &gamma, &beta).unwrap();
        let exact = activations::layer_norm(&x, &gamma, &beta, 1e-5).output;
        for (a, b) in hw.iter().zip(exact.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!(sfu.layer_norm(&x, &gamma[..2], &beta).is_err());
    }

    #[test]
    fn sfu_gelu_matches_exact_reference() {
        let mut sfu = SpecialFunctionUnit::new();
        let x = [-2.0f32, -0.5, 0.0, 0.7, 2.3];
        let hw = sfu.gelu(&x);
        for (v, h) in x.iter().zip(hw.iter()) {
            let exact = activations::gelu(*v);
            assert!((h - exact).abs() < 1e-3, "gelu({v}): {h} vs {exact}");
        }
    }

    #[test]
    fn pipeline_statistics_track_throughput() {
        let mut sfu = SpecialFunctionUnit::new();
        // 512 elements = 2 cycles per pass, 5 passes for softmax.
        let logits: Vec<f32> = (0..512).map(|i| (i % 7) as f32 * 0.1).collect();
        sfu.softmax(&logits);
        let stats = sfu.stats();
        assert_eq!(stats.elements, 512);
        assert_eq!(stats.cycles, 10);
        assert_eq!(stats.invocations, 1);
        sfu.reset_stats();
        assert_eq!(sfu.stats(), SfuStats::default());
    }

    #[test]
    fn throughput_balances_digital_pim_gemv_rate() {
        // 256 inputs/cycle was chosen to balance the 273 ops/cycle GEMV rate
        // of a digital module (Section 3.1): the SFU must not be the
        // bottleneck by more than a small margin.
        let sfu = SpecialFunctionUnit::new();
        assert_eq!(SFU_INPUTS_PER_CYCLE, 256);
        assert_eq!(sfu.cycles_for(256), 1);
        assert_eq!(sfu.cycles_for(257), 2);
        let ratio = 273.0 / SFU_INPUTS_PER_CYCLE as f64;
        assert!(ratio < 1.1);
    }

    #[test]
    fn custom_taylor_depth_is_validated_and_affects_accuracy() {
        assert!(SpecialFunctionUnit::with_taylor_terms(0).is_err());
        assert!(SpecialFunctionUnit::with_taylor_terms(100).is_err());
        let mut coarse = SpecialFunctionUnit::with_taylor_terms(2).unwrap();
        let mut fine = SpecialFunctionUnit::with_taylor_terms(12).unwrap();
        let logits = [0.3f32, 1.1, -2.0];
        let exact = activations::softmax(&logits);
        let err = |out: &[f32]| -> f32 {
            out.iter()
                .zip(exact.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        };
        let coarse_err = err(&coarse.softmax(&logits));
        let fine_err = err(&fine.softmax(&logits));
        assert!(fine_err <= coarse_err);
    }

    #[test]
    fn merge_combines_stats() {
        let mut a = SfuStats {
            elements: 10,
            cycles: 2,
            invocations: 1,
        };
        let b = SfuStats {
            elements: 5,
            cycles: 1,
            invocations: 1,
        };
        a.merge(&b);
        assert_eq!(a.elements, 15);
        assert_eq!(a.cycles, 3);
        assert_eq!(a.invocations, 2);
    }
}
