//! Technology-node scaling helpers (Stillmaker & Baas style).
//!
//! The paper compares against accelerators published at different technology
//! nodes and scales every number to 65 nm using the equations of Stillmaker &
//! Baas. This module provides the same capability: first-order scaling of
//! area, delay, and energy between planar CMOS nodes, using the classical
//! relations (area ∝ L², delay ∝ L, energy ∝ C·V² ∝ L·V²) with a table of
//! nominal supply voltages per node.

use crate::error::CircuitError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Quantity being scaled between technology nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quantity {
    /// Silicon area.
    Area,
    /// Gate/wire delay.
    Delay,
    /// Dynamic energy.
    Energy,
}

/// Nominal supply voltage for a planar CMOS node, in volts.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidConfig`] for unsupported nodes.
pub fn nominal_vdd(node_nm: u32) -> Result<f64> {
    let vdd = match node_nm {
        180 => 1.8,
        130 => 1.3,
        90 => 1.2,
        65 => 1.1,
        45 => 1.0,
        32 => 0.9,
        22 => 0.8,
        16 | 14 => 0.7,
        7 => 0.65,
        _ => {
            return Err(CircuitError::InvalidConfig(format!(
                "unsupported technology node {node_nm} nm"
            )))
        }
    };
    Ok(vdd)
}

/// Scaling factor to convert a value measured at `from_nm` into an equivalent
/// value at `to_nm` (multiply by the returned factor).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidConfig`] for unsupported nodes.
pub fn scaling_factor(quantity: Quantity, from_nm: u32, to_nm: u32) -> Result<f64> {
    let v_from = nominal_vdd(from_nm)?;
    let v_to = nominal_vdd(to_nm)?;
    let l = f64::from(to_nm) / f64::from(from_nm);
    Ok(match quantity {
        Quantity::Area => l * l,
        Quantity::Delay => l,
        Quantity::Energy => l * (v_to / v_from).powi(2),
    })
}

/// Scales `value` from one node to another.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidConfig`] for unsupported nodes.
pub fn scale(value: f64, quantity: Quantity, from_nm: u32, to_nm: u32) -> Result<f64> {
    Ok(value * scaling_factor(quantity, from_nm, to_nm)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scaling_is_one() {
        for q in [Quantity::Area, Quantity::Delay, Quantity::Energy] {
            assert!((scaling_factor(q, 65, 65).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shrinking_reduces_everything() {
        for q in [Quantity::Area, Quantity::Delay, Quantity::Energy] {
            let f = scaling_factor(q, 65, 22).unwrap();
            assert!(f < 1.0, "{q:?} factor {f}");
        }
        // Growing a 22 nm design to 65 nm increases cost.
        assert!(scale(1.0, Quantity::Area, 22, 65).unwrap() > 1.0);
    }

    #[test]
    fn area_scales_quadratically_and_delay_linearly() {
        let area = scaling_factor(Quantity::Area, 65, 32).unwrap();
        let delay = scaling_factor(Quantity::Delay, 65, 32).unwrap();
        assert!((area - (32.0f64 / 65.0).powi(2)).abs() < 1e-12);
        assert!((delay - 32.0 / 65.0).abs() < 1e-12);
    }

    #[test]
    fn energy_accounts_for_voltage() {
        let e = scaling_factor(Quantity::Energy, 65, 7).unwrap();
        let pure_l = 7.0 / 65.0;
        assert!(e < pure_l, "voltage scaling should further reduce energy");
    }

    #[test]
    fn unsupported_nodes_are_rejected() {
        assert!(nominal_vdd(3).is_err());
        assert!(scaling_factor(Quantity::Area, 65, 5).is_err());
        assert!(scale(1.0, Quantity::Delay, 10, 65).is_err());
    }

    #[test]
    fn round_trip_scaling_is_consistent() {
        let x = 123.4;
        let there = scale(x, Quantity::Energy, 65, 16).unwrap();
        let back = scale(there, Quantity::Energy, 16, 65).unwrap();
        assert!((back - x).abs() < 1e-9);
    }
}
