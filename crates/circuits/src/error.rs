//! Error types for the circuit models.

use std::error::Error;
use std::fmt;

/// Errors produced by the peripheral circuit models.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A configuration parameter was outside its supported range.
    InvalidConfig(String),
    /// An input signal was outside the representable range of a block.
    OutOfRange {
        /// Name of the block that rejected the value.
        block: &'static str,
        /// Offending value.
        value: f64,
        /// Allowed maximum.
        max: f64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CircuitError::OutOfRange { block, value, max } => {
                write!(f, "{block} input {value} exceeds full scale {max}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::OutOfRange {
            block: "sar-adc",
            value: 2.0,
            max: 1.0,
        };
        assert!(e.to_string().contains("sar-adc"));
        let e = CircuitError::InvalidConfig("bits".to_string());
        assert!(e.to_string().contains("bits"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<CircuitError>();
    }
}
