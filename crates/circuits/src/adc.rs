//! Reconfigurable 6-b/7-b successive-approximation (SAR) ADC.
//!
//! Figure 8 of the paper: 128 bit-line outputs are captured by sample-and-hold
//! circuits and multiplexed into one shared SAR ADC per array. The ADC
//! resolves up to 7 bits by binary search over a capacitive DAC; in SLC mode
//! the comparison on the largest capacitor (the MSB) is bypassed, turning the
//! same hardware into a 6-bit converter with no extra power. HyFlexPIM runs
//! the ADC at 1.28 GS/s so that the 128 bit lines of an array are digitized
//! within the 100 ns crossbar read cycle.

use crate::error::CircuitError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Sampling rate of the shared SAR ADC (samples per second).
pub const ADC_SAMPLE_RATE_HZ: f64 = 1.28e9;

/// Maximum resolution supported by the capacitive DAC.
pub const MAX_ADC_BITS: u8 = 7;

/// Operating mode of the reconfigurable ADC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdcMode {
    /// 6-bit conversion used for SLC column sums (MSB capacitor bypassed).
    Slc6Bit,
    /// 7-bit conversion used for 2-bit MLC column sums.
    Mlc7Bit,
}

impl AdcMode {
    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        match self {
            AdcMode::Slc6Bit => 6,
            AdcMode::Mlc7Bit => 7,
        }
    }

    /// Number of output codes.
    pub fn codes(&self) -> u32 {
        1u32 << self.bits()
    }
}

/// Result of one SAR conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conversion {
    /// Digital output code.
    pub code: u32,
    /// Number of comparator decisions performed (equals the active bits).
    pub comparisons: u8,
    /// The reconstructed analog value `code × LSB`.
    pub reconstructed: f64,
}

/// A successive-approximation ADC with the paper's MSB-bypass reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SarAdc {
    mode: AdcMode,
    full_scale: f64,
}

impl SarAdc {
    /// Creates an ADC for the given mode and full-scale analog input.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] if `full_scale` is not positive
    /// and finite.
    pub fn new(mode: AdcMode, full_scale: f64) -> Result<Self> {
        if !(full_scale.is_finite() && full_scale > 0.0) {
            return Err(CircuitError::InvalidConfig(format!(
                "ADC full scale {full_scale} must be positive and finite"
            )));
        }
        Ok(SarAdc { mode, full_scale })
    }

    /// ADC sized for an analog column sum of a 64-row array: full scale is
    /// `rows × (levels − 1)` level units.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for a zero-sized array.
    pub fn for_crossbar(mode: AdcMode, rows: usize, bits_per_cell: u8) -> Result<Self> {
        if rows == 0 || bits_per_cell == 0 {
            return Err(CircuitError::InvalidConfig(
                "crossbar ADC requires non-zero rows and bits per cell".to_string(),
            ));
        }
        let levels = (1u32 << bits_per_cell) as f64;
        SarAdc::new(mode, rows as f64 * (levels - 1.0))
    }

    /// Current operating mode.
    pub fn mode(&self) -> AdcMode {
        self.mode
    }

    /// Analog full-scale input.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Size of one least-significant-bit step in analog units.
    pub fn lsb(&self) -> f64 {
        self.full_scale / f64::from(self.mode.codes())
    }

    /// Reconfigures between 6-bit and 7-bit operation (MSB capacitor bypass).
    ///
    /// This mirrors the paper's claim that a single ADC serves both SLC and
    /// MLC arrays with <1 % overhead: no new hardware, only a mode bit.
    pub fn reconfigure(&mut self, mode: AdcMode, full_scale: f64) -> Result<()> {
        if !(full_scale.is_finite() && full_scale > 0.0) {
            return Err(CircuitError::InvalidConfig(format!(
                "ADC full scale {full_scale} must be positive and finite"
            )));
        }
        self.mode = mode;
        self.full_scale = full_scale;
        Ok(())
    }

    /// Converts an analog value using the SAR binary search.
    ///
    /// Values are clamped to `[0, full_scale]`; the method returns the digital
    /// code, the number of comparator decisions (6 or 7), and the
    /// reconstructed analog value.
    pub fn convert(&self, analog: f64) -> Conversion {
        let clamped = analog.clamp(0.0, self.full_scale);
        let bits = self.mode.bits();
        let lsb = self.lsb();
        // Successive approximation: trial-set each bit from MSB to LSB and
        // keep it if the DAC output stays below the input.
        let mut code: u32 = 0;
        for bit in (0..bits).rev() {
            let trial = code | (1u32 << bit);
            let dac = f64::from(trial) * lsb;
            if dac <= clamped {
                code = trial;
            }
        }
        Conversion {
            code,
            comparisons: bits,
            reconstructed: f64::from(code) * lsb,
        }
    }

    /// Quantization error bound: half an LSB once inside the full-scale range.
    pub fn max_quantization_error(&self) -> f64 {
        self.lsb()
    }

    /// Time to digitize `samples` values with one shared ADC, in nanoseconds.
    pub fn conversion_time_ns(&self, samples: usize) -> f64 {
        samples as f64 / ADC_SAMPLE_RATE_HZ * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bits_and_codes() {
        assert_eq!(AdcMode::Slc6Bit.bits(), 6);
        assert_eq!(AdcMode::Slc6Bit.codes(), 64);
        assert_eq!(AdcMode::Mlc7Bit.bits(), 7);
        assert_eq!(AdcMode::Mlc7Bit.codes(), 128);
    }

    #[test]
    fn construction_validates_full_scale() {
        assert!(SarAdc::new(AdcMode::Slc6Bit, 0.0).is_err());
        assert!(SarAdc::new(AdcMode::Slc6Bit, f64::NAN).is_err());
        assert!(SarAdc::new(AdcMode::Slc6Bit, 64.0).is_ok());
        assert!(SarAdc::for_crossbar(AdcMode::Slc6Bit, 0, 1).is_err());
    }

    #[test]
    fn crossbar_full_scales_match_paper_geometry() {
        let slc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
        assert_eq!(slc.full_scale(), 64.0);
        // 6-bit over 0..64 -> LSB of exactly one level unit.
        assert_eq!(slc.lsb(), 1.0);
        let mlc = SarAdc::for_crossbar(AdcMode::Mlc7Bit, 64, 2).unwrap();
        assert_eq!(mlc.full_scale(), 192.0);
        assert_eq!(mlc.lsb(), 1.5);
    }

    #[test]
    fn conversion_is_monotone_and_bounded() {
        let adc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
        let mut last_code = 0;
        for i in 0..=64 {
            let conv = adc.convert(i as f64);
            assert!(conv.code >= last_code);
            last_code = conv.code;
            assert!(conv.code < adc.mode().codes());
            assert!((conv.reconstructed - i as f64).abs() <= adc.max_quantization_error());
            assert_eq!(conv.comparisons, 6);
        }
    }

    #[test]
    fn integer_level_sums_convert_exactly_in_slc_mode() {
        // With LSB = 1 level unit, integer column sums below full scale are
        // represented exactly (the paper's "full precision ADC" argument).
        let adc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
        for sum in 0..64 {
            let conv = adc.convert(sum as f64);
            assert_eq!(conv.code, sum);
            assert_eq!(conv.reconstructed, sum as f64);
        }
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let adc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
        assert_eq!(adc.convert(-5.0).code, 0);
        assert_eq!(adc.convert(1000.0).code, 63);
    }

    #[test]
    fn reconfigure_switches_resolution_without_new_hardware() {
        let mut adc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
        assert_eq!(adc.convert(40.0).comparisons, 6);
        adc.reconfigure(AdcMode::Mlc7Bit, 192.0).unwrap();
        assert_eq!(adc.mode(), AdcMode::Mlc7Bit);
        assert_eq!(adc.convert(40.0).comparisons, 7);
        assert!(adc.reconfigure(AdcMode::Slc6Bit, -1.0).is_err());
    }

    #[test]
    fn seven_bit_mode_has_finer_resolution_over_same_range() {
        let coarse = SarAdc::new(AdcMode::Slc6Bit, 192.0).unwrap();
        let fine = SarAdc::new(AdcMode::Mlc7Bit, 192.0).unwrap();
        assert!(fine.lsb() < coarse.lsb());
        let x = 77.3;
        let e_fine = (fine.convert(x).reconstructed - x).abs();
        let e_coarse = (coarse.convert(x).reconstructed - x).abs();
        assert!(e_fine <= e_coarse);
    }

    #[test]
    fn conversion_time_covers_128_bitlines_within_read_cycle() {
        let adc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
        // 128 bit lines through one 1.28 GS/s ADC = exactly 100 ns (Section 5.4).
        let t = adc.conversion_time_ns(128);
        assert!((t - 100.0).abs() < 1e-9);
    }
}
