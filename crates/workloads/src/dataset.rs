//! Dataset containers and splitting helpers.

use hyflex_transformer::trainer::Sample;
use serde::{Deserialize, Serialize};

/// A named dataset with train and evaluation splits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. "MRPC (synthetic)").
    pub name: String,
    /// Training split.
    pub train: Vec<Sample>,
    /// Held-out evaluation split.
    pub eval: Vec<Sample>,
}

impl Dataset {
    /// Creates a dataset from pre-split samples.
    pub fn new(name: impl Into<String>, train: Vec<Sample>, eval: Vec<Sample>) -> Self {
        Dataset {
            name: name.into(),
            train,
            eval,
        }
    }

    /// Splits a flat sample list into train/eval with the given eval fraction.
    pub fn from_samples(
        name: impl Into<String>,
        mut samples: Vec<Sample>,
        eval_fraction: f64,
    ) -> Self {
        let eval_len = ((samples.len() as f64) * eval_fraction.clamp(0.0, 1.0)).round() as usize;
        let eval = samples.split_off(samples.len().saturating_sub(eval_len));
        Dataset {
            name: name.into(),
            train: samples,
            eval,
        }
    }

    /// Total number of samples across both splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.eval.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_transformer::trainer::Target;
    use hyflex_transformer::ModelInput;

    fn dummy_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                input: ModelInput::Tokens(vec![i % 5, (i + 1) % 5]),
                target: Target::Class(i % 2),
            })
            .collect()
    }

    #[test]
    fn from_samples_splits_by_fraction() {
        let d = Dataset::from_samples("toy", dummy_samples(10), 0.3);
        assert_eq!(d.train.len(), 7);
        assert_eq!(d.eval.len(), 3);
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
    }

    #[test]
    fn extreme_fractions_are_clamped() {
        let all_eval = Dataset::from_samples("x", dummy_samples(4), 2.0);
        assert_eq!(all_eval.train.len(), 0);
        assert_eq!(all_eval.eval.len(), 4);
        let none_eval = Dataset::from_samples("y", dummy_samples(4), -1.0);
        assert_eq!(none_eval.eval.len(), 0);
    }

    #[test]
    fn explicit_construction_keeps_splits() {
        let d = Dataset::new("z", dummy_samples(2), dummy_samples(3));
        assert_eq!(d.train.len(), 2);
        assert_eq!(d.eval.len(), 3);
        assert_eq!(d.name, "z");
    }
}
