//! Synthetic GLUE-like tasks.
//!
//! The seven GLUE tasks the paper evaluates (CoLA, MRPC, QNLI, QQP, RTE,
//! SST-2, STS-B) are replaced by seeded token-sequence tasks. Each
//! classification task plants a small number of class-dependent "signal"
//! tokens into otherwise random sequences and flips labels with a
//! task-specific noise probability, so tasks differ in learnability the same
//! way the real GLUE tasks differ in difficulty (RTE and CoLA are harder than
//! SST-2, etc.). STS-B is a regression task whose target is the fraction of
//! planted signal tokens.

use crate::dataset::Dataset;
use hyflex_tensor::rng::Rng;
use hyflex_transformer::trainer::{Sample, Target};
use hyflex_transformer::ModelInput;
use serde::{Deserialize, Serialize};

/// The seven GLUE tasks used in the paper's encoder evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlueTask {
    /// Linguistic acceptability (metric: Matthews correlation).
    Cola,
    /// Paraphrase detection.
    Mrpc,
    /// Question–answer entailment.
    Qnli,
    /// Question-pair duplicate detection.
    Qqp,
    /// Recognizing textual entailment (small and hard).
    Rte,
    /// Sentiment classification (easy).
    Sst2,
    /// Semantic textual similarity (regression, metric: Pearson).
    Stsb,
}

impl GlueTask {
    /// All seven tasks in the paper's reporting order.
    pub fn all() -> [GlueTask; 7] {
        [
            GlueTask::Mrpc,
            GlueTask::Cola,
            GlueTask::Qnli,
            GlueTask::Qqp,
            GlueTask::Sst2,
            GlueTask::Stsb,
            GlueTask::Rte,
        ]
    }

    /// Task name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            GlueTask::Cola => "CoLA",
            GlueTask::Mrpc => "MRPC",
            GlueTask::Qnli => "QNLI",
            GlueTask::Qqp => "QQP",
            GlueTask::Rte => "RTE",
            GlueTask::Sst2 => "SST-2",
            GlueTask::Stsb => "STS-B",
        }
    }

    /// Whether the task is regression (STS-B) rather than classification.
    pub fn is_regression(&self) -> bool {
        matches!(self, GlueTask::Stsb)
    }

    /// Label-noise probability controlling task difficulty. Values chosen so
    /// the relative ordering of task difficulty mirrors GLUE (SST-2/QQP easy,
    /// RTE/CoLA hard).
    pub fn label_noise(&self) -> f64 {
        match self {
            GlueTask::Sst2 => 0.02,
            GlueTask::Qqp => 0.04,
            GlueTask::Qnli => 0.06,
            GlueTask::Mrpc => 0.08,
            GlueTask::Stsb => 0.05,
            GlueTask::Cola => 0.12,
            GlueTask::Rte => 0.15,
        }
    }

    /// Deterministic per-task seed offset so different tasks get different
    /// vocabular structure from the same experiment seed.
    fn seed_offset(&self) -> u64 {
        match self {
            GlueTask::Cola => 11,
            GlueTask::Mrpc => 23,
            GlueTask::Qnli => 37,
            GlueTask::Qqp => 41,
            GlueTask::Rte => 53,
            GlueTask::Sst2 => 67,
            GlueTask::Stsb => 79,
        }
    }
}

/// Configuration for synthetic GLUE generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlueConfig {
    /// Vocabulary size of the target model.
    pub vocab_size: usize,
    /// Sequence length of every sample.
    pub seq_len: usize,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of evaluation samples.
    pub eval_samples: usize,
}

impl Default for GlueConfig {
    fn default() -> Self {
        GlueConfig {
            vocab_size: 64,
            seq_len: 12,
            train_samples: 160,
            eval_samples: 64,
        }
    }
}

/// Generates the synthetic dataset for one GLUE task.
///
/// The generator is fully determined by `(task, config, seed)`.
pub fn generate(task: GlueTask, config: &GlueConfig, seed: u64) -> Dataset {
    // The signal-token pool is `vocab_size / 4 - 1` values; two distinct
    // class tokens must exist or the rejection loop below cannot terminate.
    assert!(
        config.vocab_size / 4 > 2,
        "GlueConfig.vocab_size must be >= 12 so two distinct signal tokens exist, got {}",
        config.vocab_size
    );
    let mut rng = Rng::seed_from(
        seed.wrapping_mul(0x9e37_79b9)
            .wrapping_add(task.seed_offset()),
    );
    // Two class-specific signal tokens drawn from the first quarter of the
    // vocabulary; filler tokens come from the rest.
    let signal_positive = 1 + rng.below(config.vocab_size / 4 - 1);
    // The negative-class token must differ from the positive one, otherwise
    // both classes plant the same signal and the task collapses to label
    // noise. Rejection sampling keeps the stream identical for the (vast
    // majority of) seeds where the first draw already differs.
    let signal_negative = loop {
        let candidate = 1 + rng.below(config.vocab_size / 4 - 1);
        if candidate != signal_positive {
            break candidate;
        }
    };
    let total = config.train_samples + config.eval_samples;
    let mut samples = Vec::with_capacity(total);
    for _ in 0..total {
        let mut tokens: Vec<usize> = (0..config.seq_len)
            .map(|_| config.vocab_size / 4 + rng.below(config.vocab_size * 3 / 4))
            .collect();
        if task.is_regression() {
            // STS-B: target is the planted-signal density in [0, 1].
            let planted = rng.below(config.seq_len / 2 + 1);
            for slot in 0..planted {
                let pos = rng.below(config.seq_len);
                tokens[pos] = signal_positive;
                let _ = slot;
            }
            let density = tokens.iter().filter(|&&t| t == signal_positive).count() as f32
                / config.seq_len as f32;
            samples.push(Sample {
                input: ModelInput::Tokens(tokens),
                target: Target::Value(density),
            });
        } else {
            let mut label = rng.below(2);
            let signal = if label == 1 {
                signal_positive
            } else {
                signal_negative
            };
            // Plant 2-3 signal tokens for the true class.
            let plant_count = 2 + rng.below(2);
            for _ in 0..plant_count {
                let pos = rng.below(config.seq_len);
                tokens[pos] = signal;
            }
            // Task-difficulty label noise.
            if rng.bernoulli(task.label_noise()) {
                label = 1 - label;
            }
            samples.push(Sample {
                input: ModelInput::Tokens(tokens),
                target: Target::Class(label),
            });
        }
    }
    let eval_fraction = config.eval_samples as f64 / total as f64;
    Dataset::from_samples(
        format!("{} (synthetic)", task.name()),
        samples,
        eval_fraction,
    )
}

/// Generates all seven GLUE stand-in datasets with a shared seed.
pub fn generate_all(config: &GlueConfig, seed: u64) -> Vec<(GlueTask, Dataset)> {
    GlueTask::all()
        .iter()
        .map(|&task| (task, generate(task, config, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_metadata_is_consistent() {
        assert_eq!(GlueTask::all().len(), 7);
        assert!(GlueTask::Stsb.is_regression());
        assert!(!GlueTask::Mrpc.is_regression());
        assert!(GlueTask::Rte.label_noise() > GlueTask::Sst2.label_noise());
        assert_eq!(GlueTask::Cola.name(), "CoLA");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GlueConfig::default();
        let a = generate(GlueTask::Mrpc, &config, 42);
        let b = generate(GlueTask::Mrpc, &config, 42);
        assert_eq!(a, b);
        let c = generate(GlueTask::Mrpc, &config, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn different_tasks_differ_with_same_seed() {
        let config = GlueConfig::default();
        let a = generate(GlueTask::Mrpc, &config, 7);
        let b = generate(GlueTask::Rte, &config, 7);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn split_sizes_match_config() {
        let config = GlueConfig {
            train_samples: 100,
            eval_samples: 40,
            ..GlueConfig::default()
        };
        let d = generate(GlueTask::Qnli, &config, 1);
        assert_eq!(d.train.len(), 100);
        assert_eq!(d.eval.len(), 40);
    }

    #[test]
    fn classification_tasks_have_binary_labels_and_valid_tokens() {
        let config = GlueConfig::default();
        let d = generate(GlueTask::Sst2, &config, 3);
        for sample in d.train.iter().chain(d.eval.iter()) {
            match (&sample.input, &sample.target) {
                (ModelInput::Tokens(tokens), Target::Class(label)) => {
                    assert!(*label < 2);
                    assert_eq!(tokens.len(), config.seq_len);
                    assert!(tokens.iter().all(|&t| t < config.vocab_size));
                }
                _ => panic!("unexpected sample kind"),
            }
        }
    }

    #[test]
    fn stsb_targets_are_densities_in_unit_interval() {
        let config = GlueConfig::default();
        let d = generate(GlueTask::Stsb, &config, 5);
        let mut distinct = std::collections::BTreeSet::new();
        for sample in d.train.iter() {
            match &sample.target {
                Target::Value(v) => {
                    assert!((0.0..=1.0).contains(v));
                    distinct.insert((v * 100.0) as i32);
                }
                _ => panic!("STS-B must be regression"),
            }
        }
        assert!(distinct.len() > 2, "regression targets should vary");
    }

    #[test]
    fn generate_all_covers_every_task() {
        let all = generate_all(&GlueConfig::default(), 11);
        assert_eq!(all.len(), 7);
        let names: Vec<&str> = all.iter().map(|(t, _)| t.name()).collect();
        assert!(names.contains(&"STS-B"));
    }
}
