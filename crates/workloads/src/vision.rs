//! Synthetic vision workload (CIFAR-10 / ViT stand-in).
//!
//! Each class is a random prototype in patch-feature space; samples are the
//! prototype plus Gaussian pixel noise, split into patch rows the way a ViT
//! splits an image into patches. A tiny ViT reaches high accuracy on this
//! task after a couple of epochs, giving the Figure 12 ViT curve a functional
//! stand-in.

use crate::dataset::Dataset;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use hyflex_transformer::trainer::{Sample, Target};
use hyflex_transformer::ModelInput;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic vision task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisionConfig {
    /// Number of classes (CIFAR-10 has 10).
    pub num_classes: usize,
    /// Number of patches per image.
    pub patches: usize,
    /// Feature dimension per patch.
    pub patch_dim: usize,
    /// Pixel noise standard deviation (controls difficulty).
    pub noise_std: f32,
    /// Training samples.
    pub train_samples: usize,
    /// Evaluation samples.
    pub eval_samples: usize,
}

impl Default for VisionConfig {
    fn default() -> Self {
        VisionConfig {
            num_classes: 10,
            patches: 9,
            patch_dim: 24,
            noise_std: 0.4,
            train_samples: 200,
            eval_samples: 80,
        }
    }
}

/// Generates the synthetic CIFAR-10 stand-in dataset.
pub fn generate(config: &VisionConfig, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from(seed ^ 0x51f1_a0e5);
    // One prototype image (patches x patch_dim) per class.
    let prototypes: Vec<Matrix> = (0..config.num_classes)
        .map(|_| Matrix::random_normal(config.patches, config.patch_dim, 0.0, 1.0, &mut rng))
        .collect();
    let total = config.train_samples + config.eval_samples;
    let samples: Vec<Sample> = (0..total)
        .map(|_| {
            let class = rng.below(config.num_classes);
            let noise = Matrix::random_normal(
                config.patches,
                config.patch_dim,
                0.0,
                config.noise_std,
                &mut rng,
            );
            let image = prototypes[class]
                .add(&noise)
                .expect("prototype and noise share a shape");
            Sample {
                input: ModelInput::Features(image),
                target: Target::Class(class),
            }
        })
        .collect();
    let eval_fraction = config.eval_samples as f64 / total as f64;
    Dataset::from_samples("CIFAR-10 (synthetic)", samples, eval_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let config = VisionConfig::default();
        let a = generate(&config, 3);
        let b = generate(&config, 3);
        assert_eq!(a, b);
        assert_eq!(a.train.len(), config.train_samples);
        assert_eq!(a.eval.len(), config.eval_samples);
    }

    #[test]
    fn samples_have_patch_features_and_valid_labels() {
        let config = VisionConfig::default();
        let d = generate(&config, 5);
        for sample in d.train.iter().take(10) {
            match (&sample.input, &sample.target) {
                (ModelInput::Features(f), Target::Class(c)) => {
                    assert_eq!(f.shape(), (config.patches, config.patch_dim));
                    assert!(*c < config.num_classes);
                }
                _ => panic!("unexpected sample kind"),
            }
        }
    }

    #[test]
    fn classes_are_separable_a_linear_probe_on_prototypes() {
        // Nearest-prototype classification on the raw features should be far
        // above chance, confirming the task is learnable.
        let config = VisionConfig {
            train_samples: 60,
            eval_samples: 40,
            ..VisionConfig::default()
        };
        let d = generate(&config, 7);
        // Estimate per-class means from train split.
        let mut sums: Vec<Matrix> =
            vec![Matrix::zeros(config.patches, config.patch_dim); config.num_classes];
        let mut counts = vec![0usize; config.num_classes];
        for s in &d.train {
            if let (ModelInput::Features(f), Target::Class(c)) = (&s.input, &s.target) {
                sums[*c].add_assign(f).unwrap();
                counts[*c] += 1;
            }
        }
        let means: Vec<Matrix> = sums
            .into_iter()
            .zip(counts.iter())
            .map(|(m, &c)| m.scale(1.0 / c.max(1) as f32))
            .collect();
        let mut correct = 0usize;
        for s in &d.eval {
            if let (ModelInput::Features(f), Target::Class(c)) = (&s.input, &s.target) {
                let mut best = 0usize;
                let mut best_dist = f32::INFINITY;
                for (k, mean) in means.iter().enumerate() {
                    let dist = f.sub(mean).unwrap().frobenius_norm();
                    if dist < best_dist {
                        best_dist = dist;
                        best = k;
                    }
                }
                if best == *c {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / d.eval.len() as f64;
        assert!(accuracy > 0.8, "nearest-prototype accuracy {accuracy}");
    }
}
