//! Synthetic language-modeling corpora (WikiText-2 and PTB stand-ins).
//!
//! A seeded first-order Markov chain with a sparse, strongly-peaked
//! transition matrix generates token sequences with learnable structure: a
//! small decoder fine-tuned on them shows clearly decreasing loss, and noise
//! injected into its weights shows clearly increasing loss — the two signals
//! the paper's decoder experiments (Figure 12(b)) rely on.

use crate::dataset::Dataset;
use hyflex_tensor::rng::Rng;
use hyflex_transformer::trainer::{Sample, Target};
use hyflex_transformer::ModelInput;
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic corpus generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LmConfig {
    /// Vocabulary size of the target model.
    pub vocab_size: usize,
    /// Sequence length of every sample (tokens per sample).
    pub seq_len: usize,
    /// Number of training sequences.
    pub train_sequences: usize,
    /// Number of evaluation sequences.
    pub eval_sequences: usize,
    /// Number of high-probability successors per token (sparsity of the
    /// transition structure). Smaller = more predictable corpus.
    pub branching: usize,
}

impl LmConfig {
    /// WikiText-2 stand-in sized for the tiny decoder configuration.
    pub fn wikitext2_stand_in() -> Self {
        LmConfig {
            vocab_size: 64,
            seq_len: 12,
            train_sequences: 96,
            eval_sequences: 32,
            branching: 3,
        }
    }

    /// Penn Treebank stand-in: slightly smaller effective vocabulary usage
    /// and shorter sequences (the paper evaluates Llama3 on PTB with MSL 100).
    pub fn ptb_stand_in() -> Self {
        LmConfig {
            vocab_size: 48,
            seq_len: 10,
            train_sequences: 96,
            eval_sequences: 32,
            branching: 2,
        }
    }
}

/// A seeded Markov-chain corpus generator.
#[derive(Debug, Clone)]
pub struct MarkovCorpus {
    config: LmConfig,
    /// `successors[t]` lists the preferred next tokens of token `t`.
    successors: Vec<Vec<usize>>,
}

impl MarkovCorpus {
    /// Builds the transition structure from a seed.
    pub fn new(config: LmConfig, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed ^ 0xabcd_ef01_2345_6789);
        let successors = (0..config.vocab_size)
            .map(|_| {
                (0..config.branching.max(1))
                    .map(|_| rng.below(config.vocab_size))
                    .collect()
            })
            .collect();
        MarkovCorpus { config, successors }
    }

    /// The generator configuration.
    pub fn config(&self) -> &LmConfig {
        &self.config
    }

    /// Samples one token sequence of length `seq_len + 1` (so that inputs and
    /// next-token targets can both be extracted).
    fn sample_sequence(&self, rng: &mut Rng) -> Vec<usize> {
        let mut seq = Vec::with_capacity(self.config.seq_len + 1);
        let mut current = rng.below(self.config.vocab_size);
        seq.push(current);
        for _ in 0..self.config.seq_len {
            // With 90% probability follow the preferred successors, otherwise
            // jump uniformly (keeps entropy non-trivial).
            current = if rng.bernoulli(0.9) {
                let options = &self.successors[current];
                options[rng.below(options.len())]
            } else {
                rng.below(self.config.vocab_size)
            };
            seq.push(current);
        }
        seq
    }

    /// Generates the full dataset.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let total = self.config.train_sequences + self.config.eval_sequences;
        let samples: Vec<Sample> = (0..total)
            .map(|_| {
                let seq = self.sample_sequence(&mut rng);
                let input = seq[..self.config.seq_len].to_vec();
                let next = seq[1..=self.config.seq_len].to_vec();
                Sample {
                    input: ModelInput::Tokens(input),
                    target: Target::NextTokens(next),
                }
            })
            .collect();
        let eval_fraction = self.config.eval_sequences as f64 / total as f64;
        Dataset::from_samples("Markov LM (synthetic)", samples, eval_fraction)
    }
}

/// Convenience constructor: WikiText-2 stand-in dataset.
pub fn wikitext2_dataset(seed: u64) -> Dataset {
    MarkovCorpus::new(LmConfig::wikitext2_stand_in(), seed).generate(seed)
}

/// Convenience constructor: PTB stand-in dataset.
pub fn ptb_dataset(seed: u64) -> Dataset {
    MarkovCorpus::new(LmConfig::ptb_stand_in(), seed).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = wikitext2_dataset(9);
        let b = wikitext2_dataset(9);
        assert_eq!(a, b);
        assert_ne!(a, wikitext2_dataset(10));
    }

    #[test]
    fn sample_shapes_are_consistent() {
        let config = LmConfig::wikitext2_stand_in();
        let d = wikitext2_dataset(1);
        assert_eq!(d.train.len(), config.train_sequences);
        assert_eq!(d.eval.len(), config.eval_sequences);
        for sample in d.train.iter().chain(d.eval.iter()) {
            match (&sample.input, &sample.target) {
                (ModelInput::Tokens(input), Target::NextTokens(next)) => {
                    assert_eq!(input.len(), config.seq_len);
                    assert_eq!(next.len(), config.seq_len);
                    // Targets are the inputs shifted by one.
                    assert_eq!(&input[1..], &next[..next.len() - 1]);
                    assert!(input.iter().all(|&t| t < config.vocab_size));
                }
                _ => panic!("unexpected sample kind"),
            }
        }
    }

    #[test]
    fn corpus_has_predictable_structure() {
        // The preferred-successor structure should make bigrams much more
        // concentrated than uniform: measure how often the most common
        // successor of each token occurs.
        let config = LmConfig::wikitext2_stand_in();
        let corpus = MarkovCorpus::new(config, 4);
        let d = corpus.generate(4);
        let v = config.vocab_size;
        let mut counts = vec![vec![0u32; v]; v];
        for sample in &d.train {
            if let ModelInput::Tokens(tokens) = &sample.input {
                for w in tokens.windows(2) {
                    counts[w[0]][w[1]] += 1;
                }
            }
        }
        let mut concentrated = 0usize;
        let mut observed = 0usize;
        for row in &counts {
            let total: u32 = row.iter().sum();
            if total < 5 {
                continue;
            }
            observed += 1;
            let max = *row.iter().max().unwrap();
            if f64::from(max) / f64::from(total) > 2.0 / v as f64 {
                concentrated += 1;
            }
        }
        assert!(observed > 0);
        assert!(concentrated * 10 >= observed * 9);
    }

    #[test]
    fn ptb_stand_in_differs_from_wikitext_stand_in() {
        let w = LmConfig::wikitext2_stand_in();
        let p = LmConfig::ptb_stand_in();
        assert!(p.vocab_size < w.vocab_size);
        assert!(p.seq_len < w.seq_len);
        assert!(!ptb_dataset(1).train.is_empty());
    }
}
