//! Deterministic random-number generation shared across the workspace.
//!
//! Every stochastic component in the reproduction (synthetic datasets, weight
//! initialization, RRAM programming noise, dropout-free fine-tuning order)
//! draws from this wrapper so that experiments are reproducible from a single
//! seed.

/// Deterministic random number generator used throughout the workspace.
///
/// Implements xoshiro256++ (public-domain, Blackman & Vigna) seeded through
/// SplitMix64, so the workspace needs no external RNG crate and the stream is
/// bit-identical on every platform. Adds Gaussian sampling (Box–Muller) plus
/// a `split` operation for handing independent streams to sub-components.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second Gaussian sample from the last Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro256++ state, as
        // recommended by the xoshiro reference implementation.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derives an independent generator, advancing this generator once.
    ///
    /// Used to give sub-systems (e.g. each RRAM array) their own stream while
    /// keeping the top-level experiment reproducible.
    pub fn split(&mut self) -> Self {
        let seed = self.next_u64() ^ 0x9e37_79b9_7f4a_7c15;
        Rng::seed_from(seed)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits of a u64 → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` (debug builds) via `debug_assert!`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below requires n > 0");
        // Modulo bias is ≤ n/2⁶⁴, far below anything the experiments can
        // resolve, and keeps the sampler branch-free and reproducible.
        (self.next_u64() % n as u64) as usize
    }

    /// Fair coin flip with probability `p` of returning `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample (mean 0, standard deviation 1) via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller transform: two uniforms -> two independent normals.
        let u1 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(radius * theta.sin());
        radius * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fills a vector with `n` standard-normal samples.
    pub fn normal_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.normal() as f32).collect()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Chooses a random element index weighted by the (non-negative) weights.
    ///
    /// Returns `None` if the weights are empty or all zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 || !w.is_finite() {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::seed_from(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn normal_with_scales_and_shifts() {
        let mut rng = Rng::seed_from(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_with(3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03);
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::seed_from(11);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(5);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn weighted_choice_prefers_heavy_weights() {
        let mut rng = Rng::seed_from(13);
        let weights = [0.0, 0.05, 0.95];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            let idx = rng.weighted_choice(&weights).unwrap();
            counts[idx] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 5);
    }

    #[test]
    fn weighted_choice_handles_degenerate_inputs() {
        let mut rng = Rng::seed_from(17);
        assert_eq!(rng.weighted_choice(&[]), None);
        assert_eq!(rng.weighted_choice(&[0.0, 0.0]), None);
    }

    #[test]
    fn split_streams_are_independent_but_deterministic() {
        let mut parent_a = Rng::seed_from(21);
        let mut parent_b = Rng::seed_from(21);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        for _ in 0..16 {
            assert_eq!(child_a.uniform().to_bits(), child_b.uniform().to_bits());
        }
        // Child differs from a fresh parent stream.
        let mut parent_c = Rng::seed_from(21);
        let same = (0..32)
            .filter(|_| child_a.uniform() == parent_c.uniform())
            .count();
        assert!(same < 4);
    }
}
