#![forbid(unsafe_code)]
//! # hyflex-tensor
//!
//! Dense linear-algebra, decomposition, quantization, and statistics substrate
//! for the HyFlexPIM reproduction.
//!
//! The crate intentionally implements everything from scratch on top of plain
//! `Vec<f32>` storage so that the rest of the workspace (RRAM crossbar models,
//! transformer layers, the accelerator performance model) has no external
//! numerical dependencies and stays bit-reproducible across platforms.
//!
//! The main entry points are:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the usual algebra
//!   (GEMM, GEMV, transpose, element-wise maps) plus slicing helpers used by
//!   the crossbar tiling code.
//! * [`kernels`] — the blocked/tiled GEMM, GEMV, and fused rank-k
//!   reconstruction kernels every `Matrix` product routes through,
//!   bit-identical to the naive reference loops, with pool-parallel
//!   variants built on `hyflex-parallel`.
//! * [`svd::Svd`] / [`svd::svd`] / [`svd::svd_with`] — one-sided Jacobi
//!   singular value decomposition (the bit-stable default) and an opt-in
//!   randomized subspace-iteration sketch ([`svd::SvdAlgorithm`]), with
//!   truncation helpers — the core of the paper's *gradient redistribution*
//!   technique (Section 4 of the paper).
//! * [`quant`] — symmetric integer quantization (INT8 by default, arbitrary
//!   bit-width for the bit-sliced RRAM mapping).
//! * [`activations`] — numerically stable softmax / GELU / ReLU / layer norm
//!   with the derivatives needed by the from-scratch trainer.
//! * [`stats`] — accuracy, Matthews correlation, Pearson correlation and
//!   simple descriptive statistics used by the evaluation harness.
//! * [`rng::Rng`] — a small deterministic RNG wrapper (seeded `StdRng` with
//!   Gaussian sampling) shared by every stochastic component in the
//!   workspace.
//!
//! ## Example
//!
//! ```
//! use hyflex_tensor::{Matrix, svd};
//!
//! # fn main() -> Result<(), hyflex_tensor::TensorError> {
//! let mut rng = hyflex_tensor::rng::Rng::seed_from(7);
//! let w = Matrix::random_uniform(8, 6, -1.0, 1.0, &mut rng);
//! let decomposition = svd::svd(&w)?;
//! let reconstructed = decomposition.reconstruct();
//! assert!(w.approx_eq(&reconstructed, 1e-3));
//! # Ok(())
//! # }
//! ```

pub mod activations;
pub mod error;
pub mod kernels;
pub mod matrix;
pub mod quant;
pub mod rng;
pub mod stats;
pub mod svd;

pub use error::TensorError;
pub use matrix::{ColumnIter, Matrix};
pub use quant::QuantizedMatrix;
pub use svd::{Svd, SvdAlgorithm};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
