//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the single numeric container used by every other crate in
//! the workspace: transformer weights and activations, RRAM conductance maps,
//! and the SVD factors produced by gradient redistribution.

use crate::error::TensorError;
use crate::rng::Rng;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// The storage layout is `data[row * cols + col]`. Shapes are validated at
/// run time; operations that can fail return [`TensorError`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with the given value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from nested row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the rows are empty or
    /// ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(TensorError::InvalidDimension(
                "from_rows requires at least one non-empty row".to_string(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(TensorError::InvalidDimension(
                "from_rows requires all rows to have equal length".to_string(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix that owns the provided flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `data.len() != rows * cols`
    /// or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(TensorError::InvalidDimension(
                "matrix dimensions must be non-zero".to_string(),
            ));
        }
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimension(format!(
                "buffer of length {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| {
            rng.uniform_range(lo as f64, hi as f64) as f32
        })
    }

    /// Creates a matrix with Gaussian entries (`mean`, `std_dev`).
    pub fn random_normal(rows: usize, cols: usize, mean: f32, std_dev: f32, rng: &mut Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| {
            rng.normal_with(mean as f64, std_dev as f64) as f32
        })
    }

    /// Xavier/Glorot-style initialization used for transformer weights.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.uniform_range(-limit, limit) as f32)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: zero-dimension matrices cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Checked element access.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrowed view of a single row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of a single row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        let cols = self.cols;
        &mut self.data[row * cols..(row + 1) * cols]
    }

    /// Copy of a single column.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Vec<f32> {
        self.column_iter(col).collect()
    }

    /// Strided iterator over a single column, top to bottom.
    ///
    /// Unlike [`Matrix::column`] this allocates nothing, so hot loops (the
    /// Jacobi SVD's Gram accumulations, the factored layers' per-rank
    /// reductions) can walk columns without a fresh `Vec` per call.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn column_iter(&self, col: usize) -> ColumnIter<'_> {
        assert!(col < self.cols, "column index out of bounds");
        ColumnIter {
            data: &self.data,
            pos: col,
            stride: self.cols,
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix multiplication `self * other`.
    ///
    /// Routed through the blocked kernel in [`crate::kernels`]; bit-identical
    /// to the naive `ikj` reference loop (see the kernel docs).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        crate::kernels::matmul(self, other)
    }

    /// Matrix multiplication with the transpose of `other`: `self * otherᵀ`.
    ///
    /// Routed through the blocked kernel in [`crate::kernels`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols() != other.cols()`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Result<Matrix> {
        crate::kernels::matmul_transpose(self, other)
    }

    /// Matrix–vector product `self * v` (see [`crate::kernels::matvec`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>> {
        crate::kernels::matvec(self, v)
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// In-place element-wise addition (`self += other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place AXPY update (`self += alpha * other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self` scaled by a scalar.
    pub fn scale(&self, factor: f32) -> Matrix {
        self.map(|x| x * factor)
    }

    /// Applies a function to every element, producing a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Adds a row vector to every row (broadcasting), e.g. a bias term.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Result<Matrix> {
        if bias.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for row in out.data.chunks_mut(self.cols) {
            for (value, b) in row.iter_mut().zip(bias) {
                *value += b;
            }
        }
        Ok(out)
    }

    /// Extracts the sub-matrix `[row0, row0+n_rows) x [col0, col0+n_cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the block exceeds the
    /// matrix bounds or is empty.
    pub fn submatrix(
        &self,
        row0: usize,
        col0: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> Result<Matrix> {
        if n_rows == 0 || n_cols == 0 {
            return Err(TensorError::InvalidDimension(
                "submatrix must be non-empty".to_string(),
            ));
        }
        if row0 + n_rows > self.rows || col0 + n_cols > self.cols {
            return Err(TensorError::InvalidDimension(format!(
                "submatrix ({row0}+{n_rows}, {col0}+{n_cols}) exceeds {}x{}",
                self.rows, self.cols
            )));
        }
        let mut out = Matrix::zeros(n_rows, n_cols);
        for r in 0..n_rows {
            for c in 0..n_cols {
                out.data[r * n_cols + c] = self.at(row0 + r, col0 + c);
            }
        }
        Ok(out)
    }

    /// Writes `block` into `self` starting at `(row0, col0)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the block exceeds bounds.
    pub fn set_submatrix(&mut self, row0: usize, col0: usize, block: &Matrix) -> Result<()> {
        if row0 + block.rows > self.rows || col0 + block.cols > self.cols {
            return Err(TensorError::InvalidDimension(format!(
                "block {}x{} at ({row0}, {col0}) exceeds {}x{}",
                block.rows, block.cols, self.rows, self.cols
            )));
        }
        for r in 0..block.rows {
            for c in 0..block.cols {
                self.set(row0 + r, col0 + c, block.at(r, c));
            }
        }
        Ok(())
    }

    /// Horizontally concatenates `self` and `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` and `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|x| (*x as f64).powi(2))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, x| acc.max(x.abs()))
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f32 {
        (self.data.iter().map(|x| *x as f64).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|x| *x as f64).sum::<f64>() as f32
    }

    /// Returns true when every element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Relative Frobenius-norm error `‖self - other‖ / ‖other‖`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn relative_error(&self, other: &Matrix) -> Result<f32> {
        let diff = self.sub(other)?;
        let denom = other.frobenius_norm().max(f32::MIN_POSITIVE);
        Ok(diff.frobenius_norm() / denom)
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

/// Borrowing, allocation-free iterator over one matrix column
/// (see [`Matrix::column_iter`]).
#[derive(Debug, Clone)]
pub struct ColumnIter<'a> {
    data: &'a [f32],
    pos: usize,
    stride: usize,
}

impl Iterator for ColumnIter<'_> {
    type Item = f32;

    #[inline]
    fn next(&mut self) -> Option<f32> {
        let value = *self.data.get(self.pos)?;
        self.pos += self.stride;
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.pos < self.data.len() {
            (self.data.len() - self.pos).div_ceil(self.stride)
        } else {
            0
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zeros_rejects_zero_dimension() {
        let _ = Matrix::zeros(0, 4);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let id = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(id.at(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidDimension(_)));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.at(0, 1), 4.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample(); // 2x3
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.at(0, 0), 58.0);
        assert_eq!(c.at(0, 1), 64.0);
        assert_eq!(c.at(1, 0), 139.0);
        assert_eq!(c.at(1, 1), 154.0);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        let err = a.matmul(&sample()).unwrap_err();
        assert!(matches!(
            err,
            TensorError::ShapeMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn matmul_transpose_equals_explicit_transpose() {
        let mut rng = Rng::seed_from(1);
        let a = Matrix::random_uniform(5, 7, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 7, -1.0, 1.0, &mut rng);
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-5));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let v = vec![1.0, 0.5, -1.0];
        let out = a.matvec(&v).unwrap();
        assert_eq!(out, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = sample();
        let b = sample();
        assert_eq!(a.add(&b).unwrap().at(1, 2), 12.0);
        assert_eq!(a.sub(&b).unwrap().max_abs(), 0.0);
        assert_eq!(a.hadamard(&b).unwrap().at(0, 2), 9.0);
        assert_eq!(a.scale(2.0).at(1, 0), 8.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let g = Matrix::filled(2, 2, 3.0);
        a.axpy(0.5, &g).unwrap();
        a.axpy(0.5, &g).unwrap();
        assert!(a.approx_eq(&Matrix::filled(2, 2, 3.0), 1e-6));
    }

    #[test]
    fn broadcast_bias() {
        let a = sample();
        let out = a.add_row_broadcast(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(out.at(0, 0), 2.0);
        assert_eq!(out.at(1, 2), 7.0);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn submatrix_and_set_submatrix() {
        let m = sample();
        let block = m.submatrix(0, 1, 2, 2).unwrap();
        assert_eq!(block.at(0, 0), 2.0);
        assert_eq!(block.at(1, 1), 6.0);

        let mut target = Matrix::zeros(3, 3);
        target.set_submatrix(1, 1, &block).unwrap();
        assert_eq!(target.at(1, 1), 2.0);
        assert_eq!(target.at(2, 2), 6.0);
        assert!(target.set_submatrix(2, 2, &block).is_err());
        assert!(m.submatrix(0, 2, 1, 5).is_err());
    }

    #[test]
    fn stacking() {
        let a = sample();
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.at(1, 5), 6.0);
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.at(3, 0), 4.0);
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.mean() - 3.5).abs() < 1e-6);
        assert!((m.sum() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn relative_error_is_zero_for_identical() {
        let m = sample();
        assert_eq!(m.relative_error(&m).unwrap(), 0.0);
    }

    #[test]
    fn row_and_column_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
        assert_eq!(m.get(5, 0), None);
        assert_eq!(m.get(1, 1), Some(5.0));
    }

    #[test]
    fn column_iter_matches_column_copy() {
        let m = sample();
        for c in 0..m.cols() {
            let iter = m.column_iter(c);
            assert_eq!(iter.len(), m.rows());
            assert_eq!(iter.collect::<Vec<f32>>(), m.column(c));
        }
        // Single-column and single-row shapes.
        let tall = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert_eq!(
            tall.column_iter(0).collect::<Vec<f32>>(),
            vec![1.0, 2.0, 3.0]
        );
        let wide = Matrix::from_rows(&[vec![7.0, 8.0, 9.0]]).unwrap();
        assert_eq!(wide.column_iter(1).collect::<Vec<f32>>(), vec![8.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn column_iter_rejects_out_of_range() {
        let _ = sample().column_iter(3);
    }

    #[test]
    fn map_and_map_inplace() {
        let mut m = sample();
        let doubled = m.map(|x| 2.0 * x);
        assert_eq!(doubled.at(0, 0), 2.0);
        m.map_inplace(|x| -x);
        assert_eq!(m.at(1, 2), -6.0);
    }

    #[test]
    fn xavier_initialization_bounds() {
        let mut rng = Rng::seed_from(3);
        let m = Matrix::xavier(16, 16, &mut rng);
        let limit = (6.0f32 / 32.0).sqrt() + 1e-6;
        assert!(m.as_slice().iter().all(|x| x.abs() <= limit));
    }
}
