//! Singular value decomposition: one-sided Jacobi rotations and a
//! randomized subspace-iteration sketch.
//!
//! The paper's gradient-redistribution technique (Section 4) decomposes every
//! static transformer weight matrix as `W = U Σ Vᵀ`, truncates the rank to a
//! *hard threshold* `D_Th = (D_h1 · D_h2) / (D_h1 + D_h2)` so the inference
//! MAC count is unchanged, fine-tunes the factors, and maps the ranks whose
//! singular values carry the largest loss gradient onto SLC RRAM.
//!
//! Two algorithms are available behind [`SvdAlgorithm`]:
//!
//! * [`SvdAlgorithm::Jacobi`] (the default) — one-sided Jacobi, chosen
//!   because it is simple, numerically robust for the well-conditioned
//!   weight matrices seen here, and needs no external LAPACK dependency. It
//!   orthogonalizes the columns of a working copy of `W` by plane rotations;
//!   the column norms become the singular values. Every figure and table in
//!   `EXPERIMENTS.md` is produced on this bit-stable path.
//! * [`SvdAlgorithm::Randomized`] — a Halko–Martinsson–Tropp randomized
//!   range sketch (Gaussian sketch → QR orthonormalization → subspace/power
//!   iteration → Jacobi on the small projected matrix). When only the
//!   leading `k ≪ min(m, n)` ranks are needed — the hard-threshold
//!   truncation always is — this replaces the `O(n³)`-per-sweep Jacobi cost
//!   with a handful of `O(m·n·k)` products, which dominates
//!   `GradientRedistribution::apply` wall-clock. Deterministic: the sketch
//!   RNG is seeded from [`RandomizedSvdConfig::seed`], never from global
//!   state. Opt-in via `--svd-algo randomized` on the figure binaries.
//!
//! ## Non-convergence handling
//!
//! One-sided Jacobi converges extremely reliably for finite inputs: the
//! sweep loop stops as soon as every column-pair cosine falls below `EPS`.
//! Because the working copy stores `f32`, pathological matrices can plateau
//! slightly above `EPS` without being meaningfully non-orthogonal; after
//! `MAX_SWEEPS` sweeps the decomposition **accepts that plateau** (the
//! columns are orthogonal to working precision, so the factors are still
//! valid) rather than erroring — this accepted-result fallback is part of
//! the API contract and is exercised by the tests. Only genuinely broken
//! states are typed errors: non-finite *inputs* are rejected up front with
//! [`TensorError::InvalidArgument`] (they would otherwise defeat the cosine
//! test and come back as silently-"converged" NaN factors), and a working
//! copy that turns non-finite mid-iteration (overflow) surfaces as
//! [`TensorError::NoConvergence`].

use crate::error::TensorError;
use crate::kernels;
use crate::matrix::Matrix;
use crate::rng::Rng;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of Jacobi sweeps before accepting the precision plateau
/// (see the module docs on non-convergence handling).
const MAX_SWEEPS: usize = 60;

/// Convergence threshold on the off-diagonal cosine.
const EPS: f64 = 1e-10;

/// Which SVD algorithm to run (see the module docs for the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SvdAlgorithm {
    /// One-sided Jacobi: exact to working precision, bit-stable default.
    #[default]
    Jacobi,
    /// Gaussian-sketch subspace iteration: fast truncated decompositions,
    /// opt-in (`--svd-algo randomized`).
    Randomized,
}

impl SvdAlgorithm {
    /// Parses a command-line name (`jacobi`, `randomized`/`rand`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "jacobi" => Some(SvdAlgorithm::Jacobi),
            "randomized" | "rand" => Some(SvdAlgorithm::Randomized),
            _ => None,
        }
    }
}

impl fmt::Display for SvdAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvdAlgorithm::Jacobi => write!(f, "jacobi"),
            SvdAlgorithm::Randomized => write!(f, "randomized"),
        }
    }
}

/// Tuning knobs for [`svd_randomized`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedSvdConfig {
    /// Target rank (0 means the full `min(m, n)`).
    pub rank: usize,
    /// Extra sketch columns beyond `rank`; the classic HMT recommendation of
    /// 5–10 columns makes the captured subspace near-optimal.
    pub oversample: usize,
    /// Subspace (power) iterations `(W Wᵀ)^q W Ω`; each sharpens the sketch
    /// toward the leading singular vectors, which matters for the flat
    /// spectra of freshly initialized weight matrices.
    pub power_iterations: usize,
    /// Seed for the Gaussian sketch; fixed per decomposition so the
    /// algorithm is deterministic and thread-count independent.
    pub seed: u64,
}

impl RandomizedSvdConfig {
    /// The default configuration for a given target rank: 8 oversampling
    /// columns and 3 subspace iterations.
    pub fn for_rank(rank: usize) -> Self {
        RandomizedSvdConfig::for_rank_seeded(rank, 0x5eed_cafe)
    }

    /// Like [`RandomizedSvdConfig::for_rank`] but with a caller-chosen
    /// sketch seed. The pooled gradient-redistribution path derives one
    /// seed per layer from the layer's dotted parameter name, so every
    /// layer draws an independent sketch no matter which worker (or how
    /// many workers) factorizes it.
    pub fn for_rank_seeded(rank: usize, seed: u64) -> Self {
        RandomizedSvdConfig {
            rank,
            oversample: 8,
            power_iterations: 3,
            seed,
        }
    }
}

/// A singular value decomposition `W = U Σ Vᵀ`.
///
/// `u` is `m×r`, `singular_values` has length `r`, and `vt` is `r×n` where
/// `r = min(m, n)` (or less after [`Svd::truncate`]). Singular values are
/// sorted in non-increasing order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Svd {
    /// Left singular vectors, one column per retained rank.
    pub u: Matrix,
    /// Singular values in non-increasing order.
    pub singular_values: Vec<f32>,
    /// Right singular vectors (transposed), one row per retained rank.
    pub vt: Matrix,
}

impl Svd {
    /// Number of retained ranks.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Reconstructs `U Σ Vᵀ` at the current (possibly truncated) rank.
    ///
    /// Runs the fused rank-k kernel
    /// ([`kernels::reconstruct_rank_k`]), which is bit-identical
    /// to the historical rank-1-update triple loop but sweeps the output
    /// row-major exactly once.
    pub fn reconstruct(&self) -> Matrix {
        kernels::reconstruct_rank_k(&self.u, &self.singular_values, &self.vt)
    }

    /// Returns a copy truncated to the leading `k` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `k` is zero or exceeds the
    /// current rank.
    pub fn truncate(&self, k: usize) -> Result<Svd> {
        if k == 0 || k > self.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "truncation rank {k} must be in 1..={}",
                self.rank()
            )));
        }
        let u = self.u.submatrix(0, 0, self.u.rows(), k)?;
        let vt = self.vt.submatrix(0, 0, k, self.vt.cols())?;
        Ok(Svd {
            u,
            singular_values: self.singular_values[..k].to_vec(),
            vt,
        })
    }

    /// The factor `Σ Vᵀ` (size `r×n`), which the paper pre-computes and stores
    /// in RRAM together with `U` (Figure 10, step 3).
    pub fn sigma_vt(&self) -> Matrix {
        let mut out = self.vt.clone();
        for (k, &sigma) in self.singular_values.iter().enumerate() {
            for j in 0..out.cols() {
                out.set(k, j, out.at(k, j) * sigma);
            }
        }
        out
    }

    /// The factor `U Σ` (size `m×r`).
    pub fn u_sigma(&self) -> Matrix {
        let mut out = self.u.clone();
        for (k, &sigma) in self.singular_values.iter().enumerate() {
            for i in 0..out.rows() {
                out.set(i, k, out.at(i, k) * sigma);
            }
        }
        out
    }

    /// Fraction of total squared singular mass captured by the leading `k` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `k` exceeds the rank.
    pub fn captured_energy(&self, k: usize) -> Result<f64> {
        if k > self.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "k={k} exceeds rank {}",
                self.rank()
            )));
        }
        let total: f64 = self
            .singular_values
            .iter()
            .map(|s| (*s as f64).powi(2))
            .sum();
        if total == 0.0 {
            return Ok(1.0);
        }
        let head: f64 = self.singular_values[..k]
            .iter()
            .map(|s| (*s as f64).powi(2))
            .sum();
        Ok(head / total)
    }
}

/// The paper's hard rank threshold `D_Th = (D_h1 · D_h2) / (D_h1 + D_h2)`.
///
/// At this rank the post-SVD factored multiply `x·(ΣVᵀ)ᵀ` followed by `·Uᵀ`
/// costs the same number of MACs (and stores the same number of parameters)
/// as the original dense `x·Wᵀ`.
pub fn hard_threshold_rank(rows: usize, cols: usize) -> usize {
    if rows == 0 || cols == 0 {
        return 0;
    }
    ((rows * cols) / (rows + cols)).max(1)
}

/// Computes the full SVD of `w` using one-sided Jacobi rotations.
///
/// Works for any shape; internally operates on the transpose when `m < n` so
/// the working matrix always has at least as many rows as columns.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-finite inputs and
/// [`TensorError::NoConvergence`] if the working copy turns non-finite
/// during the sweeps (see the module docs on non-convergence handling).
pub fn svd(w: &Matrix) -> Result<Svd> {
    ensure_finite(w)?;
    if w.rows() >= w.cols() {
        svd_tall(w)
    } else {
        // W = U Σ Vᵀ  ⇔  Wᵀ = V Σ Uᵀ.
        let t = svd_tall(&w.transpose())?;
        Ok(Svd {
            u: t.vt.transpose(),
            singular_values: t.singular_values,
            vt: t.u.transpose(),
        })
    }
}

/// Computes a (possibly truncated) SVD with the selected algorithm.
///
/// `rank == 0` requests the full `min(m, n)` ranks. With
/// [`SvdAlgorithm::Jacobi`] this computes the full decomposition and then
/// truncates — exactly the historical `svd(w)? .truncate(rank)` sequence, so
/// the default path stays bit-identical. With [`SvdAlgorithm::Randomized`]
/// it sketches only the leading subspace
/// (see [`svd_randomized`] and [`RandomizedSvdConfig::for_rank`]).
///
/// # Errors
///
/// Propagates decomposition failures from either algorithm.
pub fn svd_with(w: &Matrix, algorithm: SvdAlgorithm, rank: usize) -> Result<Svd> {
    svd_with_seeded(w, algorithm, rank, None)
}

/// [`svd_with`] with an optional per-call sketch seed.
///
/// `seed` only affects [`SvdAlgorithm::Randomized`] (it replaces the fixed
/// default of [`RandomizedSvdConfig::for_rank`]); the Jacobi path is
/// deterministic with no randomness to seed. Passing `None` is exactly
/// [`svd_with`].
///
/// # Errors
///
/// Propagates decomposition failures from either algorithm.
pub fn svd_with_seeded(
    w: &Matrix,
    algorithm: SvdAlgorithm,
    rank: usize,
    seed: Option<u64>,
) -> Result<Svd> {
    match algorithm {
        SvdAlgorithm::Jacobi => {
            let d = svd(w)?;
            if rank == 0 || rank >= d.rank() {
                Ok(d)
            } else {
                d.truncate(rank)
            }
        }
        SvdAlgorithm::Randomized => {
            let config = match seed {
                Some(seed) => RandomizedSvdConfig::for_rank_seeded(rank, seed),
                None => RandomizedSvdConfig::for_rank(rank),
            };
            svd_randomized(w, &config)
        }
    }
}

/// Randomized truncated SVD by Gaussian-sketch subspace iteration
/// (Halko–Martinsson–Tropp).
///
/// Pipeline: draw a seeded Gaussian test matrix `Ω` (`n × ℓ`,
/// `ℓ = rank + oversample`), orthonormalize `Y = W·Ω` into a range basis
/// `Q`, sharpen it with `power_iterations` rounds of
/// `Q ← orth(W · orth(Wᵀ · Q))`, run the exact Jacobi SVD on the small
/// projected matrix `B = Qᵀ·W` (`ℓ × n`), and lift `U = Q·U_B`. When the
/// sketch width reaches the full rank there is nothing to compress, so the
/// exact Jacobi decomposition (truncated to `rank`) is returned instead.
///
/// # Errors
///
/// Propagates shape/decomposition failures from the underlying products and
/// the small Jacobi solve.
pub fn svd_randomized(w: &Matrix, config: &RandomizedSvdConfig) -> Result<Svd> {
    ensure_finite(w)?;
    let full = w.rows().min(w.cols());
    let rank = if config.rank == 0 {
        full
    } else {
        config.rank.min(full)
    };
    let sketch = rank.saturating_add(config.oversample).min(full);
    if sketch >= full {
        // No compression possible: fall back to the exact decomposition.
        let d = svd(w)?;
        return if rank == d.rank() {
            Ok(d)
        } else {
            d.truncate(rank)
        };
    }

    let mut rng = Rng::seed_from(config.seed);
    let omega = Matrix::random_normal(w.cols(), sketch, 0.0, 1.0, &mut rng);
    let mut q = w.matmul(&omega)?;
    orthonormalize_columns(&mut q);
    // The sketch products run on the packed kernel layer:
    // `kernels::matmul_transpose_left` computes `wᵀ·q` / `qᵀ·w` without
    // materializing the transposes, bit-identical to the two-step form.
    for _ in 0..config.power_iterations {
        let mut z = kernels::matmul_transpose_left(w, &q)?;
        orthonormalize_columns(&mut z);
        q = w.matmul(&z)?;
        orthonormalize_columns(&mut q);
    }

    // Exact Jacobi on the ℓ×n projection, then lift back to m rows.
    let b = kernels::matmul_transpose_left(&q, w)?;
    let small = svd(&b)?;
    let u = q.matmul(&small.u)?;
    let d = Svd {
        u,
        singular_values: small.singular_values,
        vt: small.vt,
    };
    if rank == d.rank() {
        Ok(d)
    } else {
        d.truncate(rank)
    }
}

/// Rejects non-finite inputs up front: NaNs defeat the Jacobi cosine test
/// (every `NaN <= EPS` comparison is false while `f64::max` ignores NaN), so
/// without this check a NaN matrix would come back as silently "converged"
/// NaN factors.
fn ensure_finite(w: &Matrix) -> Result<()> {
    if w.as_slice().iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(TensorError::InvalidArgument(
            "SVD input contains non-finite values".to_string(),
        ))
    }
}

/// In-place modified Gram–Schmidt on the columns of `q`. Columns that cancel
/// to (near) zero norm are zeroed out, which downstream code treats as
/// zero singular directions.
fn orthonormalize_columns(q: &mut Matrix) {
    let (m, l) = q.shape();
    for j in 0..l {
        for p in 0..j {
            let dot: f64 = q
                .column_iter(p)
                .zip(q.column_iter(j))
                .map(|(a, b)| f64::from(a) * f64::from(b))
                .sum();
            for i in 0..m {
                let value = f64::from(q.at(i, j)) - dot * f64::from(q.at(i, p));
                q.set(i, j, value as f32);
            }
        }
        let norm: f64 = q
            .column_iter(j)
            .map(|x| f64::from(x).powi(2))
            .sum::<f64>()
            .sqrt();
        if norm > 1e-12 {
            for i in 0..m {
                q.set(i, j, (f64::from(q.at(i, j)) / norm) as f32);
            }
        } else {
            for i in 0..m {
                q.set(i, j, 0.0);
            }
        }
    }
}

/// One-sided Jacobi for `m >= n`.
fn svd_tall(w: &Matrix) -> Result<Svd> {
    let m = w.rows();
    let n = w.cols();
    // Working copy whose columns we orthogonalize: starts as W, ends as U·Σ.
    let mut a = w.clone();
    // Accumulated right rotations: V (n×n).
    let mut v = Matrix::identity(n);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off_diagonal = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the (p, q) column pair, walked with the
                // allocation-free strided column iterators.
                let mut alpha = 0.0f64;
                let mut beta = 0.0f64;
                let mut gamma = 0.0f64;
                for (ap, aq) in a.column_iter(p).zip(a.column_iter(q)) {
                    let ap = f64::from(ap);
                    let aq = f64::from(aq);
                    alpha += ap * ap;
                    beta += aq * aq;
                    gamma += ap * aq;
                }
                if alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                let cosine = gamma.abs() / (alpha * beta).sqrt();
                off_diagonal = off_diagonal.max(cosine);
                if cosine <= EPS {
                    continue;
                }
                // Jacobi rotation that zeroes the (p, q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let ap = a.at(i, p) as f64;
                    let aq = a.at(i, q) as f64;
                    a.set(i, p, (c * ap - s * aq) as f32);
                    a.set(i, q, (s * ap + c * aq) as f32);
                }
                for i in 0..n {
                    let vp = v.at(i, p) as f64;
                    let vq = v.at(i, q) as f64;
                    v.set(i, p, (c * vp - s * vq) as f32);
                    v.set(i, q, (s * vp + c * vq) as f32);
                }
            }
        }
        if off_diagonal <= EPS {
            converged = true;
            break;
        }
    }
    if !converged {
        // Accepted-result fallback (see the module docs): the input was
        // finite, so after MAX_SWEEPS the columns are orthogonal to f32
        // working precision and the factors are valid. Only a working copy
        // that turned non-finite mid-iteration (overflow) is an error.
        if a.as_slice().iter().any(|x| !x.is_finite()) {
            return Err(TensorError::NoConvergence {
                algorithm: "one-sided Jacobi SVD",
                iterations: MAX_SWEEPS,
            });
        }
    }

    // Column norms of the rotated matrix are the singular values.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigmas: Vec<f64> = Vec::with_capacity(n);
    for j in 0..n {
        let norm: f64 = a
            .column_iter(j)
            .map(|x| f64::from(x).powi(2))
            .sum::<f64>()
            .sqrt();
        sigmas.push(norm);
    }
    order.sort_by(|&i, &j| sigmas[j].partial_cmp(&sigmas[i]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    for (new_k, &old_k) in order.iter().enumerate() {
        let sigma = sigmas[old_k];
        singular_values.push(sigma as f32);
        if sigma > 0.0 {
            for i in 0..m {
                u.set(i, new_k, (a.at(i, old_k) as f64 / sigma) as f32);
            }
        }
        for j in 0..n {
            vt.set(new_k, j, v.at(j, old_k));
        }
    }

    Ok(Svd {
        u,
        singular_values,
        vt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn reconstructs_tall_matrix() {
        let w = random(12, 8, 1);
        let d = svd(&w).unwrap();
        assert_eq!(d.rank(), 8);
        assert!(w.approx_eq(&d.reconstruct(), 1e-3));
    }

    #[test]
    fn reconstructs_wide_matrix() {
        let w = random(6, 14, 2);
        let d = svd(&w).unwrap();
        assert_eq!(d.rank(), 6);
        assert!(w.approx_eq(&d.reconstruct(), 1e-3));
    }

    #[test]
    fn reconstructs_square_matrix() {
        let w = random(10, 10, 3);
        let d = svd(&w).unwrap();
        assert!(w.approx_eq(&d.reconstruct(), 1e-3));
    }

    #[test]
    fn singular_values_are_sorted_and_nonnegative() {
        let w = random(16, 9, 4);
        let d = svd(&w).unwrap();
        for pair in d.singular_values.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(d.singular_values.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn u_and_v_have_orthonormal_columns() {
        let w = random(12, 6, 5);
        let d = svd(&w).unwrap();
        let utu = d.u.transpose().matmul(&d.u).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(6), 1e-3));
        let vvt = d.vt.matmul(&d.vt.transpose()).unwrap();
        assert!(vvt.approx_eq(&Matrix::identity(6), 1e-3));
    }

    #[test]
    fn matches_known_diagonal_case() {
        let w = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]).unwrap();
        let d = svd(&w).unwrap();
        assert!((d.singular_values[0] - 3.0).abs() < 1e-5);
        assert!((d.singular_values[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn rank_one_matrix_has_single_nonzero_singular_value() {
        let u = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let v = Matrix::from_rows(&[vec![4.0, 5.0]]).unwrap();
        let w = u.matmul(&v).unwrap();
        let d = svd(&w).unwrap();
        assert!(d.singular_values[0] > 1.0);
        assert!(d.singular_values[1].abs() < 1e-4);
    }

    #[test]
    fn truncation_reduces_rank_and_error_grows_gracefully() {
        let w = random(20, 12, 6);
        let d = svd(&w).unwrap();
        let full_err = w.relative_error(&d.reconstruct()).unwrap();
        let half = d.truncate(6).unwrap();
        assert_eq!(half.rank(), 6);
        let half_err = w.relative_error(&half.reconstruct()).unwrap();
        assert!(half_err >= full_err);
        assert!(half_err < 1.0);
        assert!(d.truncate(0).is_err());
        assert!(d.truncate(13).is_err());
    }

    #[test]
    fn sigma_vt_and_u_sigma_factorizations_agree() {
        let w = random(9, 7, 7);
        let d = svd(&w).unwrap();
        let via_sigma_vt = d.u.matmul(&d.sigma_vt()).unwrap();
        let via_u_sigma = d.u_sigma().matmul(&d.vt).unwrap();
        assert!(via_sigma_vt.approx_eq(&w, 1e-3));
        assert!(via_u_sigma.approx_eq(&w, 1e-3));
    }

    #[test]
    fn captured_energy_is_monotone() {
        let w = random(15, 10, 8);
        let d = svd(&w).unwrap();
        let mut prev = 0.0;
        for k in 1..=d.rank() {
            let e = d.captured_energy(k).unwrap();
            assert!(e >= prev);
            prev = e;
        }
        assert!((prev - 1.0).abs() < 1e-6);
        assert!(d.captured_energy(d.rank() + 1).is_err());
    }

    #[test]
    fn hard_threshold_matches_paper_formula() {
        // BERT-Base FFN1: 768 x 3072 -> 768*3072/(768+3072) = 614.4 -> 614.
        assert_eq!(hard_threshold_rank(768, 3072), 614);
        // Square matrix D x D -> D/2.
        assert_eq!(hard_threshold_rank(768, 768), 384);
        assert_eq!(hard_threshold_rank(0, 10), 0);
        assert_eq!(hard_threshold_rank(1, 1), 1);
    }

    #[test]
    fn non_finite_inputs_are_rejected_not_silently_accepted() {
        // Pre-audit, a NaN matrix defeated the cosine test and came back as
        // "converged" NaN factors; now it is a typed error up front.
        let mut w = random(6, 4, 20);
        w.set(2, 1, f32::NAN);
        for algo in [SvdAlgorithm::Jacobi, SvdAlgorithm::Randomized] {
            let err = svd_with(&w, algo, 2).unwrap_err();
            assert!(matches!(err, TensorError::InvalidArgument(_)), "{algo}");
        }
        let mut w = random(6, 4, 21);
        w.set(0, 0, f32::INFINITY);
        assert!(svd(&w).is_err());
    }

    #[test]
    fn svd_with_jacobi_matches_the_historical_truncation_path() {
        let w = random(14, 9, 22);
        let direct = svd(&w).unwrap().truncate(5).unwrap();
        let via = svd_with(&w, SvdAlgorithm::Jacobi, 5).unwrap();
        assert_eq!(direct.u.as_slice(), via.u.as_slice());
        assert_eq!(direct.singular_values, via.singular_values);
        assert_eq!(direct.vt.as_slice(), via.vt.as_slice());
        // rank 0 requests the full decomposition.
        let full = svd_with(&w, SvdAlgorithm::Jacobi, 0).unwrap();
        assert_eq!(full.rank(), 9);
    }

    #[test]
    fn randomized_svd_tracks_jacobi_at_the_hard_threshold_rank() {
        for (rows, cols, seed) in [(32, 32, 30u64), (32, 64, 31), (48, 24, 32)] {
            let w = random(rows, cols, seed);
            let k = hard_threshold_rank(rows, cols);
            let exact = svd_with(&w, SvdAlgorithm::Jacobi, k).unwrap();
            let sketched = svd_with(&w, SvdAlgorithm::Randomized, k).unwrap();
            assert_eq!(sketched.rank(), k);
            let exact_err = w.relative_error(&exact.reconstruct()).unwrap();
            let sketched_err = w.relative_error(&sketched.reconstruct()).unwrap();
            assert!(
                sketched_err <= exact_err + 1e-3,
                "{rows}x{cols}: randomized err {sketched_err} vs jacobi err {exact_err}"
            );
        }
    }

    #[test]
    fn randomized_svd_has_orthonormal_factors_and_sorted_values() {
        let w = random(40, 28, 33);
        let d = svd_with(&w, SvdAlgorithm::Randomized, 10).unwrap();
        assert_eq!(d.rank(), 10);
        let utu = d.u.transpose().matmul(&d.u).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(10), 1e-3));
        let vvt = d.vt.matmul(&d.vt.transpose()).unwrap();
        assert!(vvt.approx_eq(&Matrix::identity(10), 1e-3));
        for pair in d.singular_values.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-6);
        }
    }

    #[test]
    fn randomized_svd_is_deterministic() {
        let w = random(24, 18, 34);
        let a = svd_with(&w, SvdAlgorithm::Randomized, 6).unwrap();
        let b = svd_with(&w, SvdAlgorithm::Randomized, 6).unwrap();
        assert_eq!(a.u.as_slice(), b.u.as_slice());
        assert_eq!(a.singular_values, b.singular_values);
        assert_eq!(a.vt.as_slice(), b.vt.as_slice());
    }

    #[test]
    fn randomized_svd_falls_back_to_jacobi_when_sketch_covers_full_rank() {
        // rank + oversample >= min(m, n): compression is impossible.
        let w = random(10, 6, 35);
        let sketched = svd_with(&w, SvdAlgorithm::Randomized, 6).unwrap();
        let exact = svd(&w).unwrap();
        assert_eq!(sketched.u.as_slice(), exact.u.as_slice());
        assert_eq!(sketched.singular_values, exact.singular_values);
    }

    #[test]
    fn algorithm_names_parse_and_display() {
        assert_eq!(SvdAlgorithm::parse("jacobi"), Some(SvdAlgorithm::Jacobi));
        assert_eq!(
            SvdAlgorithm::parse("RANDOMIZED"),
            Some(SvdAlgorithm::Randomized)
        );
        assert_eq!(SvdAlgorithm::parse("rand"), Some(SvdAlgorithm::Randomized));
        assert_eq!(SvdAlgorithm::parse("lapack"), None);
        assert_eq!(SvdAlgorithm::Jacobi.to_string(), "jacobi");
        assert_eq!(SvdAlgorithm::Randomized.to_string(), "randomized");
        assert_eq!(SvdAlgorithm::default(), SvdAlgorithm::Jacobi);
    }

    #[test]
    fn hard_threshold_preserves_parameter_count() {
        let (m, n) = (64usize, 256usize);
        let k = hard_threshold_rank(m, n);
        let factored = k * n + m * k;
        assert!(factored <= m * n);
        // Within one rank of the dense parameter count.
        assert!(m * n - factored <= m + n);
    }
}
