//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The paper's gradient-redistribution technique (Section 4) decomposes every
//! static transformer weight matrix as `W = U Σ Vᵀ`, truncates the rank to a
//! *hard threshold* `D_Th = (D_h1 · D_h2) / (D_h1 + D_h2)` so the inference
//! MAC count is unchanged, fine-tunes the factors, and maps the ranks whose
//! singular values carry the largest loss gradient onto SLC RRAM.
//!
//! One-sided Jacobi is chosen because it is simple, numerically robust for
//! the well-conditioned weight matrices seen here, and needs no external
//! LAPACK dependency. It orthogonalizes the columns of a working copy of `W`
//! by plane rotations; the column norms become the singular values.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;

/// Convergence threshold on the off-diagonal cosine.
const EPS: f64 = 1e-10;

/// A singular value decomposition `W = U Σ Vᵀ`.
///
/// `u` is `m×r`, `singular_values` has length `r`, and `vt` is `r×n` where
/// `r = min(m, n)` (or less after [`Svd::truncate`]). Singular values are
/// sorted in non-increasing order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Svd {
    /// Left singular vectors, one column per retained rank.
    pub u: Matrix,
    /// Singular values in non-increasing order.
    pub singular_values: Vec<f32>,
    /// Right singular vectors (transposed), one row per retained rank.
    pub vt: Matrix,
}

impl Svd {
    /// Number of retained ranks.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Reconstructs `U Σ Vᵀ` at the current (possibly truncated) rank.
    pub fn reconstruct(&self) -> Matrix {
        let m = self.u.rows();
        let n = self.vt.cols();
        let mut out = Matrix::zeros(m, n);
        for (k, &sigma) in self.singular_values.iter().enumerate() {
            if sigma == 0.0 {
                continue;
            }
            for i in 0..m {
                let ui = self.u.at(i, k) * sigma;
                if ui == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = out.at(i, j) + ui * self.vt.at(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Returns a copy truncated to the leading `k` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `k` is zero or exceeds the
    /// current rank.
    pub fn truncate(&self, k: usize) -> Result<Svd> {
        if k == 0 || k > self.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "truncation rank {k} must be in 1..={}",
                self.rank()
            )));
        }
        let u = self.u.submatrix(0, 0, self.u.rows(), k)?;
        let vt = self.vt.submatrix(0, 0, k, self.vt.cols())?;
        Ok(Svd {
            u,
            singular_values: self.singular_values[..k].to_vec(),
            vt,
        })
    }

    /// The factor `Σ Vᵀ` (size `r×n`), which the paper pre-computes and stores
    /// in RRAM together with `U` (Figure 10, step 3).
    pub fn sigma_vt(&self) -> Matrix {
        let mut out = self.vt.clone();
        for (k, &sigma) in self.singular_values.iter().enumerate() {
            for j in 0..out.cols() {
                out.set(k, j, out.at(k, j) * sigma);
            }
        }
        out
    }

    /// The factor `U Σ` (size `m×r`).
    pub fn u_sigma(&self) -> Matrix {
        let mut out = self.u.clone();
        for (k, &sigma) in self.singular_values.iter().enumerate() {
            for i in 0..out.rows() {
                out.set(i, k, out.at(i, k) * sigma);
            }
        }
        out
    }

    /// Fraction of total squared singular mass captured by the leading `k` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `k` exceeds the rank.
    pub fn captured_energy(&self, k: usize) -> Result<f64> {
        if k > self.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "k={k} exceeds rank {}",
                self.rank()
            )));
        }
        let total: f64 = self
            .singular_values
            .iter()
            .map(|s| (*s as f64).powi(2))
            .sum();
        if total == 0.0 {
            return Ok(1.0);
        }
        let head: f64 = self.singular_values[..k]
            .iter()
            .map(|s| (*s as f64).powi(2))
            .sum();
        Ok(head / total)
    }
}

/// The paper's hard rank threshold `D_Th = (D_h1 · D_h2) / (D_h1 + D_h2)`.
///
/// At this rank the post-SVD factored multiply `x·(ΣVᵀ)ᵀ` followed by `·Uᵀ`
/// costs the same number of MACs (and stores the same number of parameters)
/// as the original dense `x·Wᵀ`.
pub fn hard_threshold_rank(rows: usize, cols: usize) -> usize {
    if rows == 0 || cols == 0 {
        return 0;
    }
    ((rows * cols) / (rows + cols)).max(1)
}

/// Computes the full SVD of `w` using one-sided Jacobi rotations.
///
/// Works for any shape; internally operates on the transpose when `m < n` so
/// the working matrix always has at least as many rows as columns.
///
/// # Errors
///
/// Returns [`TensorError::NoConvergence`] if the Jacobi sweeps fail to
/// converge (practically impossible for finite inputs of the sizes used
/// here).
pub fn svd(w: &Matrix) -> Result<Svd> {
    if w.rows() >= w.cols() {
        svd_tall(w)
    } else {
        // W = U Σ Vᵀ  ⇔  Wᵀ = V Σ Uᵀ.
        let t = svd_tall(&w.transpose())?;
        Ok(Svd {
            u: t.vt.transpose(),
            singular_values: t.singular_values,
            vt: t.u.transpose(),
        })
    }
}

/// One-sided Jacobi for `m >= n`.
fn svd_tall(w: &Matrix) -> Result<Svd> {
    let m = w.rows();
    let n = w.cols();
    // Working copy whose columns we orthogonalize: starts as W, ends as U·Σ.
    let mut a = w.clone();
    // Accumulated right rotations: V (n×n).
    let mut v = Matrix::identity(n);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off_diagonal = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the (p, q) column pair.
                let mut alpha = 0.0f64;
                let mut beta = 0.0f64;
                let mut gamma = 0.0f64;
                for i in 0..m {
                    let ap = a.at(i, p) as f64;
                    let aq = a.at(i, q) as f64;
                    alpha += ap * ap;
                    beta += aq * aq;
                    gamma += ap * aq;
                }
                if alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                let cosine = gamma.abs() / (alpha * beta).sqrt();
                off_diagonal = off_diagonal.max(cosine);
                if cosine <= EPS {
                    continue;
                }
                // Jacobi rotation that zeroes the (p, q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let ap = a.at(i, p) as f64;
                    let aq = a.at(i, q) as f64;
                    a.set(i, p, (c * ap - s * aq) as f32);
                    a.set(i, q, (s * ap + c * aq) as f32);
                }
                for i in 0..n {
                    let vp = v.at(i, p) as f64;
                    let vq = v.at(i, q) as f64;
                    v.set(i, p, (c * vp - s * vq) as f32);
                    v.set(i, q, (s * vp + c * vq) as f32);
                }
            }
        }
        if off_diagonal <= EPS {
            converged = true;
            break;
        }
    }
    if !converged {
        // One-sided Jacobi converges extremely reliably; if we get here the
        // matrix still has essentially orthogonal columns, so proceed but
        // flag pathological cases (NaN/Inf inputs) as errors.
        if a.as_slice().iter().any(|x| !x.is_finite()) {
            return Err(TensorError::NoConvergence {
                algorithm: "one-sided Jacobi SVD",
                iterations: MAX_SWEEPS,
            });
        }
    }

    // Column norms of the rotated matrix are the singular values.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigmas: Vec<f64> = Vec::with_capacity(n);
    for j in 0..n {
        let norm: f64 = (0..m)
            .map(|i| (a.at(i, j) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        sigmas.push(norm);
    }
    order.sort_by(|&i, &j| sigmas[j].partial_cmp(&sigmas[i]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    for (new_k, &old_k) in order.iter().enumerate() {
        let sigma = sigmas[old_k];
        singular_values.push(sigma as f32);
        if sigma > 0.0 {
            for i in 0..m {
                u.set(i, new_k, (a.at(i, old_k) as f64 / sigma) as f32);
            }
        }
        for j in 0..n {
            vt.set(new_k, j, v.at(j, old_k));
        }
    }

    Ok(Svd {
        u,
        singular_values,
        vt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn reconstructs_tall_matrix() {
        let w = random(12, 8, 1);
        let d = svd(&w).unwrap();
        assert_eq!(d.rank(), 8);
        assert!(w.approx_eq(&d.reconstruct(), 1e-3));
    }

    #[test]
    fn reconstructs_wide_matrix() {
        let w = random(6, 14, 2);
        let d = svd(&w).unwrap();
        assert_eq!(d.rank(), 6);
        assert!(w.approx_eq(&d.reconstruct(), 1e-3));
    }

    #[test]
    fn reconstructs_square_matrix() {
        let w = random(10, 10, 3);
        let d = svd(&w).unwrap();
        assert!(w.approx_eq(&d.reconstruct(), 1e-3));
    }

    #[test]
    fn singular_values_are_sorted_and_nonnegative() {
        let w = random(16, 9, 4);
        let d = svd(&w).unwrap();
        for pair in d.singular_values.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(d.singular_values.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn u_and_v_have_orthonormal_columns() {
        let w = random(12, 6, 5);
        let d = svd(&w).unwrap();
        let utu = d.u.transpose().matmul(&d.u).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(6), 1e-3));
        let vvt = d.vt.matmul(&d.vt.transpose()).unwrap();
        assert!(vvt.approx_eq(&Matrix::identity(6), 1e-3));
    }

    #[test]
    fn matches_known_diagonal_case() {
        let w = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]).unwrap();
        let d = svd(&w).unwrap();
        assert!((d.singular_values[0] - 3.0).abs() < 1e-5);
        assert!((d.singular_values[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn rank_one_matrix_has_single_nonzero_singular_value() {
        let u = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let v = Matrix::from_rows(&[vec![4.0, 5.0]]).unwrap();
        let w = u.matmul(&v).unwrap();
        let d = svd(&w).unwrap();
        assert!(d.singular_values[0] > 1.0);
        assert!(d.singular_values[1].abs() < 1e-4);
    }

    #[test]
    fn truncation_reduces_rank_and_error_grows_gracefully() {
        let w = random(20, 12, 6);
        let d = svd(&w).unwrap();
        let full_err = w.relative_error(&d.reconstruct()).unwrap();
        let half = d.truncate(6).unwrap();
        assert_eq!(half.rank(), 6);
        let half_err = w.relative_error(&half.reconstruct()).unwrap();
        assert!(half_err >= full_err);
        assert!(half_err < 1.0);
        assert!(d.truncate(0).is_err());
        assert!(d.truncate(13).is_err());
    }

    #[test]
    fn sigma_vt_and_u_sigma_factorizations_agree() {
        let w = random(9, 7, 7);
        let d = svd(&w).unwrap();
        let via_sigma_vt = d.u.matmul(&d.sigma_vt()).unwrap();
        let via_u_sigma = d.u_sigma().matmul(&d.vt).unwrap();
        assert!(via_sigma_vt.approx_eq(&w, 1e-3));
        assert!(via_u_sigma.approx_eq(&w, 1e-3));
    }

    #[test]
    fn captured_energy_is_monotone() {
        let w = random(15, 10, 8);
        let d = svd(&w).unwrap();
        let mut prev = 0.0;
        for k in 1..=d.rank() {
            let e = d.captured_energy(k).unwrap();
            assert!(e >= prev);
            prev = e;
        }
        assert!((prev - 1.0).abs() < 1e-6);
        assert!(d.captured_energy(d.rank() + 1).is_err());
    }

    #[test]
    fn hard_threshold_matches_paper_formula() {
        // BERT-Base FFN1: 768 x 3072 -> 768*3072/(768+3072) = 614.4 -> 614.
        assert_eq!(hard_threshold_rank(768, 3072), 614);
        // Square matrix D x D -> D/2.
        assert_eq!(hard_threshold_rank(768, 768), 384);
        assert_eq!(hard_threshold_rank(0, 10), 0);
        assert_eq!(hard_threshold_rank(1, 1), 1);
    }

    #[test]
    fn hard_threshold_preserves_parameter_count() {
        let (m, n) = (64usize, 256usize);
        let k = hard_threshold_rank(m, n);
        let factored = k * n + m * k;
        assert!(factored <= m * n);
        // Within one rank of the dense parameter count.
        assert!(m * n - factored <= m + n);
    }
}
