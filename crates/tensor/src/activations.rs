//! Activation functions, normalization, and their derivatives.
//!
//! These are the exact floating-point reference implementations used by the
//! functional transformer simulator. The hardware-accurate versions (Taylor
//! series exponential, pipelined SFU) live in `hyflex-circuits::sfu` and are
//! validated against these references.

use crate::matrix::Matrix;

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`].
pub fn relu_derivative(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Gaussian error linear unit (tanh approximation, as used by BERT/GPT-2).
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] (tanh approximation).
pub fn gelu_derivative(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + 0.044_715 * x3);
    let tanh_inner = inner.tanh();
    let sech2 = 1.0 - tanh_inner * tanh_inner;
    0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Numerically stable softmax over a slice.
///
/// Returns a vector of the same length that sums to 1 (for non-empty input).
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum == 0.0 {
        // Degenerate case (all -inf): return uniform.
        return vec![1.0 / logits.len() as f32; logits.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

/// Row-wise softmax over a matrix.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..m.rows() {
        let probs = softmax(m.row(r));
        out.row_mut(r).copy_from_slice(&probs);
    }
    out
}

/// Jacobian-vector product of softmax: given the softmax output `p` and an
/// upstream gradient `grad`, returns `dL/dlogits`.
pub fn softmax_backward(p: &[f32], grad: &[f32]) -> Vec<f32> {
    assert_eq!(p.len(), grad.len(), "softmax_backward length mismatch");
    let dot: f32 = p.iter().zip(grad.iter()).map(|(pi, gi)| pi * gi).sum();
    p.iter()
        .zip(grad.iter())
        .map(|(pi, gi)| pi * (gi - dot))
        .collect()
}

/// Output of a layer-normalization forward pass, retaining the statistics
/// needed for the backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormOutput {
    /// Normalized (and affine-transformed) output values.
    pub output: Vec<f32>,
    /// Pre-affine normalized values `(x - mean) / std`.
    pub normalized: Vec<f32>,
    /// Row mean.
    pub mean: f32,
    /// Row inverse standard deviation.
    pub inv_std: f32,
}

/// Layer normalization over a single vector with affine parameters.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths do not match `x`.
pub fn layer_norm(x: &[f32], gamma: &[f32], beta: &[f32], eps: f32) -> LayerNormOutput {
    assert_eq!(x.len(), gamma.len(), "layer_norm gamma length mismatch");
    assert_eq!(x.len(), beta.len(), "layer_norm beta length mismatch");
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv_std = 1.0 / (var + eps).sqrt();
    let normalized: Vec<f32> = x.iter().map(|v| (v - mean) * inv_std).collect();
    let output = normalized
        .iter()
        .zip(gamma.iter().zip(beta.iter()))
        .map(|(n, (g, b))| n * g + b)
        .collect();
    LayerNormOutput {
        output,
        normalized,
        mean,
        inv_std,
    }
}

/// Gradients produced by the layer-normalization backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormGrads {
    /// Gradient with respect to the input vector.
    pub d_input: Vec<f32>,
    /// Gradient with respect to gamma.
    pub d_gamma: Vec<f32>,
    /// Gradient with respect to beta.
    pub d_beta: Vec<f32>,
}

/// Backward pass of [`layer_norm`] for a single vector.
///
/// # Panics
///
/// Panics if the gradient length does not match the forward output.
pub fn layer_norm_backward(
    forward: &LayerNormOutput,
    gamma: &[f32],
    grad_output: &[f32],
) -> LayerNormGrads {
    let n = forward.normalized.len();
    assert_eq!(grad_output.len(), n, "layer_norm_backward length mismatch");
    let d_beta = grad_output.to_vec();
    let d_gamma: Vec<f32> = grad_output
        .iter()
        .zip(forward.normalized.iter())
        .map(|(g, x)| g * x)
        .collect();
    // dL/dx_hat
    let dxhat: Vec<f32> = grad_output
        .iter()
        .zip(gamma.iter())
        .map(|(g, gm)| g * gm)
        .collect();
    let mean_dxhat = dxhat.iter().sum::<f32>() / n as f32;
    let mean_dxhat_xhat = dxhat
        .iter()
        .zip(forward.normalized.iter())
        .map(|(d, x)| d * x)
        .sum::<f32>()
        / n as f32;
    let d_input = dxhat
        .iter()
        .zip(forward.normalized.iter())
        .map(|(d, x)| forward.inv_std * (d - mean_dxhat - x * mean_dxhat_xhat))
        .collect();
    LayerNormGrads {
        d_input,
        d_gamma,
        d_beta,
    }
}

/// Cross-entropy loss between softmax probabilities and a one-hot target.
///
/// # Panics
///
/// Panics if `target >= probs.len()`.
pub fn cross_entropy(probs: &[f32], target: usize) -> f32 {
    assert!(target < probs.len(), "target index out of range");
    -(probs[target].max(1e-12)).ln()
}

/// Mean squared error between a prediction and a target scalar.
pub fn squared_error(prediction: f32, target: f32) -> f32 {
    let d = prediction - target;
    d * d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative<F: Fn(f32) -> f32>(f: F, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn relu_basics() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_derivative(-1.0), 0.0);
        assert_eq!(relu_derivative(1.0), 1.0);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive inputs pass through, large negative go to zero.
        assert!((gelu(6.0) - 6.0).abs() < 1e-3);
        assert!(gelu(-6.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_derivative_matches_numeric() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 2.3] {
            let analytic = gelu_derivative(x);
            let numeric = numeric_derivative(gelu, x);
            assert!(
                (analytic - numeric).abs() < 2e-3,
                "gelu'({x}): {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_rows_normalizes_each_row() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0]]).unwrap();
        let s = softmax_rows(&m);
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((s.row(1).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(s.at(1, 0) > 0.99);
    }

    #[test]
    fn softmax_backward_matches_numeric_gradient() {
        let logits = [0.3f32, -0.2, 0.9];
        let target = 1usize;
        let loss = |l: &[f32]| cross_entropy(&softmax(l), target);
        let probs = softmax(&logits);
        // dL/dp for cross entropy: -1/p at the target, 0 elsewhere.
        let mut dl_dp = vec![0.0f32; 3];
        dl_dp[target] = -1.0 / probs[target];
        let analytic = softmax_backward(&probs, &dl_dp);
        for i in 0..3 {
            let mut plus = logits;
            plus[i] += 1e-3;
            let mut minus = logits;
            minus[i] -= 1e-3;
            let numeric = (loss(&plus) - loss(&minus)) / 2e-3;
            assert!(
                (analytic[i] - numeric).abs() < 1e-3,
                "dL/dlogit[{i}]: {} vs {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn layer_norm_output_has_zero_mean_unit_variance() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let gamma = [1.0f32; 4];
        let beta = [0.0f32; 4];
        let out = layer_norm(&x, &gamma, &beta, 1e-5);
        let mean = out.output.iter().sum::<f32>() / 4.0;
        let var = out
            .output
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_affine_parameters_apply() {
        let x = [0.0f32, 2.0];
        let gamma = [2.0f32, 2.0];
        let beta = [1.0f32, 1.0];
        let out = layer_norm(&x, &gamma, &beta, 1e-5);
        assert!((out.output[0] + 1.0).abs() < 1e-3); // -1*2+1
        assert!((out.output[1] - 3.0).abs() < 1e-3); // 1*2+1
    }

    #[test]
    fn layer_norm_backward_matches_numeric_gradient() {
        let x = vec![0.5f32, -1.0, 2.0, 0.3];
        let gamma = vec![1.2f32, 0.8, 1.0, 1.5];
        let beta = vec![0.1f32, -0.2, 0.0, 0.3];
        let upstream = vec![0.7f32, -0.3, 0.5, 0.2];
        let forward = layer_norm(&x, &gamma, &beta, 1e-5);
        let grads = layer_norm_backward(&forward, &gamma, &upstream);
        let loss = |input: &[f32]| -> f32 {
            let out = layer_norm(input, &gamma, &beta, 1e-5);
            out.output
                .iter()
                .zip(upstream.iter())
                .map(|(o, u)| o * u)
                .sum()
        };
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus[i] += 1e-3;
            let mut minus = x.clone();
            minus[i] -= 1e-3;
            let numeric = (loss(&plus) - loss(&minus)) / 2e-3;
            assert!(
                (grads.d_input[i] - numeric).abs() < 1e-2,
                "d_input[{i}]: {} vs {}",
                grads.d_input[i],
                numeric
            );
        }
        // d_beta is the upstream gradient itself.
        assert_eq!(grads.d_beta, upstream);
        assert_eq!(grads.d_gamma.len(), x.len());
    }

    #[test]
    fn cross_entropy_penalizes_wrong_confident_predictions() {
        let confident_right = cross_entropy(&[0.05, 0.9, 0.05], 1);
        let confident_wrong = cross_entropy(&[0.9, 0.05, 0.05], 1);
        assert!(confident_wrong > confident_right);
        assert!(confident_right < 0.2);
    }

    #[test]
    fn squared_error_is_symmetric() {
        assert_eq!(squared_error(2.0, 5.0), squared_error(5.0, 2.0));
        assert_eq!(squared_error(3.0, 3.0), 0.0);
    }
}
