//! Error types shared by the numerical substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix algebra, decompositions, and quantization.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right-hand operand (rows, cols).
        rhs: (usize, usize),
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// Requested (row, col).
        index: (usize, usize),
        /// Actual shape (rows, cols).
        shape: (usize, usize),
    },
    /// A matrix dimension was zero or otherwise invalid for the operation.
    InvalidDimension(String),
    /// An iterative algorithm (e.g. Jacobi SVD) failed to converge.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// A scalar argument was outside its valid range.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
            TensorError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch_mentions_both_shapes() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
        assert!(text.contains("matmul"));
    }

    #[test]
    fn display_no_convergence_mentions_algorithm() {
        let err = TensorError::NoConvergence {
            algorithm: "jacobi-svd",
            iterations: 64,
        };
        assert!(err.to_string().contains("jacobi-svd"));
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<TensorError>();
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
