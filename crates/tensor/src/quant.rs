//! Symmetric integer quantization.
//!
//! HyFlexPIM stores all linear-layer weights and the attention operands
//! Q, K, V as INT8 (paper Section 5.1) and maps the signed integers onto RRAM
//! conductances bit-by-bit (SLC) or two-bits-per-cell (MLC). This module
//! provides the per-tensor symmetric quantizer plus helpers for extracting
//! the unsigned bit-planes consumed by the crossbar mapping code.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A matrix quantized to signed integers with a single per-tensor scale.
///
/// `value ≈ q * scale` where `q ∈ [-(2^(bits-1)-1), 2^(bits-1)-1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    bits: u8,
    scale: f32,
    values: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` symmetrically to the given bit width (2..=16).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for unsupported bit widths.
    pub fn quantize(m: &Matrix, bits: u8) -> Result<Self> {
        if !(2..=16).contains(&bits) {
            return Err(TensorError::InvalidArgument(format!(
                "quantization bit-width {bits} must be in 2..=16"
            )));
        }
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let max_abs = m.max_abs();
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax };
        let values = m
            .as_slice()
            .iter()
            .map(|&x| (x / scale).round().clamp(-qmax, qmax) as i32)
            .collect();
        Ok(QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            bits,
            scale,
            values,
        })
    }

    /// Quantizes to INT8 (the paper's default for linear layers and Q/K/V).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`QuantizedMatrix::quantize`] (none for 8 bits).
    pub fn quantize_int8(m: &Matrix) -> Result<Self> {
        Self::quantize(m, 8)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bit width of the stored integers.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The per-tensor scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The quantized integer at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn value(&self, row: usize, col: usize) -> i32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.values[row * self.cols + col]
    }

    /// All quantized integers in row-major order.
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Reconstructs the floating-point matrix `q * scale`.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            self.value(r, c) as f32 * self.scale
        })
    }

    /// Mean absolute quantization error against the original matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mean_abs_error(&self, original: &Matrix) -> Result<f32> {
        let deq = self.dequantize();
        let diff = deq.sub(original)?;
        Ok(diff.as_slice().iter().map(|x| x.abs() as f64).sum::<f64>() as f32 / diff.len() as f32)
    }

    /// Extracts bit-plane `bit` (0 = LSB) of the two's-complement offset
    /// representation used by the crossbar mapping.
    ///
    /// The signed integer `q` is first shifted to the unsigned value
    /// `q + 2^(bits-1)` so every plane is a 0/1 matrix that can be written
    /// directly into SLC cells; the mapping layer subtracts the offset after
    /// the analog accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `bit >= self.bits()`.
    pub fn bit_plane(&self, bit: u8) -> Result<Matrix> {
        if bit >= self.bits {
            return Err(TensorError::InvalidArgument(format!(
                "bit {bit} out of range for {}-bit quantization",
                self.bits
            )));
        }
        let offset = 1i32 << (self.bits - 1);
        Ok(Matrix::from_fn(self.rows, self.cols, |r, c| {
            let unsigned = self.value(r, c) + offset;
            ((unsigned >> bit) & 1) as f32
        }))
    }

    /// Extracts the `group`-th group of `bits_per_cell` bits (0 = least
    /// significant group) of the offset representation, as used for MLC cells
    /// that store multiple bits per device.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the group is out of range
    /// or `bits_per_cell` is zero.
    pub fn bit_group(&self, group: u8, bits_per_cell: u8) -> Result<Matrix> {
        if bits_per_cell == 0 {
            return Err(TensorError::InvalidArgument(
                "bits_per_cell must be non-zero".to_string(),
            ));
        }
        let n_groups = self.bits.div_ceil(bits_per_cell);
        if group >= n_groups {
            return Err(TensorError::InvalidArgument(format!(
                "group {group} out of range for {} groups",
                n_groups
            )));
        }
        let offset = 1i32 << (self.bits - 1);
        let shift = group * bits_per_cell;
        let mask = (1i32 << bits_per_cell) - 1;
        Ok(Matrix::from_fn(self.rows, self.cols, |r, c| {
            let unsigned = self.value(r, c) + offset;
            ((unsigned >> shift) & mask) as f32
        }))
    }

    /// Number of cell columns needed per weight column when each cell stores
    /// `bits_per_cell` bits (SLC: 1, 2-b MLC: 2, ...).
    pub fn cells_per_weight(&self, bits_per_cell: u8) -> usize {
        assert!(bits_per_cell > 0, "bits_per_cell must be non-zero");
        usize::from(self.bits.div_ceil(bits_per_cell))
    }
}

/// Quantizes a single vector symmetrically to `bits` and returns
/// `(integers, scale)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for unsupported bit widths.
pub fn quantize_vector(v: &[f32], bits: u8) -> Result<(Vec<i32>, f32)> {
    if !(2..=16).contains(&bits) {
        return Err(TensorError::InvalidArgument(format!(
            "quantization bit-width {bits} must be in 2..=16"
        )));
    }
    let qmax = ((1i32 << (bits - 1)) - 1) as f32;
    let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax };
    let q = v
        .iter()
        .map(|&x| (x / scale).round().clamp(-qmax, qmax) as i32)
        .collect();
    Ok((q, scale))
}

/// Decomposes an unsigned integer into its bits, LSB first.
pub fn unsigned_bits(value: u32, bits: u8) -> Vec<u8> {
    (0..bits).map(|b| ((value >> b) & 1) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn int8_round_trip_error_is_small() {
        let mut rng = Rng::seed_from(1);
        let m = Matrix::random_normal(16, 16, 0.0, 0.5, &mut rng);
        let q = QuantizedMatrix::quantize_int8(&m).unwrap();
        assert_eq!(q.bits(), 8);
        let err = q.mean_abs_error(&m).unwrap();
        // Mean error should be well below one quantization step.
        assert!(err < q.scale());
    }

    #[test]
    fn rejects_bad_bit_widths() {
        let m = Matrix::zeros(2, 2);
        assert!(QuantizedMatrix::quantize(&m, 1).is_err());
        assert!(QuantizedMatrix::quantize(&m, 17).is_err());
        assert!(QuantizedMatrix::quantize(&m, 4).is_ok());
    }

    #[test]
    fn zero_matrix_has_unit_scale_and_zero_values() {
        let m = Matrix::zeros(3, 3);
        let q = QuantizedMatrix::quantize_int8(&m).unwrap();
        assert_eq!(q.scale(), 1.0);
        assert!(q.values().iter().all(|&v| v == 0));
    }

    #[test]
    fn extreme_values_saturate_to_qmax() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0, 0.5]]).unwrap();
        let q = QuantizedMatrix::quantize_int8(&m).unwrap();
        assert_eq!(q.value(0, 0), 127);
        assert_eq!(q.value(0, 1), -127);
    }

    #[test]
    fn bit_planes_reassemble_to_values() {
        let mut rng = Rng::seed_from(2);
        let m = Matrix::random_uniform(4, 5, -1.0, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m, 8).unwrap();
        let offset = 1i32 << 7;
        let planes: Vec<Matrix> = (0..8).map(|b| q.bit_plane(b).unwrap()).collect();
        for r in 0..4 {
            for c in 0..5 {
                let mut acc = 0i32;
                for (b, plane) in planes.iter().enumerate() {
                    acc += (plane.at(r, c) as i32) << b;
                }
                assert_eq!(acc - offset, q.value(r, c));
            }
        }
    }

    #[test]
    fn bit_groups_reassemble_to_values_for_mlc() {
        let mut rng = Rng::seed_from(3);
        let m = Matrix::random_uniform(6, 3, -2.0, 2.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m, 8).unwrap();
        let offset = 1i32 << 7;
        let groups: Vec<Matrix> = (0..4).map(|g| q.bit_group(g, 2).unwrap()).collect();
        for r in 0..6 {
            for c in 0..3 {
                let mut acc = 0i32;
                for (g, group) in groups.iter().enumerate() {
                    acc += (group.at(r, c) as i32) << (2 * g);
                }
                assert_eq!(acc - offset, q.value(r, c));
            }
        }
    }

    #[test]
    fn bit_plane_and_group_bounds_are_checked() {
        let m = Matrix::zeros(2, 2);
        let q = QuantizedMatrix::quantize(&m, 8).unwrap();
        assert!(q.bit_plane(8).is_err());
        assert!(q.bit_group(4, 2).is_err());
        assert!(q.bit_group(0, 0).is_err());
    }

    #[test]
    fn cells_per_weight_matches_paper_mapping() {
        let m = Matrix::zeros(2, 2);
        let q = QuantizedMatrix::quantize(&m, 8).unwrap();
        // 8-bit weights: 8 SLC columns or 4 MLC(2-b) columns per weight column.
        assert_eq!(q.cells_per_weight(1), 8);
        assert_eq!(q.cells_per_weight(2), 4);
        assert_eq!(q.cells_per_weight(3), 3);
    }

    #[test]
    fn vector_quantization_round_trips() {
        let v = vec![0.1f32, -0.7, 0.33, 0.0];
        let (q, scale) = quantize_vector(&v, 8).unwrap();
        for (orig, qv) in v.iter().zip(q.iter()) {
            assert!((orig - *qv as f32 * scale).abs() <= scale);
        }
        assert!(quantize_vector(&v, 1).is_err());
    }

    #[test]
    fn unsigned_bits_lsb_first() {
        assert_eq!(unsigned_bits(0b1011, 4), vec![1, 1, 0, 1]);
        assert_eq!(unsigned_bits(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn dequantize_preserves_shape() {
        let m = Matrix::zeros(3, 7);
        let q = QuantizedMatrix::quantize_int8(&m).unwrap();
        assert_eq!(q.dequantize().shape(), (3, 7));
    }
}
