//! Blocked/tiled dense kernels shared by the whole numeric stack.
//!
//! [`Matrix::matmul`], [`Matrix::matmul_transpose`], and [`Matrix::matvec`]
//! route through this module, so the transformer layers, the factored-SVD
//! layers, and the trainer all run on the same cache-blocked inner loops.
//! The randomized SVD's sketch products and the fused rank-k
//! [`crate::svd::Svd::reconstruct`] live here too.
//!
//! **Bit-identity contract.** Every kernel in this module produces output
//! that is bit-identical to the naive reference loop it replaces: blocking
//! only reorders *which output element is worked on next*, never the order
//! in which contributions are accumulated into a given element (always
//! ascending inner index `k`, with the same skip-on-zero shortcuts). The
//! pooled variants assign each output row to exactly one job, so they are
//! also bit-identical for every worker count. `tests/property_invariants.rs`
//! enforces kernel-vs-naive equivalence exactly, not within a tolerance.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::Result;
use hyflex_parallel::JobPool;

/// Row-block (`i`) tile: output rows worked on together.
const BLOCK_ROWS: usize = 32;
/// Inner-dimension (`k`) tile: rows of `b` kept hot across a row block.
const BLOCK_INNER: usize = 64;
/// Column (`j`) tile: bounds the `b`-block working set to
/// `BLOCK_INNER × BLOCK_COLS` floats (~128 KiB), which fits mid-level cache.
const BLOCK_COLS: usize = 512;

/// Blocked matrix multiplication `a * b`.
///
/// Bit-identical to the textbook `ikj` loop with the `a == 0.0` skip: for
/// every output element the contributions arrive in ascending `k` order.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_rows_into(a, b, 0, a.rows(), out.as_mut_slice());
    Ok(out)
}

/// Blocked matrix multiplication with output rows split across `pool`.
///
/// Each job owns a disjoint band of output rows, so the result is
/// bit-identical to [`matmul`] for every worker count.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn matmul_pooled(a: &Matrix, b: &Matrix, pool: &JobPool) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = a.rows();
    let n = b.cols();
    if pool.workers() == 1 || m < 2 * BLOCK_ROWS {
        return matmul(a, b);
    }
    let bands: Vec<(usize, usize)> = (0..m)
        .step_by(BLOCK_ROWS)
        .map(|row0| (row0, (row0 + BLOCK_ROWS).min(m)))
        .collect();
    let band_data = pool.par_map(&bands, |&(row0, row1)| {
        let mut band = vec![0.0f32; (row1 - row0) * n];
        matmul_rows_into(a, b, row0, row1, &mut band);
        band
    });
    let mut data = Vec::with_capacity(m * n);
    for band in band_data {
        data.extend_from_slice(&band);
    }
    Matrix::from_vec(m, n, data)
}

/// Computes output rows `[row0, row1)` of `a * b` into `out` (a buffer of
/// exactly `(row1 - row0) * b.cols()` zeros).
fn matmul_rows_into(a: &Matrix, b: &Matrix, row0: usize, row1: usize, out: &mut [f32]) {
    let inner = a.cols();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for col0 in (0..n).step_by(BLOCK_COLS) {
        let col1 = (col0 + BLOCK_COLS).min(n);
        for k0 in (0..inner).step_by(BLOCK_INNER) {
            let k1 = (k0 + BLOCK_INNER).min(inner);
            for i0 in (row0..row1).step_by(BLOCK_ROWS) {
                let i1 = (i0 + BLOCK_ROWS).min(row1);
                for i in i0..i1 {
                    let a_row = &a_data[i * inner..(i + 1) * inner];
                    let out_row = &mut out[(i - row0) * n + col0..(i - row0) * n + col1];
                    for (k, &aik) in a_row.iter().enumerate().take(k1).skip(k0) {
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[k * n + col0..k * n + col1];
                        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Blocked matrix multiplication with the transpose of `b`: `a * bᵀ`.
///
/// Bit-identical to the naive row-dot-row loop: each output element is a
/// single dot product accumulated in ascending `k` order.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `a.cols() != b.cols()`.
pub fn matmul_transpose(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = a.rows();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    let out_data = out.as_mut_slice();
    for i0 in (0..m).step_by(BLOCK_ROWS) {
        let i1 = (i0 + BLOCK_ROWS).min(m);
        for j0 in (0..n).step_by(BLOCK_ROWS) {
            let j1 = (j0 + BLOCK_ROWS).min(n);
            for i in i0..i1 {
                let lhs_row = a.row(i);
                for j in j0..j1 {
                    let rhs_row = b.row(j);
                    let mut acc = 0.0f32;
                    for (x, y) in lhs_row.iter().zip(rhs_row.iter()) {
                        acc += x * y;
                    }
                    out_data[i * n + j] = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Matrix–vector product `a * v` (row dot products, ascending `k`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `v.len() != a.cols()`.
pub fn matvec(a: &Matrix, v: &[f32]) -> Result<Vec<f32>> {
    if v.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (v.len(), 1),
        });
    }
    let mut out = vec![0.0f32; a.rows()];
    for (r, out_val) in out.iter_mut().enumerate() {
        let row = a.row(r);
        let mut acc = 0.0f32;
        for (x, y) in row.iter().zip(v.iter()) {
            acc += x * y;
        }
        *out_val = acc;
    }
    Ok(out)
}

/// Fused rank-k reconstruction `U · diag(σ) · Vᵀ`.
///
/// Replaces the rank-1-update triple loop (`k` outer, strided column writes
/// into the output) with a row-major sweep: one pass per output row, each
/// rank contributing an AXPY over the contiguous `Vᵀ` row. Per output
/// element the contributions still arrive in ascending `k` order with the
/// same `σ == 0` / `u·σ == 0` skips, so the result is bit-identical to the
/// old loop.
///
/// # Panics
///
/// Panics if `sigmas.len()` exceeds the factor ranks (callers pass factors
/// produced together by the SVD, which are consistent by construction).
pub fn reconstruct_rank_k(u: &Matrix, sigmas: &[f32], vt: &Matrix) -> Matrix {
    assert!(
        sigmas.len() <= u.cols() && sigmas.len() <= vt.rows(),
        "rank exceeds factor dimensions"
    );
    let m = u.rows();
    let n = vt.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let u_row = u.row(i);
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (k, &sigma) in sigmas.iter().enumerate() {
            if sigma == 0.0 {
                continue;
            }
            let ui = u_row[k] * sigma;
            if ui == 0.0 {
                continue;
            }
            let vt_row = &vt.as_slice()[k * n..(k + 1) * n];
            for (o, &v) in out_row.iter_mut().zip(vt_row.iter()) {
                *o += ui * v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// The pre-kernel `ikj` reference loop, kept verbatim as the bit-identity
    /// oracle.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let n = b.cols();
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let aik = a.at(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = out.at(i, j) + aik * b.at(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive_across_shapes() {
        for (m, k, n, seed) in [
            (1, 1, 1, 1u64),
            (3, 5, 7, 2),
            (33, 65, 130, 3),
            (64, 70, 513, 4),
        ] {
            let a = random(m, k, seed);
            let b = random(k, n, seed + 100);
            let blocked = matmul(&a, &b).unwrap();
            let naive = naive_matmul(&a, &b);
            assert_eq!(blocked.as_slice(), naive.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn pooled_matmul_is_bit_identical_for_every_worker_count() {
        let a = random(130, 40, 5);
        let b = random(40, 70, 6);
        let serial = matmul(&a, &b).unwrap();
        for workers in [1, 2, 3, 8] {
            let pooled = matmul_pooled(&a, &b, &JobPool::new(workers)).unwrap();
            assert_eq!(pooled.as_slice(), serial.as_slice(), "workers={workers}");
        }
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose_bitwise() {
        let a = random(37, 50, 7);
        let b = random(41, 50, 8);
        let fast = matmul_transpose(&a, &b).unwrap();
        // The naive oracle: independent row-dot-row accumulation.
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for (x, y) in a.row(i).iter().zip(b.row(j).iter()) {
                    acc += x * y;
                }
                assert_eq!(fast.at(i, j).to_bits(), acc.to_bits());
            }
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = random(3, 4, 9);
        let b = random(3, 4, 10);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_pooled(&a, &b, &JobPool::serial()).is_err());
        let c = random(3, 5, 11);
        assert!(matmul_transpose(&a, &c).is_err());
        assert!(matvec(&a, &[0.0; 3]).is_err());
    }

    #[test]
    fn reconstruct_matches_rank_one_update_reference() {
        let u = random(12, 5, 12);
        let vt = random(5, 9, 13);
        let sigmas = [3.0f32, 2.0, 0.0, 0.5, 0.25];
        // Reference: the old k-outer rank-1-update loop.
        let mut reference = Matrix::zeros(12, 9);
        for (k, &sigma) in sigmas.iter().enumerate() {
            if sigma == 0.0 {
                continue;
            }
            for i in 0..12 {
                let ui = u.at(i, k) * sigma;
                if ui == 0.0 {
                    continue;
                }
                for j in 0..9 {
                    let v = reference.at(i, j) + ui * vt.at(k, j);
                    reference.set(i, j, v);
                }
            }
        }
        let fused = reconstruct_rank_k(&u, &sigmas, &vt);
        assert_eq!(fused.as_slice(), reference.as_slice());
    }
}
