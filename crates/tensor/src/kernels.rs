//! Blocked/tiled dense kernels shared by the whole numeric stack.
//!
//! [`Matrix::matmul`], [`Matrix::matmul_transpose`], and [`Matrix::matvec`]
//! route through this module, so the transformer layers, the factored-SVD
//! layers, and the trainer all run on the same cache-blocked inner loops.
//! The randomized SVD's sketch products and the fused rank-k
//! [`crate::svd::Svd::reconstruct`] live here too.
//!
//! **Bit-identity contract.** Every kernel in this module produces output
//! that is bit-identical to the naive reference loop it replaces: blocking
//! and panel packing only reorder *memory* — which output element is worked
//! on next and where the operands sit — never the order in which
//! contributions are accumulated into a given element (always ascending
//! inner index `k`, with the same skip-on-zero shortcuts). The pooled
//! variants assign each output row to exactly one job, so they are also
//! bit-identical for every worker count. `tests/property_invariants.rs`
//! enforces kernel-vs-naive equivalence exactly, not within a tolerance.
//!
//! **The packed panel layer.** [`matmul`] copies each `BLOCK_INNER ×
//! BLOCK_COLS` tile of `b` once into a contiguous, lane-stride-aligned
//! panel buffer and runs [`packed_micro_kernel`] — a register-blocked
//! (`MR` output rows × `LANES` columns) kernel — over it; the panel is
//! then reused by every row block of `a`. [`matmul_transpose`] packs the
//! rows of `b` into `NR`-interleaved dot panels, [`matmul_transpose_left`]
//! computes `aᵀ · b` without materializing the transpose (the randomized
//! SVD's sketch projections ride on it), and [`matvec`] register-blocks
//! `MR` rows over the shared input vector, which is its own panel already.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::Result;
use hyflex_parallel::JobPool;

/// Row-block (`i`) tile: output rows worked on together.
const BLOCK_ROWS: usize = 32;
/// Inner-dimension (`k`) tile: rows of `b` kept hot across a row block.
const BLOCK_INNER: usize = 64;
/// Column (`j`) tile: bounds the `b`-block working set to
/// `BLOCK_INNER × BLOCK_COLS` floats (~128 KiB), which fits mid-level cache.
const BLOCK_COLS: usize = 512;
/// `f32` lanes per vector step of the micro-kernels. Eight lanes is one
/// AVX2 register (or two NEON registers); packed panel rows are padded to a
/// multiple of this so every full-chunk load has the same lane phase, which
/// is what lets the autovectorizer emit aligned-width FMA loops.
const LANES: usize = 8;
/// Output rows register-blocked together by [`packed_micro_kernel`]: each
/// packed panel row loaded from cache feeds `MR` independent accumulator
/// rows before the next `k` step.
const MR: usize = 4;
/// `b` rows interleaved per packed dot panel in [`matmul_transpose`].
const NR: usize = 4;

/// Blocked matrix multiplication `a * b`.
///
/// Bit-identical to the textbook `ikj` loop with the `a == 0.0` skip: for
/// every output element the contributions arrive in ascending `k` order.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_rows_into(a, b, 0, a.rows(), out.as_mut_slice());
    Ok(out)
}

/// Blocked matrix multiplication with output rows split across `pool`.
///
/// Each job owns a disjoint band of output rows, so the result is
/// bit-identical to [`matmul`] for every worker count.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn matmul_pooled(a: &Matrix, b: &Matrix, pool: &JobPool) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = a.rows();
    let n = b.cols();
    if pool.workers() == 1 || m < 2 * BLOCK_ROWS {
        return matmul(a, b);
    }
    let bands: Vec<(usize, usize)> = (0..m)
        .step_by(BLOCK_ROWS)
        .map(|row0| (row0, (row0 + BLOCK_ROWS).min(m)))
        .collect();
    let band_data = pool.par_map(&bands, |&(row0, row1)| {
        let mut band = vec![0.0f32; (row1 - row0) * n];
        matmul_rows_into(a, b, row0, row1, &mut band);
        band
    });
    let mut data = Vec::with_capacity(m * n);
    for band in band_data {
        data.extend_from_slice(&band);
    }
    Matrix::from_vec(m, n, data)
}

/// A contiguous, lane-stride-aligned copy of one `b` tile: rows `k0..k1`,
/// columns `col0..col0 + width`, each packed row starting at a multiple of
/// `stride` (`width` rounded up to [`LANES`]).
struct PackedPanel<'p> {
    data: &'p [f32],
    stride: usize,
    width: usize,
    k0: usize,
    k1: usize,
    col0: usize,
}

/// The output band a micro-kernel writes into: rows `row0..` of the full
/// product, `n` columns wide.
struct OutBand<'o> {
    data: &'o mut [f32],
    n: usize,
    row0: usize,
}

/// Copies the `b` tile (`k0..k1` × `col0..col0 + width`) into `packed` with
/// row stride `stride`. Pad lanes past `width` are never read, so they are
/// left as-is.
fn pack_panel(
    b_data: &[f32],
    n: usize,
    (k0, k1): (usize, usize),
    col0: usize,
    width: usize,
    stride: usize,
    packed: &mut [f32],
) {
    for (kk, k) in (k0..k1).enumerate() {
        let src = &b_data[k * n + col0..k * n + col0 + width];
        packed[kk * stride..kk * stride + width].copy_from_slice(src);
    }
}

/// The register-blocked micro-kernel: accumulates the `[k0, k1)` slab of the
/// product into output rows `i..i + h` (`h ≤ MR`), reading `b` through a
/// [`PackedPanel`].
///
/// **Why packing preserves the bit-identity contract.** Floating-point
/// addition is not associative, so the contract demands that every output
/// element receives its contributions in exactly the reference order:
/// ascending `k`, skipping `a[i][k] == 0.0` terms. This kernel changes three
/// things relative to the unpacked loop, and none of them touch that order:
///
/// 1. *Packing* copies the `b` tile into a contiguous panel — a pure memory
///    relocation; the values multiplied are bit-for-bit the same.
/// 2. *Register blocking* keeps `MR` output rows' accumulators live at
///    once. Each output row's accumulation chain is independent of the
///    others, so interleaving rows reorders nothing within any chain.
/// 3. *Load–accumulate–store*: each `LANES`-wide accumulator is initialised
///    **from the output buffer** (carrying the sum accumulated by earlier
///    `k` slabs), extended in ascending `k` with the same zero skips, and
///    stored back. `(…(out + x₁) + x₂)…` evaluated in registers is the same
///    chain the unpacked loop builds through memory, bit for bit. A fresh
///    `acc = 0.0` summed and added at the end would *not* be — that
///    re-association is exactly what the contract forbids.
///
/// Columns are walked in `LANES`-exact chunks (the vectorized body) with a
/// scalar tail, never by zero-padding the output, so remainder columns also
/// keep the reference chain.
fn packed_micro_kernel(
    a_data: &[f32],
    inner: usize,
    i: usize,
    h: usize,
    panel: &PackedPanel<'_>,
    out: &mut OutBand<'_>,
) {
    let chunks = panel.width / LANES;
    for c in 0..chunks {
        let jo = c * LANES;
        let mut acc = [[0.0f32; LANES]; MR];
        for (r, acc_row) in acc.iter_mut().take(h).enumerate() {
            let base = (i + r - out.row0) * out.n + panel.col0 + jo;
            acc_row.copy_from_slice(&out.data[base..base + LANES]);
        }
        for k in panel.k0..panel.k1 {
            let prow = &panel.data[(k - panel.k0) * panel.stride + jo..][..LANES];
            for (r, acc_row) in acc.iter_mut().take(h).enumerate() {
                let aik = a_data[(i + r) * inner + k];
                if aik == 0.0 {
                    continue;
                }
                for (accv, &pv) in acc_row.iter_mut().zip(prow.iter()) {
                    *accv += aik * pv;
                }
            }
        }
        for (r, acc_row) in acc.iter().take(h).enumerate() {
            let base = (i + r - out.row0) * out.n + panel.col0 + jo;
            out.data[base..base + LANES].copy_from_slice(acc_row);
        }
    }
    for j in (chunks * LANES)..panel.width {
        for r in 0..h {
            let base = (i + r - out.row0) * out.n + panel.col0 + j;
            let mut accv = out.data[base];
            for k in panel.k0..panel.k1 {
                let aik = a_data[(i + r) * inner + k];
                if aik == 0.0 {
                    continue;
                }
                accv += aik * panel.data[(k - panel.k0) * panel.stride + j];
            }
            out.data[base] = accv;
        }
    }
}

/// Computes output rows `[row0, row1)` of `a * b` into `out` (a buffer of
/// exactly `(row1 - row0) * b.cols()` zeros) via the packed panel layer:
/// each `b` tile is packed once and reused by every row block.
fn matmul_rows_into(a: &Matrix, b: &Matrix, row0: usize, row1: usize, out: &mut [f32]) {
    let inner = a.cols();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // Sized to the *actual* largest tile, not the BLOCK_* maxima: small
    // matmuls (the layer forward/backward hot path) must not pay a fixed
    // 128 KiB zeroed allocation per call.
    let mut packed =
        vec![0.0f32; BLOCK_INNER.min(inner) * BLOCK_COLS.min(n).next_multiple_of(LANES)];
    let mut band = OutBand { data: out, n, row0 };
    for col0 in (0..n).step_by(BLOCK_COLS) {
        let col1 = (col0 + BLOCK_COLS).min(n);
        let width = col1 - col0;
        let stride = width.next_multiple_of(LANES);
        for k0 in (0..inner).step_by(BLOCK_INNER) {
            let k1 = (k0 + BLOCK_INNER).min(inner);
            pack_panel(b_data, n, (k0, k1), col0, width, stride, &mut packed);
            let panel = PackedPanel {
                data: &packed,
                stride,
                width,
                k0,
                k1,
                col0,
            };
            for i0 in (row0..row1).step_by(BLOCK_ROWS) {
                let i1 = (i0 + BLOCK_ROWS).min(row1);
                let mut i = i0;
                while i < i1 {
                    let h = MR.min(i1 - i);
                    packed_micro_kernel(a_data, inner, i, h, &panel, &mut band);
                    i += h;
                }
            }
        }
    }
}

/// Blocked matrix multiplication with the transpose of `b`: `a * bᵀ`.
///
/// Bit-identical to the naive row-dot-row loop: each output element is a
/// single dot product accumulated in ascending `k` order.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `a.cols() != b.cols()`.
pub fn matmul_transpose(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = a.rows();
    let n = b.rows();
    let inner = a.cols();
    let mut out = Matrix::zeros(m, n);
    let out_data = out.as_mut_slice();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // Pack every group of NR `b` rows once into a k-major interleaved dot
    // panel: panel[k * NR + jj] = b[j0 + jj][k]. Walking k then reads the
    // panel strictly sequentially while feeding NR accumulators. Short tail
    // groups are zero-padded for a uniform stride; pad accumulators are
    // computed but never stored. This is a memory relocation only — each
    // stored dot product still accumulates every k in ascending order (no
    // zero skip, matching the reference), so bit-identity holds.
    let groups = n.div_ceil(NR);
    let mut packed = vec![0.0f32; groups * NR * inner];
    for j in 0..n {
        let base = (j / NR) * NR * inner + (j % NR);
        for (k, &v) in b_data[j * inner..(j + 1) * inner].iter().enumerate() {
            packed[base + k * NR] = v;
        }
    }
    for i0 in (0..m).step_by(BLOCK_ROWS) {
        let i1 = (i0 + BLOCK_ROWS).min(m);
        for g in 0..groups {
            let j0 = g * NR;
            let gh = NR.min(n - j0);
            let panel = &packed[g * NR * inner..(g + 1) * NR * inner];
            for i in i0..i1 {
                let a_row = &a_data[i * inner..(i + 1) * inner];
                let mut acc = [0.0f32; NR];
                for (k, &av) in a_row.iter().enumerate() {
                    let pk = &panel[k * NR..k * NR + NR];
                    for (accv, &pv) in acc.iter_mut().zip(pk.iter()) {
                        *accv += av * pv;
                    }
                }
                let dst = &mut out_data[i * n + j0..i * n + j0 + gh];
                dst.copy_from_slice(&acc[..gh]);
            }
        }
    }
    Ok(out)
}

/// Blocked matrix multiplication with the transpose of `a`: `aᵀ * b`,
/// computed without materializing the transpose.
///
/// Element `(i, j)` is `Σₖ a[k][i] · b[k][j]` accumulated in ascending `k`
/// with the `a[k][i] == 0.0` skip — exactly the chain
/// `a.transpose().matmul(b)` builds (the skip tests the same element the
/// transposed matmul would), so the result is bit-identical to that
/// two-step form while reading both operands through their contiguous
/// rows. The randomized SVD's sketch projection (`qᵀ · w`) runs on this.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `a.rows() != b.rows()`.
pub fn matmul_transpose_left(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose_left",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = a.cols();
    let n = b.cols();
    let inner = a.rows();
    let mut out = Matrix::zeros(m, n);
    let out_data = out.as_mut_slice();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // k-outer sweep: each a row contributes one rank-1 update slab. The
    // output (m × n, both ≤ the sketch width on the SVD path) stays hot;
    // per output element the contributions arrive in ascending k.
    for k in 0..inner {
        let a_row = &a_data[k * m..(k + 1) * m];
        let b_row = &b_data[k * n..(k + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let out_row = &mut out_data[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aki * bv;
            }
        }
    }
    Ok(out)
}

/// Matrix–vector product `a * v` (row dot products, ascending `k`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `v.len() != a.cols()`.
pub fn matvec(a: &Matrix, v: &[f32]) -> Result<Vec<f32>> {
    if v.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (v.len(), 1),
        });
    }
    let m = a.rows();
    let inner = a.cols();
    let a_data = a.as_slice();
    let mut out = vec![0.0f32; m];
    // Register-block MR output rows per pass: the input vector — already a
    // contiguous panel — is read once while feeding MR accumulators. Each
    // dot product still accumulates every k in ascending order (no zero
    // skip, matching the reference), so bit-identity holds.
    let mut i = 0;
    while i < m {
        let h = MR.min(m - i);
        let empty: &[f32] = &[];
        let mut rows = [empty; MR];
        for (r, row) in rows.iter_mut().take(h).enumerate() {
            *row = &a_data[(i + r) * inner..(i + r + 1) * inner];
        }
        let mut acc = [0.0f32; MR];
        for (k, &vk) in v.iter().enumerate() {
            for (accv, row) in acc.iter_mut().zip(rows.iter()).take(h) {
                *accv += row[k] * vk;
            }
        }
        out[i..i + h].copy_from_slice(&acc[..h]);
        i += h;
    }
    Ok(out)
}

/// Fused rank-k reconstruction `U · diag(σ) · Vᵀ`.
///
/// Replaces the rank-1-update triple loop (`k` outer, strided column writes
/// into the output) with a row-major sweep: one pass per output row, each
/// rank contributing an AXPY over the contiguous `Vᵀ` row. Per output
/// element the contributions still arrive in ascending `k` order with the
/// same `σ == 0` / `u·σ == 0` skips, so the result is bit-identical to the
/// old loop.
///
/// # Panics
///
/// Panics if `sigmas.len()` exceeds the factor ranks (callers pass factors
/// produced together by the SVD, which are consistent by construction).
pub fn reconstruct_rank_k(u: &Matrix, sigmas: &[f32], vt: &Matrix) -> Matrix {
    assert!(
        sigmas.len() <= u.cols() && sigmas.len() <= vt.rows(),
        "rank exceeds factor dimensions"
    );
    let m = u.rows();
    let n = vt.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let u_row = u.row(i);
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (k, &sigma) in sigmas.iter().enumerate() {
            if sigma == 0.0 {
                continue;
            }
            let ui = u_row[k] * sigma;
            if ui == 0.0 {
                continue;
            }
            let vt_row = &vt.as_slice()[k * n..(k + 1) * n];
            for (o, &v) in out_row.iter_mut().zip(vt_row.iter()) {
                *o += ui * v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// The pre-kernel `ikj` reference loop, kept verbatim as the bit-identity
    /// oracle.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let n = b.cols();
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let aik = a.at(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = out.at(i, j) + aik * b.at(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive_across_shapes() {
        for (m, k, n, seed) in [
            (1, 1, 1, 1u64),
            (3, 5, 7, 2),
            (33, 65, 130, 3),
            (64, 70, 513, 4),
        ] {
            let a = random(m, k, seed);
            let b = random(k, n, seed + 100);
            let blocked = matmul(&a, &b).unwrap();
            let naive = naive_matmul(&a, &b);
            assert_eq!(blocked.as_slice(), naive.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn pooled_matmul_is_bit_identical_for_every_worker_count() {
        let a = random(130, 40, 5);
        let b = random(40, 70, 6);
        let serial = matmul(&a, &b).unwrap();
        for workers in [1, 2, 3, 8] {
            let pooled = matmul_pooled(&a, &b, &JobPool::new(workers)).unwrap();
            assert_eq!(pooled.as_slice(), serial.as_slice(), "workers={workers}");
        }
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose_bitwise() {
        let a = random(37, 50, 7);
        let b = random(41, 50, 8);
        let fast = matmul_transpose(&a, &b).unwrap();
        // The naive oracle: independent row-dot-row accumulation.
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for (x, y) in a.row(i).iter().zip(b.row(j).iter()) {
                    acc += x * y;
                }
                assert_eq!(fast.at(i, j).to_bits(), acc.to_bits());
            }
        }
    }

    #[test]
    fn matmul_transpose_left_matches_explicit_transpose_bitwise() {
        for (rows, cols_a, cols_b, seed) in [(5, 3, 4, 20u64), (50, 37, 41, 21), (64, 9, 130, 22)] {
            let a = random(rows, cols_a, seed);
            let b = random(rows, cols_b, seed + 100);
            let fused = matmul_transpose_left(&a, &b).unwrap();
            let two_step = matmul(&a.transpose(), &b).unwrap();
            assert_eq!(fused.as_slice(), two_step.as_slice(), "{rows}x{cols_a}");
        }
    }

    #[test]
    fn matvec_matches_naive_row_dots_bitwise() {
        for (m, k, seed) in [(1, 1, 30u64), (7, 13, 31), (130, 65, 32)] {
            let a = random(m, k, seed);
            let v: Vec<f32> = random(1, k, seed + 100).as_slice().to_vec();
            let fast = matvec(&a, &v).unwrap();
            for (r, &got) in fast.iter().enumerate() {
                let mut acc = 0.0f32;
                for (x, y) in a.row(r).iter().zip(v.iter()) {
                    acc += x * y;
                }
                assert_eq!(got.to_bits(), acc.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn packed_matmul_preserves_zero_skip_nan_semantics() {
        // 0 × inf would be NaN without the skip; the packed kernel must
        // keep the reference's skip behaviour exactly.
        let mut a = Matrix::zeros(2, 3);
        a.set(0, 1, 2.0);
        a.set(1, 0, 1.0);
        let mut b = Matrix::zeros(3, 2);
        b.set(0, 0, f32::INFINITY);
        b.set(1, 1, 4.0);
        b.set(2, 0, f32::NAN);
        let got = matmul(&a, &b).unwrap();
        let naive = naive_matmul(&a, &b);
        assert_eq!(
            got.as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            naive
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = random(3, 4, 9);
        let b = random(3, 4, 10);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_pooled(&a, &b, &JobPool::serial()).is_err());
        let c = random(3, 5, 11);
        assert!(matmul_transpose(&a, &c).is_err());
        assert!(matmul_transpose_left(&a, &random(4, 2, 14)).is_err());
        assert!(matvec(&a, &[0.0; 3]).is_err());
    }

    #[test]
    fn reconstruct_matches_rank_one_update_reference() {
        let u = random(12, 5, 12);
        let vt = random(5, 9, 13);
        let sigmas = [3.0f32, 2.0, 0.0, 0.5, 0.25];
        // Reference: the old k-outer rank-1-update loop.
        let mut reference = Matrix::zeros(12, 9);
        for (k, &sigma) in sigmas.iter().enumerate() {
            if sigma == 0.0 {
                continue;
            }
            for i in 0..12 {
                let ui = u.at(i, k) * sigma;
                if ui == 0.0 {
                    continue;
                }
                for j in 0..9 {
                    let v = reference.at(i, j) + ui * vt.at(k, j);
                    reference.set(i, j, v);
                }
            }
        }
        let fused = reconstruct_rank_k(&u, &sigmas, &vt);
        assert_eq!(fused.as_slice(), reference.as_slice());
    }
}
