//! Descriptive statistics and evaluation metrics.
//!
//! The paper reports accuracy for most GLUE tasks, Matthews correlation for
//! CoLA, Pearson correlation for STS-B, and loss/perplexity for the decoder
//! models. All of those metrics are implemented here so the benchmark
//! harness can print the same kinds of rows.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|x| *x as f64).sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for an empty slice.
pub fn variance(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (*x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0 when either input is constant or the slices are empty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal-length inputs");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0f64;
    let mut var_x = 0.0f64;
    let mut var_y = 0.0f64;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = *x as f64 - mx;
        let dy = *y as f64 - my;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from predicted and true binary labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "confusion matrix requires equal-length inputs"
        );
        let mut cm = ConfusionMatrix::default();
        for (&p, &a) in predicted.iter().zip(actual.iter()) {
            match (p, a) {
                (true, true) => cm.tp += 1,
                (false, false) => cm.tn += 1,
                (true, false) => cm.fp += 1,
                (false, true) => cm.fn_ += 1,
            }
        }
        cm
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Classification accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Matthews correlation coefficient (the CoLA metric).
    ///
    /// Returns 0 when any marginal is zero (the conventional definition).
    pub fn matthews_correlation(&self) -> f64 {
        let tp = self.tp as f64;
        let tn = self.tn as f64;
        let fp = self.fp as f64;
        let fn_ = self.fn_ as f64;
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            return 0.0;
        }
        (tp * tn - fp * fn_) / denom
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let precision_denom = (self.tp + self.fp) as f64;
        let recall_denom = (self.tp + self.fn_) as f64;
        if precision_denom == 0.0 || recall_denom == 0.0 {
            return 0.0;
        }
        let precision = self.tp as f64 / precision_denom;
        let recall = self.tp as f64 / recall_denom;
        if precision + recall == 0.0 {
            return 0.0;
        }
        2.0 * precision * recall / (precision + recall)
    }
}

/// Multi-class classification accuracy from predicted and true class indices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "accuracy requires equal-length inputs"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let correct = predicted
        .iter()
        .zip(actual.iter())
        .filter(|(p, a)| p == a)
        .count();
    correct as f64 / predicted.len() as f64
}

/// Perplexity from a mean cross-entropy (natural-log) loss.
pub fn perplexity(mean_loss: f64) -> f64 {
    mean_loss.exp()
}

/// Geometric mean of a set of positive values (used for the paper's G-AVG
/// column across GLUE tasks). Returns 0 if any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Index of the maximum element (first occurrence). Returns 0 for empty input.
pub fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Returns the indices of the `k` largest values in descending order.
pub fn top_k_indices(xs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[b]
            .partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k.min(xs.len()));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-9);
        assert!((variance(&xs) - 4.0).abs() < 1e-9);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-9);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse_correlation() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let ys = [2.0f32, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-9);
        let zs = [8.0f32, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_degenerate_inputs_return_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let cm = ConfusionMatrix::from_labels(&predicted, &actual);
        assert_eq!(cm.tp, 2);
        assert_eq!(cm.fp, 1);
        assert_eq!(cm.fn_, 1);
        assert_eq!(cm.tn, 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn matthews_correlation_perfect_prediction_is_one() {
        let labels = [true, false, true, false, true];
        let cm = ConfusionMatrix::from_labels(&labels, &labels);
        assert!((cm.matthews_correlation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matthews_correlation_inverted_prediction_is_minus_one() {
        let actual = [true, false, true, false];
        let predicted = [false, true, false, true];
        let cm = ConfusionMatrix::from_labels(&predicted, &actual);
        assert!((cm.matthews_correlation() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn matthews_correlation_degenerate_is_zero() {
        let cm = ConfusionMatrix::from_labels(&[true, true], &[true, true]);
        assert_eq!(cm.matthews_correlation(), 0.0);
    }

    #[test]
    fn f1_score_behaviour() {
        let cm = ConfusionMatrix {
            tp: 8,
            tn: 5,
            fp: 2,
            fn_: 1,
        };
        let f1 = cm.f1();
        assert!(f1 > 0.8 && f1 < 1.0);
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.f1(), 0.0);
    }

    #[test]
    fn multiclass_accuracy() {
        assert!((accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]) - 0.75).abs() < 1e-9);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perplexity_of_zero_loss_is_one() {
        assert!((perplexity(0.0) - 1.0).abs() < 1e-12);
        assert!(perplexity(2.0) > perplexity(1.0));
    }

    #[test]
    fn geometric_mean_behaviour() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn argmax_and_top_k() {
        let xs = [0.1f32, 0.9, 0.5, 0.7];
        assert_eq!(argmax(&xs), 1);
        assert_eq!(top_k_indices(&xs, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&xs, 10).len(), 4);
        assert_eq!(argmax(&[]), 0);
    }
}
