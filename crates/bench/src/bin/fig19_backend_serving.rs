//! Figure 19 (extension): cross-backend serving comparison at matched load.
//!
//! The first payoff of the unified `Backend` API: one serving workload
//! (BERT-Large, N = 128, Poisson arrivals, batch cap 16) driven across every
//! registered backend — HyFlexPIM and the four baselines — through the same
//! `BatchScheduler`/`ServingSim` machinery. The offered load is **matched**:
//! every backend is offered the same QPS, anchored to HyFlexPIM's
//! single-request service rate, so tail latency and sustained throughput are
//! directly comparable. Designs slower than the offered load saturate and
//! their percentiles explode — that is the comparison.
//!
//! Common flags: `--seed N`, `--out PATH`, `--backend NAME` (restrict the
//! table to one registered backend).

use hyflex_baselines::{BackendRegistry, SystemBuilder};
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_pim::backend::Backend;
use hyflex_runtime::{ServingConfig, ServingSim};
use hyflex_transformer::ModelConfig;

const SEQ_LEN: usize = 128;
const SLC_RATE: f64 = 0.05;
const NUM_REQUESTS: usize = 600;
const LOAD_FACTORS: [f64; 2] = [0.25, 1.0];

fn build(name: &str) -> Box<dyn Backend> {
    SystemBuilder::paper()
        .model(ModelConfig::bert_large())
        .slc_rate(SLC_RATE)
        .backend(name)
        .build()
        .expect("registered backend builds")
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    let registry = BackendRegistry::paper();
    let names: Vec<String> = match args.selected_backend_or_exit() {
        Some(name) => vec![name],
        None => registry
            .paper_figure_names()
            .iter()
            .map(|n| n.to_string())
            .collect(),
    };
    let seed = args.seed_or(19);

    // Matched load: every backend is offered the same QPS, anchored to the
    // HyFlexPIM single-request service rate.
    let anchor = build("hyflexpim")
        .evaluate_batched(SEQ_LEN, 1)
        .expect("anchor evaluation");
    let anchor_qps = 1e9 / anchor.makespan_ns;

    emitln!("Figure 19 — per-backend serving at matched load (extension)");
    emitln!(
        "BERT-Large, N = {SEQ_LEN}, {}% SLC (HyFlexPIM), {NUM_REQUESTS} Poisson arrivals, \
         batch cap 16, seed {seed}",
        (SLC_RATE * 100.0) as u32
    );
    emitln!(
        "anchor: HyFlexPIM single-request service rate = {:.0} QPS",
        anchor_qps
    );

    // Backend construction and the single-request latency are
    // load-independent; build once and share across the load tables.
    let backends: Vec<(std::sync::Arc<dyn Backend>, f64)> = names
        .iter()
        .map(|name| {
            let backend: std::sync::Arc<dyn Backend> = std::sync::Arc::from(build(name));
            let single_us = backend
                .evaluate_batched(SEQ_LEN, 1)
                .expect("single-request evaluation")
                .makespan_ns
                / 1e3;
            (backend, single_us)
        })
        .collect();

    for load in LOAD_FACTORS {
        emitln!(
            "\nOffered load: {:.0} QPS ({load}x anchor)",
            anchor_qps * load
        );
        print_row(
            "Backend",
            &[
                "single us".to_string(),
                "achieved".to_string(),
                "p50 ms".to_string(),
                "p95 ms".to_string(),
                "p99 ms".to_string(),
                "mean batch".to_string(),
                "util %".to_string(),
            ],
        );
        for (backend, single_us) in &backends {
            let label = backend.name().to_string();
            let config = ServingConfig {
                qps: anchor_qps * load,
                num_requests: NUM_REQUESTS,
                seq_len: SEQ_LEN,
                slc_rank_fraction: SLC_RATE,
                seed,
                ..ServingConfig::default()
            };
            let report = ServingSim::with_backend(std::sync::Arc::clone(backend), config)
                .expect("serving sim")
                .run()
                .expect("serving run");
            print_row(
                &label,
                &[
                    fmt(*single_us, 1),
                    fmt(report.achieved_qps, 0),
                    fmt(report.latency.p50_ms, 3),
                    fmt(report.latency.p95_ms, 3),
                    fmt(report.latency.p99_ms, 3),
                    fmt(report.mean_batch_size, 1),
                    fmt(report.device_utilization * 100.0, 1),
                ],
            );
        }
    }
}
