//! Table 1: fine-tuning hyper-parameters.

use hyflex_bench::{emitln, print_row, BinArgs};
use hyflex_pim::finetune::HyperParams;

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    args.require_hyflexpim("table1 lists the HyFlexPIM fine-tuning hyper-parameters");
    emitln!("Table 1 — fine-tuning hyper-parameters");
    print_row(
        "Model",
        &[
            "Batch".to_string(),
            "LR".to_string(),
            "Optimizer".to_string(),
        ],
    );
    for row in HyperParams::table1() {
        print_row(
            row.model,
            &[
                row.batch_size.to_string(),
                format!("{:.0e}", row.learning_rate),
                row.optimizer.to_string(),
            ],
        );
    }
}
