//! Figure 16: throughput (TOPS/mm²) speedup over ASADI† and SPRINT.
//!
//! Common flags: `--out PATH` (tee rows to a file), `--backend NAME`
//! (compare HyFlexPIM against one registered baseline instead of the
//! default ASADI† + SPRINT pair).

use hyflex_baselines::{Accelerator, BackendRegistry, HyFlexPimAccelerator};
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_transformer::ModelConfig;

const LENGTHS: [usize; 6] = [128, 512, 1024, 2048, 4096, 8192];
const SLC_RATES: [f64; 5] = [0.05, 0.10, 0.30, 0.40, 0.50];

fn versus(model: &ModelConfig, baseline: &dyn Accelerator, decimals: usize) {
    for &rate in &SLC_RATES {
        let hyflex = HyFlexPimAccelerator::new(rate);
        let speedups: Vec<String> = LENGTHS
            .iter()
            .map(|&n| {
                let ours = hyflex.tops_per_mm2(model, n).expect("tops");
                let theirs = baseline.tops_per_mm2(model, n).expect("tops");
                fmt(ours / theirs, decimals)
            })
            .collect();
        print_row(
            &format!("{}% SLC vs {}", (rate * 100.0) as u32, baseline.name()),
            &speedups,
        );
    }
}

fn sweep(title: &str, model: &ModelConfig, baselines: &[Box<dyn Accelerator>]) {
    emitln!("\n{title}: normalized TOPS/mm^2 of HyFlexPIM vs baselines");
    print_row(
        "SLC rate / N",
        &LENGTHS.iter().map(|n| format!("N={n}")).collect::<Vec<_>>(),
    );
    for (i, baseline) in baselines.iter().enumerate() {
        // Historical formatting: two decimals for the first (ASADI-class)
        // comparison, one for the wide-margin digital baselines.
        versus(model, baseline.as_ref(), if i == 0 { 2 } else { 1 });
    }
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    let registry = BackendRegistry::paper();
    // Default comparison set: ASADI-dagger and SPRINT (the paper's Figure
    // 16); --backend narrows it to a single registered design.
    // One SLC rate for every denominator accelerator (only HyFlexPIM reads
    // it; picking --backend hyflexpim thus normalizes against the 5% point).
    const BASELINE_SLC: f64 = 0.05;
    let baselines: Vec<Box<dyn Accelerator>> = match args.selected_backend_or_exit() {
        Some(name) => vec![registry
            .accelerator(&name, BASELINE_SLC)
            .expect("name validated")],
        None => vec![
            registry
                .accelerator("asadi-int8", BASELINE_SLC)
                .expect("registered"),
            registry
                .accelerator("sprint", BASELINE_SLC)
                .expect("registered"),
        ],
    };
    emitln!("Figure 16 — throughput speedup (TOPS/mm^2)");
    // (a) GLUE proxy: BERT-Large; (b) WikiText-2 proxy: GPT-2.
    sweep(
        "(a) GLUE / BERT-Large",
        &ModelConfig::bert_large(),
        &baselines,
    );
    sweep(
        "(b) WikiText-2 / GPT-2",
        &ModelConfig::gpt2_small(),
        &baselines,
    );
}
