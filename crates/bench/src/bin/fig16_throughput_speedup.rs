//! Figure 16: throughput (TOPS/mm²) speedup over ASADI† and SPRINT.
//!
//! Common flags: `--out PATH` (tee rows to a file).

use hyflex_baselines::{Accelerator, Asadi, AsadiPrecision, HyFlexPimAccelerator, Sprint};
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_transformer::ModelConfig;

fn sweep(title: &str, model: &ModelConfig) {
    let lengths = [128usize, 512, 1024, 2048, 4096, 8192];
    let slc_rates = [0.05, 0.10, 0.30, 0.40, 0.50];
    let asadi = Asadi::new(AsadiPrecision::Int8);
    let sprint = Sprint::new();
    emitln!("\n{title}: normalized TOPS/mm^2 of HyFlexPIM vs ASADI\u{2020} and SPRINT");
    print_row(
        "SLC rate / N",
        &lengths.iter().map(|n| format!("N={n}")).collect::<Vec<_>>(),
    );
    for &rate in &slc_rates {
        let hyflex = HyFlexPimAccelerator::new(rate);
        let vs_asadi: Vec<String> = lengths
            .iter()
            .map(|&n| {
                let ours = hyflex.tops_per_mm2(model, n).expect("tops");
                let theirs = asadi.tops_per_mm2(model, n).expect("tops");
                fmt(ours / theirs, 2)
            })
            .collect();
        print_row(
            &format!("{}% SLC vs ASADI\u{2020}", (rate * 100.0) as u32),
            &vs_asadi,
        );
    }
    for &rate in &slc_rates {
        let hyflex = HyFlexPimAccelerator::new(rate);
        let vs_sprint: Vec<String> = lengths
            .iter()
            .map(|&n| {
                let ours = hyflex.tops_per_mm2(model, n).expect("tops");
                let theirs = sprint.tops_per_mm2(model, n).expect("tops");
                fmt(ours / theirs, 1)
            })
            .collect();
        print_row(
            &format!("{}% SLC vs SPRINT", (rate * 100.0) as u32),
            &vs_sprint,
        );
    }
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    emitln!("Figure 16 — throughput speedup (TOPS/mm^2)");
    // (a) GLUE proxy: BERT-Large; (b) WikiText-2 proxy: GPT-2.
    sweep("(a) GLUE / BERT-Large", &ModelConfig::bert_large());
    sweep("(b) WikiText-2 / GPT-2", &ModelConfig::gpt2_small());
}
