//! Table 2: hardware configuration and component-level area/power.

use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_circuits::Table2;

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    args.require_hyflexpim("table2 lists the HyFlexPIM hardware configuration");
    let table = Table2::paper_65nm();
    for module in [&table.analog, &table.digital] {
        emitln!("{} (65 nm)", module.name);
        print_row(
            "Component",
            &[
                "Area (mm^2)".to_string(),
                "Power (mW)".to_string(),
                "Count".to_string(),
            ],
        );
        for c in &module.components {
            print_row(
                c.name,
                &[fmt(c.area_mm2, 4), fmt(c.power_mw, 2), c.count.to_string()],
            );
        }
        print_row(
            "Sum (per module)",
            &[
                fmt(module.module_area_mm2(), 3),
                fmt(module.module_power_mw(), 2),
                String::new(),
            ],
        );
        print_row(
            "Total",
            &[
                fmt(module.chip_area_mm2(), 2),
                fmt(module.chip_power_mw(), 2),
                module.modules_per_chip.to_string(),
            ],
        );
        emitln!();
    }
    emitln!(
        "Chip totals: {:.2} mm^2, {:.2} W",
        table.chip_area_mm2(),
        table.chip_power_mw() / 1000.0
    );
}
