//! Figure 15: end-to-end energy comparison and HyFlexPIM component breakdown.
//!
//! Common flags: `--out PATH`, `--backend NAME` (restrict the comparison
//! rows to one registered design).

use hyflex_baselines::{Accelerator, BackendRegistry, HyFlexPimAccelerator};
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_transformer::ModelConfig;

fn comparison(model: &ModelConfig, slc_rate: f64, selected: Option<&str>) {
    let lengths = [128usize, 512, 1024];
    emitln!(
        "\nEnd-to-end energy for {} (HyFlexPIM at {}% SLC), normalized to HyFlexPIM = 1.0",
        model.name,
        (slc_rate * 100.0) as u32
    );
    print_row(
        "Accelerator",
        &lengths.iter().map(|n| format!("N={n}")).collect::<Vec<_>>(),
    );
    let hyflex = HyFlexPimAccelerator::new(slc_rate);
    let reference: Vec<f64> = lengths
        .iter()
        .map(|&n| {
            hyflex
                .end_to_end_energy(model, n)
                .expect("energy")
                .total_pj()
        })
        .collect();
    let registry = BackendRegistry::paper();
    let accelerators: Vec<Box<dyn Accelerator>> = match selected {
        Some(name) => vec![registry
            .accelerator(name, slc_rate)
            .expect("name validated")],
        None => registry.paper_figure_accelerators(slc_rate),
    };
    for accelerator in accelerators {
        let values: Vec<String> = lengths
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let e = accelerator.end_to_end_energy(model, n).expect("energy");
                fmt(e.total_pj() / reference[i], 2)
            })
            .collect();
        print_row(accelerator.name(), &values);
    }
}

fn breakdown(model: &ModelConfig, slc_rate: f64) {
    emitln!(
        "\nHyFlexPIM component breakdown for {} at {}% SLC (% of total energy)",
        model.name,
        (slc_rate * 100.0) as u32
    );
    let lengths = [128usize, 512, 1024];
    let hyflex = HyFlexPimAccelerator::new(slc_rate);
    print_row(
        "Component",
        &lengths.iter().map(|n| format!("N={n}")).collect::<Vec<_>>(),
    );
    let breakdowns: Vec<_> = lengths
        .iter()
        .map(|&n| hyflex.end_to_end_energy(model, n).expect("energy"))
        .collect();
    let component_names: Vec<&'static str> =
        breakdowns[0].components().iter().map(|(n, _)| *n).collect();
    for name in component_names {
        let values: Vec<String> = breakdowns
            .iter()
            .map(|b| {
                let share = b
                    .shares()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, s)| s)
                    .unwrap_or(0.0);
                fmt(100.0 * share, 1)
            })
            .collect();
        print_row(name, &values);
    }
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    // --backend restricts the comparison rows; default shows every design.
    let selected = args.selected_backend_or_exit();
    emitln!("Figure 15 — end-to-end energy comparison and breakdown");
    // (a, b): BERT-Large at 5% SLC.
    let bert = ModelConfig::bert_large();
    comparison(&bert, 0.05, selected.as_deref());
    breakdown(&bert, 0.05);
    // (c, d): GPT-2 at 30% SLC.
    let gpt2 = ModelConfig::gpt2_small();
    comparison(&gpt2, 0.30, selected.as_deref());
    breakdown(&gpt2, 0.30);
}
