//! Figure 14: normalized linear-layer energy versus the baselines, across
//! sequence lengths and SLC protection rates.
//!
//! Common flags: `--out PATH`, `--backend NAME` (restrict the baseline rows
//! to one registered design).

use hyflex_baselines::{Accelerator, BackendRegistry, NonPim};
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_transformer::ModelConfig;

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    let registry = BackendRegistry::paper();
    // --backend restricts the comparison rows; default shows every design.
    let baselines: Vec<Box<dyn Accelerator>> = match args.selected_backend_or_exit() {
        Some(name) => vec![registry.accelerator(&name, 0.05).expect("name validated")],
        None => registry
            .paper_figure_accelerators(0.05)
            .into_iter()
            .skip(1)
            .collect(),
    };
    let model = ModelConfig::bert_large();
    let lengths = [128usize, 512, 1024, 2048, 4096, 8192];
    let slc_rates = [0.05, 0.10, 0.30, 0.40, 0.50];
    emitln!("Figure 14 — linear-layer energy, normalized to the non-PIM baseline (%)");
    emitln!("Model: {} (lower is better)", model.name);

    for &n in &lengths {
        emitln!("\nSequence length N = {n}");
        let reference = NonPim::new()
            .linear_layer_energy_pj(&model, n)
            .expect("baseline energy");
        print_row("Accelerator", &[format!("{:>12}", "norm. energy")]);
        for &rate in &slc_rates {
            let hyflex = registry.accelerator("hyflexpim", rate).expect("registered");
            let e = hyflex.linear_layer_energy_pj(&model, n).expect("energy");
            print_row(
                &format!("HyFlexPIM {}% SLC", (rate * 100.0) as u32),
                &[fmt(100.0 * e / reference, 1)],
            );
        }
        for accelerator in &baselines {
            let e = accelerator
                .linear_layer_energy_pj(&model, n)
                .expect("energy");
            print_row(accelerator.name(), &[fmt(100.0 * e / reference, 1)]);
        }
    }
}
