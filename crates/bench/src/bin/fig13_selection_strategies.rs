//! Figure 13: gradient-based vs rank-based vs magnitude-based SLC selection.
//!
//! Each strategy's rate × seed grid runs in parallel on the `hyflex-runtime`
//! worker pool; per-point seeding keeps results bit-identical to the serial
//! sweep. Common flags: `--threads N`, `--seed N`, `--out PATH`.

use hyflex_bench::{emitln, fmt, print_row, run_functional_experiment_with, BinArgs};
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator, SweepPoint};
use hyflex_pim::selection::SelectionStrategy;
use hyflex_rram::cell::CellMode;
use hyflex_runtime::par_noise_sweep;
use hyflex_tensor::SvdAlgorithm;
use hyflex_transformer::ModelConfig;
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

const RATES: [f64; 6] = [0.0, 0.05, 0.10, 0.30, 0.40, 0.50];
const SEEDS_PER_RATE: u64 = 3;

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    // SLC selection is a HyFlexPIM-mapping concern; reject other backends
    // (and unknown names) through the registry.
    args.require_hyflexpim("fig13 compares SLC selection strategies of the HyFlexPIM mapping");
    let pool = args.pool();
    let svd_algo = args.svd_algo_or_exit(SvdAlgorithm::Jacobi);
    emitln!(
        "Figure 13 — SLC selection strategy comparison (tiny encoder, {} workers)",
        pool.workers()
    );
    for (task, default_seed) in [(GlueTask::Mrpc, 31u64), (GlueTask::Cola, 32u64)] {
        let seed = args.seed_or(default_seed);
        let dataset = glue::generate(task, &GlueConfig::default(), seed);
        let experiment = run_functional_experiment_with(
            ModelConfig::tiny_encoder(2),
            dataset,
            4,
            2,
            seed,
            svd_algo,
        )
        .expect("experiment");
        let simulator = NoiseSimulator::paper_default();
        emitln!("\nTask: {} (metric: accuracy)", task.name());
        print_row(
            "Strategy",
            &RATES
                .iter()
                .map(|r| format!("{}%", (r * 100.0) as u32))
                .collect::<Vec<_>>(),
        );
        let mut means: Vec<(SelectionStrategy, f64)> = Vec::new();
        for strategy in SelectionStrategy::all() {
            let base = HybridMappingSpec {
                protection_rate: 0.0,
                strategy,
                mlc_mode: CellMode::MLC2,
                quantize_int8: true,
            };
            let points = SweepPoint::grid(&RATES, SEEDS_PER_RATE, seed * 1000);
            let outcomes = par_noise_sweep(
                &pool,
                &simulator,
                &experiment.model,
                &experiment.report.layer_profiles,
                &base,
                &experiment.dataset.eval,
                &points,
            )
            .expect("noise evaluation");
            let per_rate: Vec<f64> = outcomes
                .chunks(SEEDS_PER_RATE as usize)
                .map(|chunk| {
                    chunk.iter().map(|o| o.primary_metric).sum::<f64>() / chunk.len() as f64
                })
                .collect();
            let row: Vec<String> = per_rate.iter().map(|&m| fmt(m, 3)).collect();
            means.push((
                strategy,
                per_rate.iter().sum::<f64>() / per_rate.len() as f64,
            ));
            print_row(strategy.label(), &row);
        }
        let best = means
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        emitln!("best average strategy: {}", best.0.label());
    }
}
