//! Figure 13: gradient-based vs rank-based vs magnitude-based SLC selection.

use hyflex_bench::{fmt, print_row, run_functional_experiment};
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_pim::selection::SelectionStrategy;
use hyflex_rram::cell::CellMode;
use hyflex_transformer::ModelConfig;
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

const RATES: [f64; 6] = [0.0, 0.05, 0.10, 0.30, 0.40, 0.50];

fn main() {
    println!("Figure 13 — SLC selection strategy comparison (tiny encoder)");
    for (task, seed) in [(GlueTask::Mrpc, 31u64), (GlueTask::Cola, 32u64)] {
        let dataset = glue::generate(task, &GlueConfig::default(), seed);
        let experiment =
            run_functional_experiment(ModelConfig::tiny_encoder(2), dataset, 4, 2, seed)
                .expect("experiment");
        let simulator = NoiseSimulator::paper_default();
        println!("\nTask: {} (metric: accuracy)", task.name());
        print_row(
            "Strategy",
            &RATES
                .iter()
                .map(|r| format!("{}%", (r * 100.0) as u32))
                .collect::<Vec<_>>(),
        );
        let mut means: Vec<(SelectionStrategy, f64)> = Vec::new();
        for strategy in SelectionStrategy::all() {
            let mut row = Vec::new();
            let mut sum = 0.0;
            for &rate in &RATES {
                let mean = (0..3)
                    .map(|s| {
                        let spec = HybridMappingSpec {
                            protection_rate: rate,
                            strategy,
                            mlc_mode: CellMode::MLC2,
                            quantize_int8: true,
                        };
                        simulator
                            .evaluate(
                                &experiment.model,
                                &experiment.report.layer_profiles,
                                &spec,
                                &experiment.dataset.eval,
                                seed * 1000 + s,
                            )
                            .expect("noise evaluation")
                            .0
                            .metrics
                            .primary_value()
                    })
                    .sum::<f64>()
                    / 3.0;
                sum += mean;
                row.push(fmt(mean, 3));
            }
            means.push((strategy, sum / RATES.len() as f64));
            print_row(strategy.label(), &row);
        }
        let best = means
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!("best average strategy: {}", best.0.label());
    }
}
