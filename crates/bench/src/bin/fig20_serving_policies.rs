//! Figure 20 (extension): scheduling-policy comparison at matched overload.
//!
//! The serving stack's policy payoff: a heterogeneous request mix —
//! latency-critical "interactive" requests (N = 64, finite SLO, priority 0)
//! interleaved with throughput-oriented "batch" requests (N = 256, no SLO,
//! priority 1) — offered to every registered backend at a load slightly
//! above what the device sustains. Under that overload FCFS serves strictly
//! in arrival order, so interactive requests queue behind batch work and
//! blow their deadlines; EDF and strict priority reorder the queue and
//! recover SLO attainment at the cost of batch-request latency. Offered
//! load and SLOs are **matched per backend** (anchored to each design's own
//! batched service rate), so the policy effect is comparable across
//! designs.
//!
//! Common flags: `--seed N`, `--out PATH`, `--backend NAME|all` (restrict
//! the table to one registered backend), `--chips N` and
//! `--dispatch rr|jsq` (run each policy on an N-chip cluster; the offered
//! load scales with the fleet).

use hyflex_baselines::{BackendRegistry, SystemBuilder};
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_pim::backend::Backend;
use hyflex_runtime::{
    ClusterConfig, ClusterSim, DispatchPolicy, RequestClass, SchedulerConfig, SchedulingPolicy,
    ServingConfig,
};
use hyflex_transformer::ModelConfig;

const INTERACTIVE_SEQ: usize = 64;
const BATCH_SEQ: usize = 256;
const INTERACTIVE_WEIGHT: f64 = 3.0;
const BATCH_WEIGHT: f64 = 1.0;
const SLC_RATE: f64 = 0.05;
const NUM_REQUESTS: usize = 600;
const BATCH_CAP: usize = 16;
/// Offered load relative to the backend's own mixed sustainable rate.
const OVERLOAD: f64 = 1.3;
/// Interactive SLO in units of the backend's own single-request latency.
const SLO_FACTOR: f64 = 25.0;

fn build(name: &str) -> Box<dyn Backend> {
    SystemBuilder::paper()
        .model(ModelConfig::bert_large())
        .slc_rate(SLC_RATE)
        .backend(name)
        .build()
        .expect("registered backend builds")
}

/// The mixed workload's sustainable rate on `backend` at the batch cap:
/// the weighted mean per-request initiation interval of full batches.
fn sustainable_qps(backend: &dyn Backend) -> f64 {
    let weighted_interval_ns = [
        (INTERACTIVE_SEQ, INTERACTIVE_WEIGHT),
        (BATCH_SEQ, BATCH_WEIGHT),
    ]
    .iter()
    .map(|&(seq, weight)| {
        let summary = backend
            .evaluate_batched(seq, BATCH_CAP)
            .expect("batched evaluation");
        weight * summary.makespan_ns / BATCH_CAP as f64
    })
    .sum::<f64>()
        / (INTERACTIVE_WEIGHT + BATCH_WEIGHT);
    1e9 / weighted_interval_ns
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    let registry = BackendRegistry::paper();
    let names: Vec<String> = match args.backend.as_deref() {
        None | Some("all") => registry
            .paper_figure_names()
            .iter()
            .map(|n| n.to_string())
            .collect(),
        Some(_) => vec![args.backend_or_exit("hyflexpim")],
    };
    let seed = args.seed_or(20);
    let chips = args.chips_or(1);
    let dispatch = args.dispatch_or_exit(DispatchPolicy::RoundRobin);

    emitln!("Figure 20 — scheduling policies under overload (extension)");
    emitln!(
        "BERT-Large; mix: interactive N = {INTERACTIVE_SEQ} (weight {INTERACTIVE_WEIGHT}, \
         SLO = {SLO_FACTOR}x own single-request latency, priority 0) + batch \
         N = {BATCH_SEQ} (weight {BATCH_WEIGHT}, no SLO, priority 1)"
    );
    emitln!(
        "{NUM_REQUESTS} Poisson arrivals at {OVERLOAD}x each backend's sustainable \
         mixed rate, batch cap {BATCH_CAP}, {chips} chip(s), {dispatch} dispatch, \
         seed {seed}"
    );

    let mut edf_wins = 0usize;
    let mut compared = 0usize;
    for name in &names {
        let probe = build(name);
        let anchor_qps = sustainable_qps(probe.as_ref()) * chips as f64;
        let slo_ns = SLO_FACTOR
            * probe
                .evaluate_batched(INTERACTIVE_SEQ, 1)
                .expect("single-request evaluation")
                .makespan_ns;
        emitln!(
            "\n{}: offered {:.0} QPS, interactive SLO {:.2} ms",
            probe.name(),
            anchor_qps * OVERLOAD,
            slo_ns / 1e6
        );
        print_row(
            "Policy",
            &[
                "achieved".to_string(),
                "p50 ms".to_string(),
                "p99 ms".to_string(),
                "SLO att %".to_string(),
                "mean batch".to_string(),
            ],
        );
        let mut attainment = Vec::new();
        for policy in SchedulingPolicy::ALL {
            let config = ClusterConfig {
                chips,
                dispatch,
                serving: ServingConfig {
                    qps: anchor_qps * OVERLOAD,
                    num_requests: NUM_REQUESTS,
                    classes: vec![
                        RequestClass::new(INTERACTIVE_SEQ, INTERACTIVE_WEIGHT)
                            .with_slo_ns(slo_ns)
                            .with_priority(0),
                        RequestClass::new(BATCH_SEQ, BATCH_WEIGHT).with_priority(1),
                    ],
                    slc_rank_fraction: SLC_RATE,
                    seed,
                    scheduler: SchedulerConfig {
                        max_batch_size: BATCH_CAP,
                        policy,
                        ..SchedulerConfig::default()
                    },
                    ..ServingConfig::default()
                },
            };
            let report = ClusterSim::with_backend(build(name), config)
                .expect("cluster sim")
                .run()
                .expect("cluster run");
            attainment.push(report.slo_attainment);
            print_row(
                policy.name(),
                &[
                    fmt(report.achieved_qps, 0),
                    fmt(report.latency.p50_ms, 3),
                    fmt(report.latency.p99_ms, 3),
                    fmt(report.slo_attainment * 100.0, 1),
                    fmt(report.mean_batch_size, 1),
                ],
            );
        }
        // attainment[0] is FCFS, [1] is EDF (SchedulingPolicy::ALL order).
        compared += 1;
        if attainment[1] >= attainment[0] {
            edf_wins += 1;
        }
    }
    emitln!(
        "\nEDF meets at least as many SLOs as FCFS on {edf_wins}/{compared} backends \
         (deadline-aware reordering recovers interactive attainment under overload)."
    );
}
