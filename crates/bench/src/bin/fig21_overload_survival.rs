//! Figure 21 (extension): overload survival under open-loop traffic.
//!
//! The closed-loop figures stop at "which policy meets more SLOs"; this one
//! asks what happens when offered load **exceeds** capacity and stays
//! there. A million-request MMPP trace (burst/trough, long-run mean 1.5x
//! the chip's sustainable mixed rate) streams through the open-loop
//! [`OverloadSim`] twice — once queueing everything admitted, once with
//! deadline-aware shedding — and the comparison is made on *goodput under
//! SLO* and the p99/p99.9 tail, per traffic phase. A cross-backend sweep
//! then repeats the shed/no-shed comparison for FCFS and EDF on every
//! registered design at matched 1.5x overload, and a final section lets a
//! reactive autoscaler grow a four-replica fleet against a 3x
//! single-replica load.
//!
//! The trace is streamed (O(1) memory in the request count) and the queue
//! is bounded by a queue-depth admission gate, so the million-request part
//! runs in constant memory; latency tails come from the log-linear
//! histogram (≤ 1.6 % bucket error, mean/max exact).
//!
//! Common flags: `--seed N`, `--out PATH`, `--backend NAME|all` (restrict
//! part (b) to one registered backend), `--requests N` (part (a) trace
//! length, default 1,000,000), `--smoke` (shrink every part to a
//! seconds-scale CI run).

use hyflex_baselines::{BackendRegistry, SystemBuilder};
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_pim::backend::Backend;
use hyflex_runtime::{
    AdmissionPolicy, ArrivalProcess, AutoscalerConfig, DispatchPolicy, MmppState, OverloadConfig,
    OverloadReport, OverloadSim, RequestClass, RequestTrace, SchedulerConfig, SchedulingPolicy,
    TrafficConfig,
};
use hyflex_transformer::ModelConfig;
use std::sync::Arc;

const INTERACTIVE_SEQ: usize = 64;
const BATCH_SEQ: usize = 256;
const INTERACTIVE_WEIGHT: f64 = 3.0;
const BATCH_WEIGHT: f64 = 1.0;
const SLC_RATE: f64 = 0.05;
const BATCH_CAP: usize = 16;
/// Long-run offered load relative to the backend's sustainable mixed rate:
/// dwell-weighted mean of the burst and trough states below.
const OVERLOAD: f64 = 1.5;
/// Burst state: rate multiple and mean dwell.
const BURST_RATE: f64 = 2.5;
const BURST_DWELL_S: f64 = 0.2;
/// Trough state: rate multiple and mean dwell.
/// (0.2 * 2.5 + 0.3 * 5/6) / 0.5 = 1.5 — the OVERLOAD constant.
const TROUGH_RATE: f64 = 5.0 / 6.0;
const TROUGH_DWELL_S: f64 = 0.3;
/// Interactive SLO in units of the backend's own single-request latency.
const SLO_FACTOR: f64 = 25.0;
/// Queue-depth admission gate (bounds memory and queue-wait).
const QUEUE_CAP: usize = 1024;

fn build(name: &str) -> Box<dyn Backend> {
    SystemBuilder::paper()
        .model(ModelConfig::bert_large())
        .slc_rate(SLC_RATE)
        .backend(name)
        .build()
        .expect("registered backend builds")
}

/// The mixed workload's sustainable rate on `backend` at the batch cap
/// (same anchor as fig20, so overload factors are comparable across
/// designs).
fn sustainable_qps(backend: &dyn Backend) -> f64 {
    let weighted_interval_ns = [
        (INTERACTIVE_SEQ, INTERACTIVE_WEIGHT),
        (BATCH_SEQ, BATCH_WEIGHT),
    ]
    .iter()
    .map(|&(seq, weight)| {
        let summary = backend
            .evaluate_batched(seq, BATCH_CAP)
            .expect("batched evaluation");
        weight * summary.makespan_ns / BATCH_CAP as f64
    })
    .sum::<f64>()
        / (INTERACTIVE_WEIGHT + BATCH_WEIGHT);
    1e9 / weighted_interval_ns
}

/// The backend's interactive SLO: `SLO_FACTOR` x its own single-request
/// latency at the interactive shape.
fn interactive_slo_ns(backend: &dyn Backend) -> f64 {
    SLO_FACTOR
        * backend
            .evaluate_batched(INTERACTIVE_SEQ, 1)
            .expect("single-request evaluation")
            .makespan_ns
}

/// Burst/trough MMPP trace with long-run mean `OVERLOAD` x `anchor_qps`.
fn overload_trace(anchor_qps: f64, slo_ns: f64, num_requests: usize, seed: u64) -> RequestTrace {
    RequestTrace::new(TrafficConfig {
        process: ArrivalProcess::Mmpp {
            states: vec![
                MmppState::new("burst", anchor_qps * BURST_RATE, BURST_DWELL_S),
                MmppState::new("trough", anchor_qps * TROUGH_RATE, TROUGH_DWELL_S),
            ],
        },
        num_requests,
        classes: vec![
            RequestClass::new(INTERACTIVE_SEQ, INTERACTIVE_WEIGHT)
                .with_slo_ns(slo_ns)
                .with_priority(0),
            RequestClass::new(BATCH_SEQ, BATCH_WEIGHT).with_priority(1),
        ],
        seed,
        ..TrafficConfig::default()
    })
    .expect("trace config is valid")
}

fn run_one(
    backend: Box<dyn Backend>,
    trace: RequestTrace,
    policy: SchedulingPolicy,
    shed: bool,
) -> OverloadReport {
    OverloadSim::with_backend(
        backend,
        OverloadConfig {
            scheduler: SchedulerConfig {
                max_batch_size: BATCH_CAP,
                policy,
                ..SchedulerConfig::default()
            },
            admission: AdmissionPolicy::QueueDepth {
                max_outstanding: QUEUE_CAP,
            },
            shed,
            ..OverloadConfig::new(trace)
        },
    )
    .expect("overload sim builds")
    .run()
    .expect("overload run")
}

fn survival_row(label: &str, report: &OverloadReport) {
    print_row(
        label,
        &[
            fmt(report.goodput_qps, 0),
            fmt(report.achieved_qps, 0),
            fmt(report.slo_attainment * 100.0, 1),
            fmt(report.latency.p99_ms, 2),
            report
                .latency
                .p999_ms
                .map_or_else(|| "n/a".to_string(), |ms| fmt(ms, 2)),
            report.shed.to_string(),
            report.rejected.to_string(),
        ],
    );
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    let seed = args.seed_or(21);
    // --requests overrides part (a); --smoke shrinks every part.
    let n_main = args.requests_or(if args.smoke { 20_000 } else { 1_000_000 });
    let n_sweep = if args.smoke { 5_000 } else { 100_000 };
    let n_scale = if args.smoke { 20_000 } else { 200_000 };

    emitln!("Figure 21 — overload survival under open-loop traffic (extension)");
    emitln!(
        "BERT-Large; mix: interactive N = {INTERACTIVE_SEQ} (weight {INTERACTIVE_WEIGHT}, \
         SLO = {SLO_FACTOR}x own single-request latency, priority 0) + batch \
         N = {BATCH_SEQ} (weight {BATCH_WEIGHT}, no SLO, priority 1)"
    );
    emitln!(
        "MMPP arrivals: burst {BURST_RATE}x sustainable for ~{BURST_DWELL_S} s, trough \
         {TROUGH_RATE:.3}x for ~{TROUGH_DWELL_S} s (long-run mean {OVERLOAD}x); \
         queue-depth gate {QUEUE_CAP}, batch cap {BATCH_CAP}, seed {seed}"
    );

    // ---- (a) Million-request shed/no-shed on HyFlexPIM -------------------
    let probe = build("hyflexpim");
    let anchor = sustainable_qps(probe.as_ref());
    let slo_ns = interactive_slo_ns(probe.as_ref());
    emitln!(
        "\n(a) {} at {:.0} QPS offered ({n_main} requests, EDF), interactive SLO {:.2} ms",
        probe.name(),
        anchor * OVERLOAD,
        slo_ns / 1e6
    );
    print_row(
        "Variant",
        &[
            "goodput".to_string(),
            "achieved".to_string(),
            "SLO att %".to_string(),
            "p99 ms".to_string(),
            "p99.9 ms".to_string(),
            "shed".to_string(),
            "rejected".to_string(),
        ],
    );
    let mut main_reports = Vec::new();
    for shed in [false, true] {
        let trace = overload_trace(anchor, slo_ns, n_main, seed);
        let report = run_one(build("hyflexpim"), trace, SchedulingPolicy::Edf, shed);
        survival_row(if shed { "shed" } else { "no-shed" }, &report);
        main_reports.push(report);
    }
    emitln!("\nPer-phase breakdown (shed run):");
    print_row(
        "Phase",
        &[
            "offered".to_string(),
            "completed".to_string(),
            "shed".to_string(),
            "rejected".to_string(),
            "SLO att %".to_string(),
            "p99 ms".to_string(),
            "p99.9 ms".to_string(),
        ],
    );
    for phase in &main_reports[1].phases {
        print_row(
            &phase.label,
            &[
                phase.offered.to_string(),
                phase.completed.to_string(),
                phase.shed.to_string(),
                phase.rejected.to_string(),
                fmt(phase.slo_attainment * 100.0, 1),
                fmt(phase.p99_ms, 2),
                phase
                    .p999_ms
                    .map_or_else(|| "n/a".to_string(), |ms| fmt(ms, 2)),
            ],
        );
    }

    // ---- (b) Cross-backend shed/no-shed sweep ----------------------------
    let registry = BackendRegistry::paper();
    let names: Vec<String> = match args.backend.as_deref() {
        None | Some("all") => registry
            .paper_figure_names()
            .iter()
            .map(|n| n.to_string())
            .collect(),
        Some(_) => vec![args.backend_or_exit("hyflexpim")],
    };
    emitln!("\n(b) Shed vs no-shed at {OVERLOAD}x matched overload, {n_sweep} requests per run:");
    let mut shed_wins = 0usize;
    for name in &names {
        let probe = build(name);
        let anchor = sustainable_qps(probe.as_ref());
        let slo_ns = interactive_slo_ns(probe.as_ref());
        emitln!(
            "\n{}: offered {:.0} QPS, interactive SLO {:.2} ms",
            probe.name(),
            anchor * OVERLOAD,
            slo_ns / 1e6
        );
        print_row(
            "Policy/variant",
            &[
                "goodput".to_string(),
                "achieved".to_string(),
                "SLO att %".to_string(),
                "p99 ms".to_string(),
                "p99.9 ms".to_string(),
                "shed".to_string(),
                "rejected".to_string(),
            ],
        );
        let mut edf_goodput = [0.0f64; 2];
        for policy in [SchedulingPolicy::Fcfs, SchedulingPolicy::Edf] {
            for shed in [false, true] {
                let trace = overload_trace(anchor, slo_ns, n_sweep, seed);
                let report = run_one(build(name), trace, policy, shed);
                if policy == SchedulingPolicy::Edf {
                    edf_goodput[shed as usize] = report.goodput_qps;
                }
                survival_row(
                    &format!(
                        "{}/{}",
                        policy.name(),
                        if shed { "shed" } else { "no-shed" }
                    ),
                    &report,
                );
            }
        }
        if edf_goodput[1] > edf_goodput[0] {
            shed_wins += 1;
        }
    }
    emitln!(
        "\nShedding strictly improves EDF goodput-under-SLO on {shed_wins}/{} backends \
         at {OVERLOAD}x sustained overload.",
        names.len()
    );

    // ---- (c) Reactive autoscaling ----------------------------------------
    emitln!(
        "\n(c) Autoscaler: 4-replica HyFlexPIM fleet (floor 1) against 3x a single \
         replica's rate, {n_scale} requests:"
    );
    let probe = build("hyflexpim");
    let anchor = sustainable_qps(probe.as_ref());
    let slo_ns = interactive_slo_ns(probe.as_ref());
    let replicas: Vec<Arc<dyn Backend>> = (0..4)
        .map(|_| -> Arc<dyn Backend> { Arc::new(build("hyflexpim")) })
        .collect();
    let trace = RequestTrace::new(TrafficConfig {
        process: ArrivalProcess::Poisson { qps: anchor * 3.0 },
        num_requests: n_scale,
        classes: vec![
            RequestClass::new(INTERACTIVE_SEQ, INTERACTIVE_WEIGHT)
                .with_slo_ns(slo_ns)
                .with_priority(0),
            RequestClass::new(BATCH_SEQ, BATCH_WEIGHT).with_priority(1),
        ],
        seed,
        ..TrafficConfig::default()
    })
    .expect("trace config is valid");
    let report = OverloadSim::with_replicas(
        replicas,
        OverloadConfig {
            scheduler: SchedulerConfig {
                max_batch_size: BATCH_CAP,
                policy: SchedulingPolicy::Edf,
                ..SchedulerConfig::default()
            },
            dispatch: DispatchPolicy::JoinShortestQueue,
            admission: AdmissionPolicy::QueueDepth {
                max_outstanding: QUEUE_CAP,
            },
            shed: true,
            autoscaler: Some(AutoscalerConfig {
                min_replicas: 1,
                max_replicas: 4,
                check_interval_s: 0.02,
                actuation_lag_s: 0.05,
                scale_up_outstanding: 48.0,
                scale_down_outstanding: 4.0,
                ewma_alpha: None,
            }),
            ..OverloadConfig::new(trace)
        },
    )
    .expect("fleet sim builds")
    .run()
    .expect("fleet run");
    emitln!(
        "peak active replicas {} (of 4, floor 1), {} autoscale events, per-replica \
         completions {:?}",
        report.peak_active_replicas,
        report.autoscale_events.len(),
        report.per_replica_completed
    );
    print_row(
        "fleet",
        &[
            fmt(report.goodput_qps, 0),
            fmt(report.achieved_qps, 0),
            fmt(report.slo_attainment * 100.0, 1),
            fmt(report.latency.p99_ms, 2),
            report
                .latency
                .p999_ms
                .map_or_else(|| "n/a".to_string(), |ms| fmt(ms, 2)),
            report.shed.to_string(),
            report.rejected.to_string(),
        ],
    );
    emitln!(
        "\nConservation: offered {} = completed {} + shed {} + rejected {} + preempted {}.",
        report.offered,
        report.completed,
        report.shed,
        report.rejected,
        report.preempted
    );
}
