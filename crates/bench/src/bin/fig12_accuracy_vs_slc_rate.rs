//! Figure 12: accuracy / loss versus SLC protection rate.
//!
//! Encoder tasks (synthetic GLUE stand-ins), a decoder task (synthetic
//! WikiText-2 stand-in), and a vision task (synthetic CIFAR-10 stand-in) are
//! fine-tuned through the gradient-redistribution pipeline and evaluated
//! under the hybrid SLC/MLC noise model at protection rates from 0 % to
//! 100 %. The rate × seed grid is evaluated in parallel on the
//! `hyflex-runtime` worker pool; per-point seeding keeps the numbers
//! bit-identical to the serial sweep. Common flags: `--mlc-bits 3|4` for the
//! higher-level-MLC ablation, `--threads N`, `--seed N`, `--out PATH`.

use hyflex_bench::{emitln, fmt, print_row, run_functional_experiment_with, BinArgs};
use hyflex_pim::noise_sim::SweepPoint;
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_pim::selection::SelectionStrategy;
use hyflex_rram::cell::CellMode;
use hyflex_runtime::{par_noise_sweep, JobPool};
use hyflex_tensor::SvdAlgorithm;
use hyflex_transformer::ModelConfig;
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};
use hyflex_workloads::{lm, vision};

const RATES: [f64; 7] = [0.0, 0.05, 0.10, 0.30, 0.40, 0.50, 1.0];
const SEEDS_PER_RATE: u64 = 3;

fn sweep(
    pool: &JobPool,
    name: &str,
    model: ModelConfig,
    dataset: hyflex_workloads::Dataset,
    mlc: CellMode,
    seed: u64,
    svd_algo: SvdAlgorithm,
) {
    let experiment =
        run_functional_experiment_with(model, dataset, 4, 2, seed, svd_algo).expect("experiment");
    let simulator = NoiseSimulator::paper_default();
    let baseline = experiment.report.eval_finetuned.metrics.primary_value();
    let base = HybridMappingSpec {
        protection_rate: 0.0,
        strategy: SelectionStrategy::GradientBased,
        mlc_mode: mlc,
        quantize_int8: true,
    };
    // Average a few noise seeds per rate to smooth the small synthetic tasks.
    let points = SweepPoint::grid(&RATES, SEEDS_PER_RATE, seed * 100);
    let outcomes = par_noise_sweep(
        pool,
        &simulator,
        &experiment.model,
        &experiment.report.layer_profiles,
        &base,
        &experiment.dataset.eval,
        &points,
    )
    .expect("noise evaluation");
    let values: Vec<String> = outcomes
        .chunks(SEEDS_PER_RATE as usize)
        .map(|chunk| {
            let mean = chunk.iter().map(|o| o.primary_metric).sum::<f64>() / chunk.len() as f64;
            fmt(mean, 3)
        })
        .collect();
    print_row(name, &values);
    emitln!("{:<28} baseline (no PIM noise): {:.3}", "", baseline);
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    // Only HyFlexPIM has a noise/accuracy model; anything else is rejected
    // through the registry (with the listing).
    args.require_hyflexpim("fig12 sweeps task accuracy under the HyFlexPIM noise model");
    let pool = args.pool();
    let mlc = args.mlc_mode();
    let svd_algo = args.svd_algo_or_exit(SvdAlgorithm::Jacobi);
    emitln!(
        "Figure 12 — task quality vs SLC protection rate (MLC = {}-bit cells, {} workers)",
        mlc.bits_per_cell(),
        pool.workers()
    );
    emitln!("Metric: accuracy (classification), Pearson (STS-B), -loss (LM); higher is better.");
    print_row(
        "Task",
        &RATES
            .iter()
            .map(|r| format!("{}%", (r * 100.0) as u32))
            .collect::<Vec<_>>(),
    );

    // (a) Encoder: synthetic GLUE tasks on the tiny encoder.
    let glue_config = GlueConfig::default();
    for task in [
        GlueTask::Mrpc,
        GlueTask::Cola,
        GlueTask::Sst2,
        GlueTask::Rte,
    ] {
        let seed = args.seed_or(21);
        let dataset = glue::generate(task, &glue_config, seed);
        sweep(
            &pool,
            task.name(),
            ModelConfig::tiny_encoder(2),
            dataset,
            mlc,
            seed,
            svd_algo,
        );
    }
    let stsb_seed = args.seed_or(22);
    let stsb = glue::generate(GlueTask::Stsb, &glue_config, stsb_seed);
    sweep(
        &pool,
        "STS-B",
        ModelConfig::tiny_encoder_regression(),
        stsb,
        mlc,
        stsb_seed,
        svd_algo,
    );

    // (b) Decoder: synthetic WikiText-2 stand-in on the tiny decoder.
    let wiki_seed = args.seed_or(23);
    let wiki = lm::wikitext2_dataset(wiki_seed);
    sweep(
        &pool,
        "WikiText-2 (GPT-2 proxy)",
        ModelConfig::tiny_decoder(),
        wiki,
        mlc,
        wiki_seed,
        svd_algo,
    );

    // Vision: synthetic CIFAR-10 stand-in on the tiny ViT.
    let vit_seed = args.seed_or(24);
    let cifar = vision::generate(&vision::VisionConfig::default(), vit_seed);
    sweep(
        &pool,
        "CIFAR-10 (ViT proxy)",
        ModelConfig::tiny_vit(10),
        cifar,
        mlc,
        vit_seed,
        svd_algo,
    );
}
