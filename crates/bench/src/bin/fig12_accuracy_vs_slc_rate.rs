//! Figure 12: accuracy / loss versus SLC protection rate.
//!
//! Encoder tasks (synthetic GLUE stand-ins), a decoder task (synthetic
//! WikiText-2 stand-in), and a vision task (synthetic CIFAR-10 stand-in) are
//! fine-tuned through the gradient-redistribution pipeline and evaluated
//! under the hybrid SLC/MLC noise model at protection rates from 0 % to
//! 100 %. Pass `--mlc-bits 3` (or 4) to run the higher-level-MLC ablation.

use hyflex_bench::{fmt, print_row, run_functional_experiment};
use hyflex_pim::noise_sim::{HybridMappingSpec, NoiseSimulator};
use hyflex_pim::selection::SelectionStrategy;
use hyflex_rram::cell::CellMode;
use hyflex_transformer::ModelConfig;
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};
use hyflex_workloads::{lm, vision};

const RATES: [f64; 7] = [0.0, 0.05, 0.10, 0.30, 0.40, 0.50, 1.0];

fn mlc_mode_from_args() -> CellMode {
    let mut mode = CellMode::MLC2;
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--mlc-bits") {
        if let Some(bits) = args.get(pos + 1).and_then(|s| s.parse::<u8>().ok()) {
            if (2..=4).contains(&bits) {
                mode = CellMode::Mlc { bits };
            }
        }
    }
    mode
}

fn sweep(
    name: &str,
    model: ModelConfig,
    dataset: hyflex_workloads::Dataset,
    mlc: CellMode,
    seed: u64,
) {
    let experiment = run_functional_experiment(model, dataset, 4, 2, seed).expect("experiment");
    let simulator = NoiseSimulator::paper_default();
    let baseline = experiment.report.eval_finetuned.metrics.primary_value();
    let values: Vec<String> = RATES
        .iter()
        .map(|&rate| {
            // Average a few noise seeds to smooth the small synthetic tasks.
            let mean = (0..3)
                .map(|s| {
                    let spec = HybridMappingSpec {
                        protection_rate: rate,
                        strategy: SelectionStrategy::GradientBased,
                        mlc_mode: mlc,
                        quantize_int8: true,
                    };
                    simulator
                        .evaluate(
                            &experiment.model,
                            &experiment.report.layer_profiles,
                            &spec,
                            &experiment.dataset.eval,
                            seed * 100 + s,
                        )
                        .expect("noise evaluation")
                        .0
                        .metrics
                        .primary_value()
                })
                .sum::<f64>()
                / 3.0;
            fmt(mean, 3)
        })
        .collect();
    print_row(name, &values);
    println!("{:<28} baseline (no PIM noise): {:.3}", "", baseline);
}

fn main() {
    let mlc = mlc_mode_from_args();
    println!(
        "Figure 12 — task quality vs SLC protection rate (MLC = {}-bit cells)",
        mlc.bits_per_cell()
    );
    println!("Metric: accuracy (classification), Pearson (STS-B), -loss (LM); higher is better.");
    print_row(
        "Task",
        &RATES
            .iter()
            .map(|r| format!("{}%", (r * 100.0) as u32))
            .collect::<Vec<_>>(),
    );

    // (a) Encoder: synthetic GLUE tasks on the tiny encoder.
    let glue_config = GlueConfig::default();
    for task in [
        GlueTask::Mrpc,
        GlueTask::Cola,
        GlueTask::Sst2,
        GlueTask::Rte,
    ] {
        let dataset = glue::generate(task, &glue_config, 21);
        sweep(task.name(), ModelConfig::tiny_encoder(2), dataset, mlc, 21);
    }
    let stsb = glue::generate(GlueTask::Stsb, &glue_config, 22);
    sweep(
        "STS-B",
        ModelConfig::tiny_encoder_regression(),
        stsb,
        mlc,
        22,
    );

    // (b) Decoder: synthetic WikiText-2 stand-in on the tiny decoder.
    let wiki = lm::wikitext2_dataset(23);
    sweep(
        "WikiText-2 (GPT-2 proxy)",
        ModelConfig::tiny_decoder(),
        wiki,
        mlc,
        23,
    );

    // Vision: synthetic CIFAR-10 stand-in on the tiny ViT.
    let cifar = vision::generate(&vision::VisionConfig::default(), 24);
    sweep(
        "CIFAR-10 (ViT proxy)",
        ModelConfig::tiny_vit(10),
        cifar,
        mlc,
        24,
    );
}
