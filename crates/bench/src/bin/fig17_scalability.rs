//! Figure 17: memory requirements and throughput scalability at N = 8192.

use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_pim::scalability::ScalabilityModel;
use hyflex_transformer::ModelConfig;

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    args.require_hyflexpim("fig17 models HyFlexPIM multi-PU/multi-chip scaling");
    let model = ScalabilityModel::paper_default();
    emitln!("Figure 17 — memory requirements and throughput scalability (N = 8192)");

    print_row(
        "Model",
        &[
            "Analog (GB)".to_string(),
            "Digital (GB)".to_string(),
            "Total (GB)".to_string(),
        ],
    );
    for config in [ModelConfig::gpt2_small(), ModelConfig::llama3_1b()] {
        let req = model
            .memory_requirement(&config, 8192)
            .expect("memory requirement");
        print_row(
            &config.name,
            &[
                fmt(req.analog_bytes / 1e9, 2),
                fmt(req.digital_bytes / 1e9, 2),
                fmt(req.total_gb(), 2),
            ],
        );
    }

    emitln!("\nThroughput scaling (normalized):");
    print_row(
        "Configuration",
        &["achieved".to_string(), "ideal".to_string()],
    );
    for point in model.figure17().expect("figure 17 sweep") {
        print_row(
            &point.label,
            &[
                fmt(point.normalized_throughput, 2),
                fmt(point.ideal_throughput, 2),
            ],
        );
    }
}
