//! Figure 22 (extension): autoregressive decode serving on the SLC/MLC
//! hybrid fabric.
//!
//! The paper's figures price prefill-style inference; this one asks what
//! the hybrid SLC/MLC fabric buys when the *KV cache* of autoregressive
//! decode lives in the analog arrays. The [`DecodeSim`] engine streams an
//! open-loop trace through a continuous batcher (requests join and retire
//! at token boundaries) and charges every KV append, prefill write, and
//! background demotion at the cell model's write energy/latency.
//!
//! Three placement policies compete for the same pool: **slc-only** writes
//! one pulse per append but burns 2x the cells per token (evicts under
//! capacity pressure), **mlc-only** packs 2 bits/cell but pays 4
//! program-and-verify pulses on the decode critical path and 2x the write
//! energy, and **hybrid** stages appends in SLC then demotes cooled tokens
//! past the hot window to MLC off the critical path — the decode-time
//! analogue of the paper's gradient-redistribution mapping. Part (a)
//! compares the three under KV-capacity pressure, part (b) sweeps offered
//! load, and part (c) swaps in the analog in-memory attention backend,
//! which prices attention over the cached KV inside the arrays.
//!
//! Common flags: `--seed N`, `--out PATH`, `--backend NAME` (parts (a)/(b)
//! backend, default hyflexpim), `--requests N` (part (a) trace length),
//! `--trace PATH` (replace part (a)'s workload with a trace file),
//! `--smoke` (shrink every part to a seconds-scale CI run).

use hyflex_baselines::BackendRegistry;
use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_pim::backend::Backend;
use hyflex_runtime::{
    ArrivalProcess, DecodeConfig, DecodeReport, DecodeSim, KvPlacementPolicy, RequestTrace,
    TrafficConfig,
};
use hyflex_transformer::ModelConfig;
use std::sync::Arc;

const SEQ_LEN: usize = 128;
const OUTPUT_TOKENS: usize = 32;
const KV_PUS: usize = 4;
const HOT_WINDOW: usize = 16;
/// Part (a) offered load: far past the pool's churn point, so capacity
/// pressure (evictions) separates the placements.
const PRESSURE_QPS: f64 = 20_000.0;

const PLACEMENTS: [KvPlacementPolicy; 3] = [
    KvPlacementPolicy::SlcOnly,
    KvPlacementPolicy::Hybrid {
        hot_window: HOT_WINDOW,
    },
    KvPlacementPolicy::MlcOnly,
];

fn build(name: &str) -> Arc<dyn Backend> {
    let registry = BackendRegistry::paper();
    let params = hyflex_baselines::BackendParams::paper(ModelConfig::bert_large());
    Arc::from(registry.build(name, &params).expect("registered backend"))
}

fn poisson_trace(qps: f64, num_requests: usize, seed: u64) -> RequestTrace {
    RequestTrace::new(TrafficConfig {
        process: ArrivalProcess::Poisson { qps },
        num_requests,
        seq_len: SEQ_LEN,
        seed,
        ..TrafficConfig::default()
    })
    .expect("trace config is valid")
}

fn run_one(
    backend: Arc<dyn Backend>,
    trace: RequestTrace,
    placement: KvPlacementPolicy,
) -> DecodeReport {
    DecodeSim::new(
        backend,
        trace,
        DecodeConfig {
            placement,
            output_tokens: OUTPUT_TOKENS,
            kv_pus: KV_PUS,
            ..DecodeConfig::default()
        },
    )
    .expect("decode sim builds")
    .run()
    .expect("decode run")
}

fn placement_header() {
    print_row(
        "Placement",
        &[
            "goodput".to_string(),
            "tok/s".to_string(),
            "TPOT ms".to_string(),
            "p99.9 ms".to_string(),
            "evicted".to_string(),
            "shed".to_string(),
            "demoted".to_string(),
            "nJ/tok".to_string(),
            "KV peak %".to_string(),
        ],
    );
}

fn placement_row(report: &DecodeReport) {
    print_row(
        &report.placement,
        &[
            fmt(report.goodput_rps, 0),
            fmt(report.tokens_per_s, 0),
            fmt(report.tpot.tpot_ms.unwrap_or(f64::NAN), 3),
            report
                .tpot
                .p999_ms
                .map_or_else(|| "n/a".to_string(), |ms| fmt(ms, 3)),
            report.evicted.to_string(),
            report.shed.to_string(),
            report.demoted_tokens.to_string(),
            fmt(report.energy_per_token_pj / 1e3, 1),
            fmt(
                100.0 * report.peak_kv_cells as f64 / report.kv_capacity_cells as f64,
                1,
            ),
        ],
    );
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    let seed = args.seed_or(23);
    let backend_name = args.backend_or_exit("hyflexpim");
    let n_main = args.requests_or(if args.smoke { 300 } else { 2000 });
    let n_sweep = if args.smoke { 200 } else { 1000 };

    emitln!("Figure 22 — decode serving: KV cache on the SLC/MLC hybrid fabric (extension)");
    emitln!(
        "BERT-Large, prompt N = {SEQ_LEN}, {OUTPUT_TOKENS} output tokens/request, \
         continuous batching (width {}), KV pool {KV_PUS} PUs, hybrid hot window \
         {HOT_WINDOW}, seed {seed}",
        DecodeConfig::default().max_batch_size
    );

    // ---- (a) Placement comparison under KV-capacity pressure -------------
    let trace = args.trace_or_exit(|| poisson_trace(PRESSURE_QPS, n_main, seed));
    emitln!(
        "\n(a) {backend_name} at {:.0} QPS offered ({} requests): KV placement under \
         capacity pressure",
        trace.mean_qps(),
        trace.collect().len()
    );
    placement_header();
    for placement in PLACEMENTS {
        placement_row(&run_one(build(&backend_name), trace.clone(), placement));
    }

    // ---- (b) Offered-load sweep ------------------------------------------
    emitln!("\n(b) Offered-load sweep ({n_sweep} requests per run):");
    placement_header();
    for qps in [2000.0, 8000.0, PRESSURE_QPS] {
        emitln!("-- {} QPS offered --", fmt(qps, 0));
        for placement in PLACEMENTS {
            placement_row(&run_one(
                build(&backend_name),
                poisson_trace(qps, n_sweep, seed),
                placement,
            ));
        }
    }

    // ---- (c) Analog in-memory attention over the cached KV ---------------
    emitln!(
        "\n(c) Hybrid placement, {} QPS: digital attention (hyflexpim) vs analog \
         in-memory attention over the cached KV ({n_sweep} requests):",
        fmt(8000.0, 0)
    );
    print_row(
        "Backend",
        &[
            "goodput".to_string(),
            "tok/s".to_string(),
            "TPOT ms".to_string(),
            "nJ/tok".to_string(),
            "evicted".to_string(),
        ],
    );
    for name in ["hyflexpim", "analog-attention"] {
        let report = run_one(
            build(name),
            poisson_trace(8000.0, n_sweep, seed),
            KvPlacementPolicy::Hybrid {
                hot_window: HOT_WINDOW,
            },
        );
        print_row(
            name,
            &[
                fmt(report.goodput_rps, 0),
                fmt(report.tokens_per_s, 0),
                fmt(report.tpot.tpot_ms.unwrap_or(f64::NAN), 3),
                fmt(report.energy_per_token_pj / 1e3, 1),
                report.evicted.to_string(),
            ],
        );
    }
}
