//! Figure 11: gradient distribution before SVD, after SVD without the hard
//! threshold, and after hard-threshold truncation plus fine-tuning.

use hyflex_bench::{emitln, run_functional_experiment_with, BinArgs};
use hyflex_pim::gradient_redistribution::{GradientRedistribution, TruncationPolicy};
use hyflex_tensor::rng::Rng;
use hyflex_tensor::SvdAlgorithm;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

fn summarize(label: &str, gradients: &[f64]) {
    let total: f64 = gradients.iter().sum();
    let mut sorted = gradients.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let top10_count = (gradients.len() as f64 * 0.1).ceil() as usize;
    let top10: f64 = sorted.iter().take(top10_count.max(1)).sum();
    let max = sorted.first().copied().unwrap_or(0.0);
    let mean = total / gradients.len().max(1) as f64;
    emitln!(
        "{label:<42} entries={:<5} max/mean={:<8.2} top-10% share={:.1}%",
        gradients.len(),
        if mean > 0.0 { max / mean } else { 0.0 },
        100.0 * if total > 0.0 { top10 / total } else { 0.0 }
    );
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    args.require_hyflexpim("fig11 profiles the SVD gradient-redistribution pipeline of HyFlexPIM");
    let seed = args.seed_or(11);
    let svd_algo = args.svd_algo_or_exit(SvdAlgorithm::Jacobi);
    let dataset = glue::generate(GlueTask::Mrpc, &GlueConfig::default(), seed);
    emitln!("Figure 11 — gradient redistribution (tiny encoder, synthetic MRPC)");

    // (a) Before SVD: per-weight gradients of the first row of the first FC layer.
    let mut rng = Rng::seed_from(seed);
    let mut dense_model =
        TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).expect("valid config");
    let trainer = Trainer::new(
        AdamWConfig {
            learning_rate: 3e-3,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        },
        16,
    );
    trainer
        .train(&mut dense_model, &dataset.train, 3)
        .expect("training succeeds");
    let pipeline = GradientRedistribution {
        svd_algorithm: svd_algo,
        ..GradientRedistribution::new(trainer)
    };
    let dense_profile = pipeline
        .dense_row_gradient_profile(&mut dense_model, &dataset.train, 0, 0)
        .expect("dense profile");
    summarize("(a) before SVD (weights in one row)", &dense_profile);

    // (b) After SVD, full rank, no fine-tuning: gradients on singular values.
    let mut full_rank_model = dense_model.clone();
    let full_rank_pipeline = GradientRedistribution {
        truncation: TruncationPolicy::FullRank,
        ..pipeline
    };
    full_rank_pipeline
        .factorize_model(&mut full_rank_model)
        .expect("factorization succeeds");
    let profiles = full_rank_pipeline
        .collect_profiles(&mut full_rank_model, &dataset.train)
        .expect("profiles");
    summarize(
        "(b) after SVD, no hard threshold",
        &profiles[0].sigma_gradients,
    );

    // (c) After hard threshold + fine-tuning (the full pipeline).
    let experiment =
        run_functional_experiment_with(ModelConfig::tiny_encoder(2), dataset, 3, 3, seed, svd_algo)
            .expect("experiment succeeds");
    summarize(
        "(c) after SVD + hard threshold + fine-tune",
        &experiment.report.layer_profiles[0].sigma_gradients,
    );
    emitln!(
        "mean top-10% gradient concentration across all layers: {:.1}%",
        100.0 * experiment.report.mean_concentration(0.10)
    );
}
