//! Figure 18 (extension): batched-inference throughput and serving latency.
//!
//! Not a figure of the source paper — X-Former-style batched pipelining
//! applied to the HyFlexPIM model. Part (a) sweeps the batch size through
//! `Backend::evaluate_batched`: pipelining B requests through the layer
//! pipeline amortizes fill/drain (the `1 + (L-1)/N` overhead of the
//! single-request latency), so gains are largest for short, decode-like
//! sequences where N < L. Part (b) runs the closed-loop `ServingSim` at
//! increasing offered load and reports latency percentiles. Common flags:
//! `--seed N`, `--out PATH`, `--backend NAME` (run the sweep on a baseline
//! backend instead of HyFlexPIM; defaults reproduce the historical HyFlexPIM
//! rows bit for bit).

use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_pim::backend::Backend;
use hyflex_runtime::{
    BatchScheduler, InferenceRequest, SchedulerConfig, ServingConfig, ServingSim,
};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::ModelConfig;

const BATCH_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];
const SLC_RATE: f64 = 0.05;

fn batch_sweep(args: &BinArgs, title: &str, model: ModelConfig, seq_len: usize) {
    let backend = args.build_backend_or_exit("hyflexpim", model, SLC_RATE);
    // The backend name already carries the mapping parameters where they
    // apply (e.g. "HyFlexPIM (5% SLC)"); baselines have no SLC rate.
    emitln!(
        "\n(a) {title}: batch-size sweep on {} (N = {seq_len})",
        backend.name()
    );
    print_row(
        "Batch",
        &[
            "req/s".to_string(),
            "makespan us".to_string(),
            "latency us".to_string(),
            "queue us".to_string(),
            "util %".to_string(),
            "TOPS".to_string(),
        ],
    );
    for s in BATCH_SIZES.iter().map(|&b| {
        backend
            .evaluate_batched(seq_len, b)
            .expect("batched evaluation")
    }) {
        print_row(
            &format!("B={}", s.batch_size),
            &[
                fmt(s.requests_per_s, 0),
                fmt(s.makespan_ns / 1e3, 1),
                fmt(s.latency.total_ns() / 1e3, 1),
                fmt(s.latency.queueing_ns / 1e3, 1),
                fmt(s.pipeline_utilization * 100.0, 1),
                fmt(s.throughput_tops, 2),
            ],
        );
    }
}

fn serving_sweep(args: &BinArgs, seed: u64, model: ModelConfig, seq_len: usize) {
    let backend: std::sync::Arc<dyn Backend> =
        std::sync::Arc::from(args.build_backend_or_exit("hyflexpim", model.clone(), SLC_RATE));
    emitln!(
        "\n(b) {}: closed-loop serving on {} (Poisson arrivals, batch cap 16, N = {seq_len})",
        model.name,
        backend.name()
    );
    print_row(
        "Offered QPS",
        &[
            "achieved".to_string(),
            "p50 ms".to_string(),
            "p95 ms".to_string(),
            "p99 ms".to_string(),
            "mean batch".to_string(),
            "util %".to_string(),
        ],
    );
    // Anchor the load sweep to the modeled single-request service rate.
    let single = backend
        .evaluate_batched(seq_len, 1)
        .expect("single-request evaluation");
    let service_qps = 1e9 / single.makespan_ns;
    for load in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let config = ServingConfig {
            qps: service_qps * load,
            num_requests: 2000,
            seq_len,
            slc_rank_fraction: SLC_RATE,
            seed,
            ..ServingConfig::default()
        };
        let report = ServingSim::with_backend(std::sync::Arc::clone(&backend), config)
            .expect("serving sim")
            .run()
            .expect("serving run");
        print_row(
            &format!("{:.0} ({load}x)", service_qps * load),
            &[
                fmt(report.achieved_qps, 0),
                fmt(report.latency.p50_ms, 3),
                fmt(report.latency.p95_ms, 3),
                fmt(report.latency.p99_ms, 3),
                fmt(report.mean_batch_size, 1),
                fmt(report.device_utilization * 100.0, 1),
            ],
        );
    }
}

/// Mixed-length request streams padded to the batch maximum waste tokens;
/// the functional model's packed batching (`AttentionMask::Packed`) executes
/// only the real rows. This section quantifies the recoverable fraction by
/// draining a seeded mixed-length queue through the scheduler at several
/// batch caps and comparing [`hyflex_runtime::Batch::padded_token_count`]
/// against [`hyflex_runtime::Batch::actual_token_count`], then prices both
/// shapes on the device model: the padded columns charge every batch at its
/// maximum length (`evaluate_batched`), the packed columns charge only the
/// real tokens (`evaluate_batched_packed`), so "saved %" is the device time
/// packed execution recovers on this request stream.
fn padding_waste_sweep(seed: u64, model: ModelConfig) {
    emitln!(
        "\n(c) {}: padded-token waste on mixed-length batches (packed batching recovers this)",
        model.name
    );
    print_row(
        "Batch cap",
        &[
            "batches".to_string(),
            "actual tok".to_string(),
            "padded tok".to_string(),
            "waste %".to_string(),
            "padded us".to_string(),
            "packed us".to_string(),
            "saved %".to_string(),
        ],
    );
    const LENGTHS: [usize; 6] = [32, 64, 96, 128, 256, 384];
    let perf = hyflex_pim::PerformanceModel::paper_default();
    for cap in [2usize, 4, 8, 16] {
        let mut scheduler = BatchScheduler::new(
            hyflex_pim::HyFlexPimConfig::paper_default(),
            model.clone(),
            SchedulerConfig {
                max_batch_size: cap,
                max_wait_ns: 0.0,
                pus_per_layer: 4,
                ..SchedulerConfig::default()
            },
        )
        .expect("scheduler");
        let mut rng = Rng::seed_from(seed);
        for id in 0..256u64 {
            let seq_len = LENGTHS[rng.below(LENGTHS.len())];
            scheduler
                .submit(InferenceRequest::new(id, id as f64, seq_len))
                .expect("submit");
        }
        let (mut batches, mut actual, mut padded) = (0usize, 0usize, 0usize);
        let (mut padded_ns, mut packed_ns) = (0.0f64, 0.0f64);
        while let Some(batch) = scheduler.next_batch() {
            batches += 1;
            actual += batch.actual_token_count();
            padded += batch.padded_token_count();
            let point = hyflex_pim::EvaluationPoint {
                model: model.clone(),
                seq_len: batch.max_seq_len,
                slc_rank_fraction: SLC_RATE,
            };
            padded_ns += perf
                .evaluate_batched(&point, batch.len())
                .expect("padded evaluation")
                .makespan_ns;
            packed_ns += perf
                .evaluate_batched_packed(&point, batch.len(), batch.actual_token_count())
                .expect("packed evaluation")
                .makespan_ns;
        }
        let waste = 100.0 * (1.0 - actual as f64 / padded as f64);
        print_row(
            &format!("B={cap}"),
            &[
                batches.to_string(),
                actual.to_string(),
                padded.to_string(),
                fmt(waste, 1),
                fmt(padded_ns / 1e3, 1),
                fmt(packed_ns / 1e3, 1),
                fmt(100.0 * (1.0 - packed_ns / padded_ns), 1),
            ],
        );
    }
}

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    emitln!("Figure 18 — batched inference throughput and serving latency");
    batch_sweep(&args, "GLUE / BERT-Large", ModelConfig::bert_large(), 128);
    batch_sweep(&args, "WikiText-2 / GPT-2", ModelConfig::gpt2_small(), 1024);
    // Decode proxy: short sequences leave the layer pipeline mostly empty,
    // so batching recovers the largest throughput factor here.
    batch_sweep(
        &args,
        "decode proxy / BERT-Large",
        ModelConfig::bert_large(),
        16,
    );
    serving_sweep(&args, args.seed_or(18), ModelConfig::bert_large(), 128);
    padding_waste_sweep(args.seed_or(18), ModelConfig::bert_large());
}
