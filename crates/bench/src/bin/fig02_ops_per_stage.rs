//! Figure 2: number of operations per transformer stage vs sequence length.

use hyflex_bench::{emitln, fmt, print_row, BinArgs};
use hyflex_transformer::ops_count::{self, Stage};
use hyflex_transformer::ModelConfig;

fn main() {
    let args = BinArgs::parse();
    args.init_output();
    args.require_hyflexpim("fig02 counts transformer operations per stage, a model property independent of the accelerator");
    let model = ModelConfig::bert_base();
    let lengths = [128usize, 512, 1024, 2048, 3072];
    emitln!("Figure 2 — operations per stage (BERT-Base, x1e8 operations)");
    print_row(
        "Stage",
        &lengths.iter().map(|n| format!("N={n}")).collect::<Vec<_>>(),
    );
    for stage in Stage::all() {
        let values: Vec<String> = lengths
            .iter()
            .map(|&n| {
                let ops = ops_count::model_ops(&model, n)
                    .into_iter()
                    .find(|s| s.stage == stage)
                    .map(|s| s.ops)
                    .unwrap_or(0);
                fmt(ops as f64 / 1e8, 1)
            })
            .collect();
        print_row(stage.label(), &values);
    }
    emitln!();
    for &n in &lengths {
        emitln!(
            "N={n:<5} static-weight share of operations: {:.1}%",
            100.0 * ops_count::static_weight_fraction(&model, n)
        );
    }
}
