//! Shared command-line handling for the figure/table binaries.
//!
//! Before this module each binary hand-rolled its own `std::env::args` loop
//! (seed constants, the `--mlc-bits` flag, ad-hoc output redirection). All
//! binaries now accept the same flags:
//!
//! * `--seed N` — override the binary's default experiment seed;
//! * `--mlc-bits B` — MLC cell level for ablations (2..=4, default 2);
//! * `--out PATH` — tee every printed row to a file;
//! * `--threads N` — worker-pool width for parallelized sweeps
//!   (default: machine parallelism).

use crate::output;
use hyflex_rram::cell::CellMode;
use hyflex_runtime::JobPool;
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinArgs {
    /// `--seed N`: experiment seed override.
    pub seed: Option<u64>,
    /// `--mlc-bits B`: bits per MLC cell for ablations.
    pub mlc_bits: Option<u8>,
    /// `--out PATH`: file to tee output rows into.
    pub out: Option<PathBuf>,
    /// `--threads N`: worker-pool width.
    pub threads: Option<usize>,
}

impl BinArgs {
    /// Parses the process arguments, ignoring flags it does not know.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit argument iterator (testable core of
    /// [`BinArgs::parse`]).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut parsed = BinArgs::default();
        let value_of = |flag: &str| -> Option<&String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|pos| args.get(pos + 1))
        };
        parsed.seed = value_of("--seed").and_then(|v| v.parse().ok());
        parsed.mlc_bits = value_of("--mlc-bits")
            .and_then(|v| v.parse().ok())
            .filter(|b| (2..=4).contains(b));
        parsed.out = value_of("--out").map(PathBuf::from);
        parsed.threads = value_of("--threads").and_then(|v| v.parse().ok());
        parsed
    }

    /// The binary's seed, unless overridden on the command line.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The MLC cell mode selected by `--mlc-bits` (default 2-bit).
    pub fn mlc_mode(&self) -> CellMode {
        match self.mlc_bits {
            Some(bits) => CellMode::Mlc { bits },
            None => CellMode::MLC2,
        }
    }

    /// Worker pool sized by `--threads` (default: machine parallelism).
    pub fn pool(&self) -> JobPool {
        match self.threads {
            Some(threads) => JobPool::new(threads),
            None => JobPool::with_default_parallelism(),
        }
    }

    /// Applies the `--out` flag to the shared output sink. Call once at
    /// binary start-up, before the first printed row.
    pub fn init_output(&self) {
        if let Some(path) = &self.out {
            if let Err(e) = output::tee_to_file(path) {
                eprintln!("warning: cannot open --out {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BinArgs {
        BinArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags_and_ignores_unknown() {
        let args = parse(&[
            "--seed",
            "99",
            "--mlc-bits",
            "3",
            "--out",
            "rows.txt",
            "--threads",
            "4",
            "--verbose",
        ]);
        assert_eq!(args.seed_or(1), 99);
        assert_eq!(args.mlc_mode(), CellMode::Mlc { bits: 3 });
        assert_eq!(args.out.as_deref(), Some(std::path::Path::new("rows.txt")));
        assert_eq!(args.pool().workers(), 4);
    }

    #[test]
    fn defaults_apply_when_flags_are_absent_or_invalid() {
        let args = parse(&[]);
        assert_eq!(args.seed_or(21), 21);
        assert_eq!(args.mlc_mode(), CellMode::MLC2);
        assert!(args.pool().workers() >= 1);
        // Out-of-range MLC level falls back to the default.
        let args = parse(&["--mlc-bits", "9"]);
        assert_eq!(args.mlc_mode(), CellMode::MLC2);
        let args = parse(&["--seed", "not-a-number"]);
        assert_eq!(args.seed_or(5), 5);
    }
}
