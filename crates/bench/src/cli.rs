//! Shared command-line handling for the figure/table binaries.
//!
//! Before this module each binary hand-rolled its own `std::env::args` loop
//! (seed constants, the `--mlc-bits` flag, ad-hoc output redirection). All
//! binaries now accept the same flags:
//!
//! * `--seed N` — override the binary's default experiment seed;
//! * `--mlc-bits B` — MLC cell level for ablations (2..=4, default 2);
//! * `--out PATH` — tee every printed row to a file;
//! * `--threads N` — worker-pool width for parallelized sweeps
//!   (default: machine parallelism);
//! * `--backend NAME` — which registered comparison backend to evaluate
//!   (`hyflexpim`, `asadi-int8`, `asadi-fp32`, `nmp`, `sprint`, `non-pim`);
//!   binaries that only model HyFlexPIM (the accuracy sweeps) reject other
//!   names with the registry's listing;
//! * `--svd-algo NAME` — SVD algorithm for the gradient-redistribution
//!   pipeline (`jacobi` — the bit-stable default — or `randomized`, the
//!   Gaussian-sketch subspace iteration);
//! * `--policy NAME` — batch-formation scheduling policy for serving
//!   binaries (`fcfs`, `edf`, `priority`);
//! * `--chips N` — cluster size for multi-chip serving binaries;
//! * `--dispatch NAME` — cluster request routing (`round-robin`/`rr`,
//!   `jsq`/`shortest-queue`);
//! * `--requests N` — request count for open-loop traffic binaries;
//! * `--trace PATH` — workload trace file for open-loop traffic binaries
//!   (see [`RequestTrace::parse`] for the format);
//! * `--smoke` — shrink an experiment to a seconds-scale CI smoke run.

use crate::output;
use hyflex_baselines::{BackendRegistry, SystemBuilder};
use hyflex_pim::backend::Backend;
use hyflex_rram::cell::CellMode;
use hyflex_runtime::{DispatchPolicy, JobPool, RequestTrace, SchedulingPolicy};
use hyflex_tensor::SvdAlgorithm;
use hyflex_transformer::ModelConfig;
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinArgs {
    /// `--seed N`: experiment seed override.
    pub seed: Option<u64>,
    /// `--mlc-bits B`: bits per MLC cell for ablations.
    pub mlc_bits: Option<u8>,
    /// `--out PATH`: file to tee output rows into.
    pub out: Option<PathBuf>,
    /// `--threads N`: worker-pool width.
    pub threads: Option<usize>,
    /// `--backend NAME`: registered comparison backend.
    pub backend: Option<String>,
    /// `--svd-algo NAME`: SVD algorithm for factorization pipelines.
    pub svd_algo: Option<String>,
    /// `--policy NAME`: batch-formation scheduling policy.
    pub policy: Option<String>,
    /// `--chips N`: cluster size for multi-chip serving.
    pub chips: Option<usize>,
    /// `--dispatch NAME`: cluster request-routing policy.
    pub dispatch: Option<String>,
    /// `--requests N`: request count for open-loop traffic binaries.
    pub requests: Option<usize>,
    /// `--trace PATH`: workload trace file for open-loop traffic binaries.
    pub trace: Option<PathBuf>,
    /// `--smoke`: shrink the experiment to a seconds-scale CI smoke run.
    pub smoke: bool,
}

impl BinArgs {
    /// Parses the process arguments, ignoring flags it does not know.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit argument iterator (testable core of
    /// [`BinArgs::parse`]).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut parsed = BinArgs::default();
        let value_of = |flag: &str| -> Option<&String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|pos| args.get(pos + 1))
        };
        parsed.seed = value_of("--seed").and_then(|v| v.parse().ok());
        parsed.mlc_bits = value_of("--mlc-bits")
            .and_then(|v| v.parse().ok())
            .filter(|b| (2..=4).contains(b));
        parsed.out = value_of("--out").map(PathBuf::from);
        parsed.threads = value_of("--threads").and_then(|v| v.parse().ok());
        parsed.backend = value_of("--backend").cloned();
        parsed.svd_algo = value_of("--svd-algo").cloned();
        parsed.policy = value_of("--policy").cloned();
        parsed.chips = value_of("--chips").and_then(|v| v.parse().ok());
        parsed.dispatch = value_of("--dispatch").cloned();
        parsed.requests = value_of("--requests").and_then(|v| v.parse().ok());
        parsed.trace = value_of("--trace").map(PathBuf::from);
        parsed.smoke = args.iter().any(|a| a == "--smoke");
        parsed
    }

    /// The `--policy` selection (or `default`), validated against the
    /// policy names.
    ///
    /// # Errors
    ///
    /// Returns [`hyflex_pim::PimError::InvalidConfig`] naming the accepted
    /// policies for an unknown name.
    pub fn policy_or(&self, default: SchedulingPolicy) -> hyflex_pim::Result<SchedulingPolicy> {
        match &self.policy {
            None => Ok(default),
            Some(name) => SchedulingPolicy::parse(name).ok_or_else(|| {
                hyflex_pim::PimError::InvalidConfig(format!(
                    "unknown --policy {name}; expected one of: fcfs, edf, priority"
                ))
            }),
        }
    }

    /// Binary-facing variant of [`BinArgs::policy_or`]: prints the error
    /// and exits with status 2 instead of returning it.
    pub fn policy_or_exit(&self, default: SchedulingPolicy) -> SchedulingPolicy {
        self.policy_or(default).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// The `--svd-algo` selection (or `default`), validated against the
    /// algorithm names.
    ///
    /// # Errors
    ///
    /// Returns [`hyflex_pim::PimError::InvalidConfig`] naming the accepted
    /// algorithms for an unknown name.
    pub fn svd_algo_or(&self, default: SvdAlgorithm) -> hyflex_pim::Result<SvdAlgorithm> {
        match &self.svd_algo {
            None => Ok(default),
            Some(name) => SvdAlgorithm::parse(name).ok_or_else(|| {
                hyflex_pim::PimError::InvalidConfig(format!(
                    "unknown --svd-algo {name}; expected one of: jacobi, randomized"
                ))
            }),
        }
    }

    /// Binary-facing variant of [`BinArgs::svd_algo_or`]: prints the error
    /// and exits with status 2 instead of returning it.
    pub fn svd_algo_or_exit(&self, default: SvdAlgorithm) -> SvdAlgorithm {
        self.svd_algo_or(default).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// The `--chips` selection (or `default`). Like the other numeric
    /// flags (`--seed`, `--threads`, `--mlc-bits`), a zero or unparsable
    /// value falls back to the default.
    pub fn chips_or(&self, default: usize) -> usize {
        self.chips.filter(|&c| c > 0).unwrap_or(default)
    }

    /// The `--dispatch` selection (or `default`), validated against the
    /// dispatch-policy names.
    ///
    /// # Errors
    ///
    /// Returns [`hyflex_pim::PimError::InvalidConfig`] naming the accepted
    /// policies for an unknown name.
    pub fn dispatch_or(&self, default: DispatchPolicy) -> hyflex_pim::Result<DispatchPolicy> {
        match &self.dispatch {
            None => Ok(default),
            Some(name) => DispatchPolicy::parse(name).ok_or_else(|| {
                hyflex_pim::PimError::InvalidConfig(format!(
                    "unknown --dispatch {name}; expected one of: round-robin (rr), \
                     jsq (shortest-queue)"
                ))
            }),
        }
    }

    /// Binary-facing variant of [`BinArgs::dispatch_or`]: prints the error
    /// and exits with status 2 instead of returning it.
    pub fn dispatch_or_exit(&self, default: DispatchPolicy) -> DispatchPolicy {
        self.dispatch_or(default).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// The `--backend` selection (or `default`), validated against the
    /// [`BackendRegistry`]. Binaries call this even when they only support
    /// one backend, so an unknown name always fails with the registry's
    /// listing instead of being silently ignored.
    ///
    /// # Errors
    ///
    /// Returns the registry's unknown-backend error (which names the
    /// available backends).
    pub fn backend_or(&self, default: &str) -> hyflex_pim::Result<String> {
        let name = self.backend.clone().unwrap_or_else(|| default.to_string());
        BackendRegistry::paper().ensure_known(&name)?;
        Ok(name)
    }

    /// Binary-facing variant of [`BinArgs::backend_or`]: prints the
    /// registry's unknown-backend listing and exits with status 2 instead of
    /// returning an error.
    pub fn backend_or_exit(&self, default: &str) -> String {
        match self.backend_or(default) {
            Ok(name) => name,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// For comparison figures whose default is "every registered design":
    /// `None` when `--backend` was not given, `Some(validated name)` when it
    /// was; exits with status 2 (and the registry's listing) for unknown
    /// names.
    pub fn selected_backend_or_exit(&self) -> Option<String> {
        let name = self.backend.clone()?;
        if let Err(e) = BackendRegistry::paper().ensure_known(&name) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Some(name)
    }

    /// Binary-facing variant of [`BinArgs::build_backend`]: prints the
    /// validation error and exits with status 2 instead of returning it.
    pub fn build_backend_or_exit(
        &self,
        default: &str,
        model: ModelConfig,
        slc_rate: f64,
    ) -> Box<dyn Backend> {
        match self.build_backend(default, model, slc_rate) {
            Ok(backend) => backend,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// For binaries that model only HyFlexPIM (the accuracy/selection
    /// sweeps): resolves `--backend` through the registry and exits with
    /// status 2 — printing the registry's listing for unknown names, or
    /// `reason` for a registered baseline that has no such model.
    pub fn require_hyflexpim(&self, reason: &str) {
        match self.backend_or("hyflexpim") {
            Ok(name) if name == "hyflexpim" => {}
            Ok(name) => {
                eprintln!(
                    "{reason}; --backend {name} is not applicable \
                     (use fig19_backend_serving for cross-backend comparisons)"
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Builds the selected backend bound to `model` through
    /// [`SystemBuilder`], folding in the `--mlc-bits` ablation flag.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemBuilder::build`] validation errors (unknown
    /// backend names, out-of-range rates).
    pub fn build_backend(
        &self,
        default: &str,
        model: ModelConfig,
        slc_rate: f64,
    ) -> hyflex_pim::Result<Box<dyn Backend>> {
        let name = self.backend_or(default)?;
        SystemBuilder::paper()
            .model(model)
            .slc_rate(slc_rate)
            .mlc_bits(self.mlc_mode().bits_per_cell())
            .backend(&name)
            .build()
    }

    /// The binary's seed, unless overridden on the command line.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The `--requests` selection (or `default`). Zero or unparsable
    /// values fall back to the default, like the other numeric flags.
    pub fn requests_or(&self, default: usize) -> usize {
        self.requests.filter(|&n| n > 0).unwrap_or(default)
    }

    /// The `--trace` workload loaded from its file, or `default()` when the
    /// flag is absent.
    ///
    /// # Errors
    ///
    /// Propagates [`RequestTrace::from_file`] errors (unreadable path,
    /// malformed workload line) unchanged.
    pub fn trace_or(
        &self,
        default: impl FnOnce() -> RequestTrace,
    ) -> hyflex_runtime::Result<RequestTrace> {
        match &self.trace {
            None => Ok(default()),
            Some(path) => RequestTrace::from_file(path),
        }
    }

    /// Binary-facing variant of [`BinArgs::trace_or`]: prints the error and
    /// exits with status 2 instead of returning it.
    pub fn trace_or_exit(&self, default: impl FnOnce() -> RequestTrace) -> RequestTrace {
        self.trace_or(default).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// The MLC cell mode selected by `--mlc-bits` (default 2-bit).
    pub fn mlc_mode(&self) -> CellMode {
        match self.mlc_bits {
            Some(bits) => CellMode::Mlc { bits },
            None => CellMode::MLC2,
        }
    }

    /// Worker pool sized by `--threads` (default: machine parallelism).
    pub fn pool(&self) -> JobPool {
        match self.threads {
            Some(threads) => JobPool::new(threads),
            None => JobPool::with_default_parallelism(),
        }
    }

    /// Applies the `--out` flag to the shared output sink. Call once at
    /// binary start-up, before the first printed row.
    pub fn init_output(&self) {
        if let Some(path) = &self.out {
            if let Err(e) = output::tee_to_file(path) {
                eprintln!("warning: cannot open --out {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BinArgs {
        BinArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags_and_ignores_unknown() {
        let args = parse(&[
            "--seed",
            "99",
            "--mlc-bits",
            "3",
            "--out",
            "rows.txt",
            "--threads",
            "4",
            "--verbose",
        ]);
        assert_eq!(args.seed_or(1), 99);
        assert_eq!(args.mlc_mode(), CellMode::Mlc { bits: 3 });
        assert_eq!(args.out.as_deref(), Some(std::path::Path::new("rows.txt")));
        assert_eq!(args.pool().workers(), 4);
    }

    #[test]
    fn defaults_apply_when_flags_are_absent_or_invalid() {
        let args = parse(&[]);
        assert_eq!(args.seed_or(21), 21);
        assert_eq!(args.mlc_mode(), CellMode::MLC2);
        assert!(args.pool().workers() >= 1);
        // Out-of-range MLC level falls back to the default.
        let args = parse(&["--mlc-bits", "9"]);
        assert_eq!(args.mlc_mode(), CellMode::MLC2);
        let args = parse(&["--seed", "not-a-number"]);
        assert_eq!(args.seed_or(5), 5);
    }

    #[test]
    fn serving_flags_parse_and_validate() {
        let args = parse(&["--policy", "edf", "--chips", "4", "--dispatch", "jsq"]);
        assert_eq!(
            args.policy_or(SchedulingPolicy::Fcfs).unwrap(),
            SchedulingPolicy::Edf
        );
        assert_eq!(args.chips_or(1), 4);
        assert_eq!(
            args.dispatch_or(DispatchPolicy::RoundRobin).unwrap(),
            DispatchPolicy::JoinShortestQueue
        );
        // Defaults apply when absent; zero chips falls back to the default.
        let args = parse(&["--requests", "50000", "--smoke"]);
        assert_eq!(args.requests_or(1_000_000), 50_000);
        assert!(args.smoke);
        let args = parse(&["--requests", "0"]);
        assert_eq!(args.requests_or(1_000_000), 1_000_000);
        assert!(!args.smoke);
        let args = parse(&["--chips", "0"]);
        assert_eq!(
            args.policy_or(SchedulingPolicy::Priority).unwrap(),
            SchedulingPolicy::Priority
        );
        assert_eq!(args.chips_or(2), 2);
        assert_eq!(
            args.dispatch_or(DispatchPolicy::JoinShortestQueue).unwrap(),
            DispatchPolicy::JoinShortestQueue
        );
        // Unknown names are errors that list the accepted values.
        let args = parse(&["--policy", "lifo", "--dispatch", "random"]);
        let err = args
            .policy_or(SchedulingPolicy::Fcfs)
            .unwrap_err()
            .to_string();
        assert!(err.contains("lifo") && err.contains("edf"), "{err}");
        let err = args
            .dispatch_or(DispatchPolicy::RoundRobin)
            .unwrap_err()
            .to_string();
        assert!(err.contains("random") && err.contains("jsq"), "{err}");
    }

    #[test]
    fn svd_algo_flag_parses_and_validates() {
        let args = parse(&["--svd-algo", "randomized"]);
        assert_eq!(
            args.svd_algo_or(SvdAlgorithm::Jacobi).unwrap(),
            SvdAlgorithm::Randomized
        );
        // Default applies when the flag is absent.
        let args = parse(&[]);
        assert_eq!(
            args.svd_algo_or(SvdAlgorithm::Jacobi).unwrap(),
            SvdAlgorithm::Jacobi
        );
        // Unknown names are errors that list the accepted values.
        let args = parse(&["--svd-algo", "lapack"]);
        let err = args
            .svd_algo_or(SvdAlgorithm::Jacobi)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("lapack") && err.contains("randomized"),
            "{err}"
        );
    }

    #[test]
    fn trace_flag_loads_workload_files() {
        // Absent flag: the default closure supplies the workload.
        let args = parse(&[]);
        let fallback = args
            .trace_or(|| {
                RequestTrace::new(hyflex_runtime::TrafficConfig {
                    num_requests: 11,
                    ..Default::default()
                })
                .unwrap()
            })
            .unwrap();
        assert_eq!(fallback.collect().len(), 11);
        // Present flag: the file wins over the default.
        let dir =
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-traces");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cli_flag.trace");
        std::fs::write(&path, "process = poisson qps=4000\nnum_requests = 7\n").unwrap();
        let args = parse(&["--trace", path.to_str().unwrap()]);
        let loaded = args.trace_or(|| unreachable!("flag present")).unwrap();
        assert_eq!(loaded.collect().len(), 7);
        // Unreadable paths surface the loader's error.
        let args = parse(&["--trace", "/nonexistent/x.trace"]);
        assert!(args.trace_or(|| unreachable!("flag present")).is_err());
    }

    #[test]
    fn backend_flag_resolves_through_the_registry() {
        let args = parse(&["--backend", "sprint"]);
        assert_eq!(args.backend_or("hyflexpim").unwrap(), "sprint");
        // Default applies when the flag is absent.
        let args = parse(&[]);
        assert_eq!(args.backend_or("hyflexpim").unwrap(), "hyflexpim");
        // Unknown names fail with the registry's listing.
        let args = parse(&["--backend", "gpu"]);
        let err = args.backend_or("hyflexpim").unwrap_err().to_string();
        assert!(err.contains("gpu") && err.contains("hyflexpim"), "{err}");
    }

    #[test]
    fn build_backend_binds_the_model_and_mlc_flag() {
        let args = parse(&["--backend", "non-pim"]);
        let backend = args
            .build_backend(
                "hyflexpim",
                hyflex_transformer::ModelConfig::bert_base(),
                0.05,
            )
            .unwrap();
        assert_eq!(backend.name(), "Non-PIM");
        assert_eq!(backend.model().name, "BERT-Base");
        let args = parse(&["--mlc-bits", "3"]);
        let backend = args
            .build_backend(
                "hyflexpim",
                hyflex_transformer::ModelConfig::bert_base(),
                0.05,
            )
            .unwrap();
        assert!(backend.name().contains("HyFlexPIM"));
    }
}
