//! Shared output sink for the figure/table binaries.
//!
//! Every binary prints its rows to stdout; when the common `--out PATH` flag
//! is given (see [`crate::cli::BinArgs`]) the same lines are also written to
//! the file (created fresh each run, overwriting any previous contents), so
//! sweeps can be archived without shell redirection. The sink is
//! a process-wide global because the binaries' printing is spread across free
//! functions (`print_row`, [`emitln!`](crate::emitln)) rather than threaded
//! through a context value.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

static SINK: Mutex<Option<File>> = Mutex::new(None);

/// Routes subsequent [`emit`] calls to `path` in addition to stdout,
/// truncating any existing file at `path`.
///
/// # Errors
///
/// Propagates file-creation errors.
pub fn tee_to_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("output sink poisoned") = Some(file);
    Ok(())
}

/// Stops teeing to a file (used by tests; binaries just exit).
pub fn reset() {
    *SINK.lock().expect("output sink poisoned") = None;
}

/// Prints one line to stdout and, if configured, the `--out` file.
pub fn emit(line: &str) {
    println!("{line}");
    let mut sink = SINK.lock().expect("output sink poisoned");
    if let Some(file) = sink.as_mut() {
        // Best effort: losing the archive copy should not kill the run.
        let _ = writeln!(file, "{line}");
    }
}

/// `println!`-style wrapper over [`output::emit`](emit).
#[macro_export]
macro_rules! emitln {
    () => { $crate::output::emit("") };
    ($($arg:tt)*) => { $crate::output::emit(&format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tee_writes_emitted_lines_to_the_file() {
        let dir = std::env::temp_dir().join("hyflex-bench-output-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Unique per process: concurrent `cargo test` invocations must not
        // share a file.
        let path = dir.join(format!("rows-{}.txt", std::process::id()));
        tee_to_file(&path).unwrap();
        emit("alpha 1");
        crate::emitln!("beta {}", 2);
        reset();
        emit("gamma 3"); // after reset: stdout only
        let contents = std::fs::read_to_string(&path).unwrap();
        // The sink is process-global and sibling unit tests may emit
        // concurrently, so assert per line rather than on exact contents.
        assert!(contents.contains("alpha 1\n"), "{contents:?}");
        assert!(contents.contains("beta 2\n"), "{contents:?}");
        assert!(!contents.contains("gamma 3"), "{contents:?}");
        std::fs::remove_file(&path).unwrap();
    }
}
