#![forbid(unsafe_code)]
//! # hyflex-bench
//!
//! Benchmark harness for the HyFlexPIM reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Figure/table binaries** (`src/bin/fig*.rs`, `table*.rs`) — one per
//!   table and figure of the paper's evaluation. Each prints the rows or
//!   series the paper reports (normalized energies, accuracies versus SLC
//!   rate, throughput scaling, ...). `EXPERIMENTS.md` records the mapping and
//!   the measured-vs-paper comparison.
//! * **Criterion benches** (`benches/*.rs`) — micro-benchmarks of the
//!   simulation kernels themselves (crossbar GEMV, SVD pipeline, ADC/SFU,
//!   full accelerator evaluation).
//!
//! The helpers in this library keep the binaries small: common experiment
//! setup (train a tiny model, run gradient redistribution) and simple table
//! formatting.

use hyflex_pim::gradient_redistribution::{GradientRedistribution, RedistributionReport};
use hyflex_pim::Result;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::SvdAlgorithm;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use hyflex_workloads::Dataset;

pub mod cli;
pub mod output;

pub use cli::BinArgs;
pub use output::emit;

/// Prints a simple aligned table row (to stdout and, when `--out` is set,
/// the output file).
pub fn print_row(label: &str, values: &[String]) {
    let mut line = format!("{label:<28}");
    for v in values {
        line.push_str(&format!(" {v:>12}"));
    }
    output::emit(&line);
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// A trained tiny model together with its dataset and redistribution report,
/// shared by the accuracy-oriented figure binaries (11, 12, 13).
pub struct FunctionalExperiment {
    /// The factored, fine-tuned model.
    pub model: TransformerModel,
    /// The synthetic dataset it was trained on.
    pub dataset: Dataset,
    /// Gradient-redistribution output (profiles + accuracy checkpoints).
    pub report: RedistributionReport,
    /// The trainer used (for further evaluation calls).
    pub trainer: Trainer,
}

/// Trains a tiny encoder on the given dataset, runs gradient redistribution,
/// and returns everything the accuracy figures need.
///
/// # Errors
///
/// Propagates model/training errors.
pub fn run_functional_experiment(
    config: ModelConfig,
    dataset: Dataset,
    pretrain_epochs: usize,
    finetune_epochs: usize,
    seed: u64,
) -> Result<FunctionalExperiment> {
    run_functional_experiment_with(
        config,
        dataset,
        pretrain_epochs,
        finetune_epochs,
        seed,
        SvdAlgorithm::Jacobi,
    )
}

/// [`run_functional_experiment`] with an explicit SVD algorithm (the
/// `--svd-algo` flag of the accuracy figure binaries lands here; `jacobi`
/// reproduces the recorded figures bit for bit).
///
/// # Errors
///
/// Propagates model/training errors.
pub fn run_functional_experiment_with(
    config: ModelConfig,
    dataset: Dataset,
    pretrain_epochs: usize,
    finetune_epochs: usize,
    seed: u64,
    svd_algorithm: SvdAlgorithm,
) -> Result<FunctionalExperiment> {
    let mut rng = Rng::seed_from(seed);
    let mut model = TransformerModel::new(config, &mut rng)?;
    let trainer = Trainer::new(
        AdamWConfig {
            learning_rate: 3e-3,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        },
        16,
    );
    trainer.train(&mut model, &dataset.train, pretrain_epochs)?;
    let pipeline = GradientRedistribution {
        finetune_epochs,
        svd_algorithm,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline.apply(&mut model, &dataset.train, &dataset.eval)?;
    Ok(FunctionalExperiment {
        model,
        dataset,
        report,
        trainer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_workloads::glue::{self, GlueConfig, GlueTask};

    #[test]
    fn fmt_and_rows_do_not_panic() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        print_row("label", &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn functional_experiment_produces_profiles() {
        let dataset = glue::generate(GlueTask::Sst2, &GlueConfig::default(), 3);
        let exp =
            run_functional_experiment(ModelConfig::tiny_encoder(2), dataset, 2, 1, 3).unwrap();
        assert_eq!(exp.report.layer_profiles.len(), 12);
        assert!(!exp.dataset.eval.is_empty());
    }
}
