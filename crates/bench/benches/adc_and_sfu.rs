//! Criterion benches for the mixed-signal peripheral models: SAR ADC
//! conversion in 6-b and 7-b modes, and the SFU non-linear kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use hyflex_circuits::adc::{AdcMode, SarAdc};
use hyflex_circuits::SpecialFunctionUnit;
use std::hint::black_box;

fn bench_adc(c: &mut Criterion) {
    let slc = SarAdc::for_crossbar(AdcMode::Slc6Bit, 64, 1).unwrap();
    let mlc = SarAdc::for_crossbar(AdcMode::Mlc7Bit, 64, 2).unwrap();
    let samples: Vec<f64> = (0..128).map(|i| (i as f64) * 0.43 % 64.0).collect();
    let mut group = c.benchmark_group("adc/128_bitline_conversions");
    group.bench_function("slc_6bit", |b| {
        b.iter(|| {
            samples
                .iter()
                .map(|&s| slc.convert(black_box(s)).code)
                .sum::<u32>()
        })
    });
    group.bench_function("mlc_7bit", |b| {
        b.iter(|| {
            samples
                .iter()
                .map(|&s| mlc.convert(black_box(s * 3.0)).code)
                .sum::<u32>()
        })
    });
    group.finish();
}

fn bench_sfu(c: &mut Criterion) {
    let mut sfu = SpecialFunctionUnit::new();
    let logits: Vec<f32> = (0..256).map(|i| ((i % 23) as f32 - 11.0) * 0.3).collect();
    let gamma = vec![1.0f32; 256];
    let beta = vec![0.0f32; 256];
    let mut group = c.benchmark_group("sfu/256_inputs");
    group.bench_function("softmax", |b| b.iter(|| sfu.softmax(black_box(&logits))));
    group.bench_function("layer_norm", |b| {
        b.iter(|| sfu.layer_norm(black_box(&logits), &gamma, &beta).unwrap())
    });
    group.bench_function("gelu", |b| b.iter(|| sfu.gelu(black_box(&logits))));
    group.finish();
}

criterion_group!(benches, bench_adc, bench_sfu);
criterion_main!(benches);
