//! Criterion benches for the pooled gradient-redistribution factorization:
//! every static layer of the tiny 2-block encoder decomposed serially vs on
//! the persistent work-stealing pool, with both SVD algorithms.
//!
//! The serial and pooled paths are bit-identical by construction (each
//! layer's sketch is seeded from its own name), so this bench measures pure
//! scheduling cost/win at equal output.

use criterion::{criterion_group, criterion_main, Criterion};
use hyflex_parallel::JobPool;
use hyflex_pim::gradient_redistribution::{GradientRedistribution, SvdAlgorithm};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use std::hint::black_box;

fn bench_factorize_model(c: &mut Criterion) {
    let mut rng = Rng::seed_from(11);
    let model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
    let trainer = Trainer::new(AdamWConfig::default(), 16);

    for algorithm in [SvdAlgorithm::Jacobi, SvdAlgorithm::Randomized] {
        let pipeline = GradientRedistribution {
            svd_algorithm: algorithm,
            ..GradientRedistribution::new(trainer)
        };
        let mut group = c.benchmark_group(format!("grad_redistribution/factorize_{algorithm}"));
        group.bench_function("serial", |b| {
            b.iter(|| {
                let mut m = black_box(&model).clone();
                pipeline.factorize_model(&mut m).unwrap();
                m
            })
        });
        for workers in [2usize, 4] {
            let pool = JobPool::new(workers);
            group.bench_function(format!("pooled_{workers}"), |b| {
                b.iter(|| {
                    let mut m = black_box(&model).clone();
                    pipeline.factorize_model_pooled(&mut m, &pool).unwrap();
                    m
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_factorize_model);
criterion_main!(benches);
