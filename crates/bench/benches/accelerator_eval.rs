//! Criterion benches for the architecture-level evaluation paths used by the
//! figure binaries: the HyFlexPIM performance model and the baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use hyflex_baselines::{Accelerator, Asadi, AsadiPrecision, NonPim, Sprint};
use hyflex_pim::perf::{EvaluationPoint, PerformanceModel};
use hyflex_pim::scalability::ScalabilityModel;
use hyflex_transformer::ModelConfig;
use std::hint::black_box;

fn bench_perf_model(c: &mut Criterion) {
    let model = PerformanceModel::paper_default();
    let point = EvaluationPoint {
        model: ModelConfig::bert_large(),
        seq_len: 1024,
        slc_rank_fraction: 0.1,
    };
    c.bench_function("perf/hyflexpim_bert_large_n1024", |b| {
        b.iter(|| model.evaluate(black_box(&point)).unwrap())
    });
}

fn bench_baselines(c: &mut Criterion) {
    let config = ModelConfig::bert_large();
    let mut group = c.benchmark_group("perf/baselines_end_to_end_n1024");
    group.bench_function("asadi_int8", |b| {
        let acc = Asadi::new(AsadiPrecision::Int8);
        b.iter(|| acc.end_to_end_energy(black_box(&config), 1024).unwrap())
    });
    group.bench_function("sprint", |b| {
        let acc = Sprint::new();
        b.iter(|| acc.end_to_end_energy(black_box(&config), 1024).unwrap())
    });
    group.bench_function("non_pim", |b| {
        let acc = NonPim::new();
        b.iter(|| acc.end_to_end_energy(black_box(&config), 1024).unwrap())
    });
    group.finish();
}

fn bench_scalability(c: &mut Criterion) {
    let model = ScalabilityModel::paper_default();
    c.bench_function("perf/figure17_sweep", |b| {
        b.iter(|| model.figure17().unwrap())
    });
}

criterion_group!(
    benches,
    bench_perf_model,
    bench_baselines,
    bench_scalability
);
criterion_main!(benches);
