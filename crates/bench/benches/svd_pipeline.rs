//! Criterion benches for the SVD / gradient-redistribution pipeline pieces.

use criterion::{criterion_group, criterion_main, Criterion};
use hyflex_tensor::rng::Rng;
use hyflex_tensor::{svd, Matrix};
use hyflex_transformer::layers::Linear;
use hyflex_transformer::FactoredLinear;
use std::hint::black_box;

fn bench_svd(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let mut group = c.benchmark_group("svd/jacobi");
    for &size in &[16usize, 32, 64] {
        let w = Matrix::random_normal(size, size, 0.0, 0.5, &mut rng);
        group.bench_function(format!("{size}x{size}"), |b| {
            b.iter(|| svd::svd(black_box(&w)).unwrap())
        });
    }
    group.finish();
}

/// Jacobi vs randomized at the paper's hard-threshold rank — the truncated
/// decomposition `GradientRedistribution::apply` actually needs.
fn bench_svd_algorithms_at_hard_threshold(c: &mut Criterion) {
    let mut rng = Rng::seed_from(5);
    for &size in &[32usize, 64] {
        let w = Matrix::random_normal(size, size, 0.0, 0.5, &mut rng);
        let k = svd::hard_threshold_rank(size, size);
        let mut group = c.benchmark_group(format!("svd/truncated_{size}x{size}_rank{k}"));
        group.bench_function("jacobi", |b| {
            b.iter(|| svd::svd_with(black_box(&w), svd::SvdAlgorithm::Jacobi, k).unwrap())
        });
        group.bench_function("randomized", |b| {
            b.iter(|| svd::svd_with(black_box(&w), svd::SvdAlgorithm::Randomized, k).unwrap())
        });
        group.finish();
    }
}

fn bench_factored_layer(c: &mut Criterion) {
    let mut rng = Rng::seed_from(4);
    let weight = Matrix::random_normal(64, 64, 0.0, 0.5, &mut rng);
    let dense = Linear::from_weight(weight.clone());
    let mut factored = FactoredLinear::from_weight_hard_threshold(&weight).unwrap();
    let x = Matrix::random_normal(16, 64, 0.0, 1.0, &mut rng);
    let upstream = Matrix::random_normal(16, 64, 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("factored_linear_64x64");
    group.bench_function("factorize_hard_threshold", |b| {
        b.iter(|| FactoredLinear::from_weight_hard_threshold(black_box(&weight)).unwrap())
    });
    group.bench_function("dense_forward", |b| {
        b.iter(|| dense.forward(black_box(&x)).unwrap())
    });
    group.bench_function("factored_forward", |b| {
        b.iter(|| factored.forward(black_box(&x)).unwrap())
    });
    group.bench_function("factored_backward", |b| {
        b.iter(|| {
            factored
                .backward(black_box(&x), black_box(&upstream))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_svd,
    bench_svd_algorithms_at_hard_threshold,
    bench_factored_layer
);
criterion_main!(benches);
