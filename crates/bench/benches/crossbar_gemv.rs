//! Criterion benches for the RRAM crossbar substrate: cell-level column sums,
//! digit-level bit-serial GEMV in SLC and MLC modes, and digital NOR-PIM dot
//! products.

use criterion::{criterion_group, criterion_main, Criterion};
use hyflex_rram::cell::CellMode;
use hyflex_rram::crossbar::CrossbarArray;
use hyflex_rram::digital::DigitalPimModule;
use hyflex_rram::mapping::{MappedMatrix, WeightMapping};
use hyflex_rram::noise::NoiseModel;
use hyflex_rram::spec::ArraySpec;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use std::hint::black_box;

fn bench_cell_level_crossbar(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let mut xbar = CrossbarArray::new(
        ArraySpec::analog(),
        CellMode::MLC2,
        NoiseModel::calibrated_to_paper(),
    )
    .unwrap();
    let levels = Matrix::from_fn(64, 128, |r, c| ((r + c) % 4) as f32);
    xbar.program_levels(&levels, &mut rng).unwrap();
    let active = vec![true; 64];
    c.bench_function("crossbar/cell_level_column_sums_64x128", |b| {
        b.iter(|| xbar.column_level_sums(black_box(&active)).unwrap())
    });
}

fn bench_bit_serial_gemv(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let weights = Matrix::random_normal(64, 32, 0.0, 0.5, &mut rng);
    let input: Vec<f32> = (0..64).map(|_| rng.normal() as f32).collect();
    let noise = NoiseModel::calibrated_to_paper();

    let slc =
        MappedMatrix::program(&weights, WeightMapping::slc_default(), &noise, &mut rng).unwrap();
    let mlc =
        MappedMatrix::program(&weights, WeightMapping::mlc_default(), &noise, &mut rng).unwrap();

    let mut group = c.benchmark_group("crossbar/bit_serial_gemv_64x32");
    group.bench_function("slc_6b_adc", |b| {
        b.iter(|| slc.gemv(black_box(&input)).unwrap())
    });
    group.bench_function("mlc_7b_adc", |b| {
        b.iter(|| mlc.gemv(black_box(&input)).unwrap())
    });
    group.finish();
}

/// A 4-tile matrix: the shape where the program-time tile plans and the
/// row-tile pool parallelism of `gemv_pooled` matter.
fn bench_multi_tile_gemv(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let weights = Matrix::random_normal(256, 32, 0.0, 0.5, &mut rng);
    let input: Vec<f32> = (0..256).map(|_| rng.normal() as f32).collect();
    let noise = NoiseModel::calibrated_to_paper();
    let slc =
        MappedMatrix::program(&weights, WeightMapping::slc_default(), &noise, &mut rng).unwrap();
    let pool = hyflex_parallel::JobPool::with_default_parallelism();

    let mut group = c.benchmark_group("crossbar/bit_serial_gemv_256x32");
    group.bench_function("slc_6b_adc_serial", |b| {
        b.iter(|| slc.gemv(black_box(&input)).unwrap())
    });
    group.bench_function("slc_6b_adc_pooled", |b| {
        b.iter(|| slc.gemv_pooled(black_box(&input), &pool).unwrap())
    });
    group.finish();
}

fn bench_digital_pim(c: &mut Criterion) {
    let mut module = DigitalPimModule::paper_default();
    let q: Vec<Vec<i32>> = (0..16)
        .map(|i| (0..64).map(|j| ((i * j) % 17) - 8).collect())
        .collect();
    let k = q.clone();
    c.bench_function("digital_pim/qk_scores_16x64", |b| {
        b.iter(|| {
            module
                .matmul_transposed(black_box(&q), black_box(&k))
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_cell_level_crossbar,
    bench_bit_serial_gemv,
    bench_multi_tile_gemv,
    bench_digital_pim
);
criterion_main!(benches);
