//! Position-wise feed-forward network (FFN1 → GELU → FFN2).
//!
//! The two FFN matrices dominate the weight volume and MAC count of a
//! transformer at short-to-moderate sequence lengths (paper Figure 2), which
//! is why HyFlexPIM's gains over attention-only accelerators such as SPRINT
//! are largest in that regime.

use crate::layers::{AnyLinear, Layer, LayerCtx, Linear};
use crate::param::{Param, ParamPath, ParamVisit};
use crate::Result;
use hyflex_tensor::activations::{gelu, gelu_derivative};
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Two-layer feed-forward block with GELU activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedForward {
    fc1: AnyLinear,
    fc2: AnyLinear,
}

impl FeedForward {
    /// Creates an FFN mapping `dim → ffn_dim → dim`.
    pub fn new(dim: usize, ffn_dim: usize, rng: &mut Rng) -> Self {
        FeedForward {
            fc1: AnyLinear::Dense(Linear::new(dim, ffn_dim, rng)),
            fc2: AnyLinear::Dense(Linear::new(ffn_dim, dim, rng)),
        }
    }

    /// Model (outer) dimension.
    pub fn dim(&self) -> usize {
        self.fc1.in_dim()
    }

    /// Inner (expanded) dimension.
    pub fn ffn_dim(&self) -> usize {
        self.fc1.out_dim()
    }

    /// Access to `[FFN1, FFN2]` for factorization and noise injection.
    pub fn layers_mut(&mut self) -> [&mut AnyLinear; 2] {
        [&mut self.fc1, &mut self.fc2]
    }

    /// Immutable access to `[FFN1, FFN2]`.
    pub fn layers(&self) -> [&AnyLinear; 2] {
        [&self.fc1, &self.fc2]
    }

    /// Forward pass over a `[L, dim]` matrix.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the linear layers.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let hidden = self.fc1.forward(x)?;
        let activated = hidden.map(gelu);
        self.fc2.forward(&activated)
    }

    /// Backward pass: accumulates layer gradients and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the linear layers.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Result<Matrix> {
        let hidden = self.fc1.forward(x)?;
        let activated = hidden.map(gelu);
        let d_activated = self.fc2.backward(&activated, grad_out)?;
        let d_hidden = d_activated.hadamard(&hidden.map(gelu_derivative))?;
        self.fc1.backward(x, &d_hidden)
    }
}

impl ParamVisit for FeedForward {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        path.scope("fc1", |p| self.fc1.visit_params(p, f));
        path.scope("fc2", |p| self.fc2.visit_params(p, f));
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        path.scope("fc1", |p| self.fc1.visit_params_mut(p, f));
        path.scope("fc2", |p| self.fc2.visit_params_mut(p, f));
    }
}

impl Layer for FeedForward {
    fn forward(&self, x: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        FeedForward::forward(self, x)
    }

    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        FeedForward::backward(self, x, grad_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::AdamWConfig;

    #[test]
    fn forward_shape_and_parameter_count() {
        let mut rng = Rng::seed_from(1);
        let ffn = FeedForward::new(8, 32, &mut rng);
        assert_eq!(ffn.dim(), 8);
        assert_eq!(ffn.ffn_dim(), 32);
        let x = Matrix::random_normal(3, 8, 0.0, 1.0, &mut rng);
        let y = ffn.forward(&x).unwrap();
        assert_eq!(y.shape(), (3, 8));
        assert_eq!(ffn.parameter_count(), (8 * 32 + 32) + (32 * 8 + 8));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(2);
        let ffn = FeedForward::new(5, 12, &mut rng);
        let x = Matrix::random_normal(2, 5, 0.0, 0.8, &mut rng);
        let upstream = Matrix::random_normal(2, 5, 0.0, 1.0, &mut rng);
        let mut ffn_mut = ffn.clone();
        let d_input = ffn_mut.backward(&x, &upstream).unwrap();
        let loss = |input: &Matrix| -> f32 {
            ffn.forward(input)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.at(r, c) + 1e-2);
                let mut minus = x.clone();
                minus.set(r, c, x.at(r, c) - 1e-2);
                let numeric = (loss(&plus) - loss(&minus)) / 2e-2;
                assert!(
                    (d_input.at(r, c) - numeric).abs() < 3e-2,
                    "ffn d_input[{r},{c}]: {} vs {}",
                    d_input.at(r, c),
                    numeric
                );
            }
        }
    }

    #[test]
    fn ffn_layers_can_be_factorized() {
        let mut rng = Rng::seed_from(3);
        let mut ffn = FeedForward::new(8, 16, &mut rng);
        let x = Matrix::random_normal(2, 8, 0.0, 1.0, &mut rng);
        let dense_out = ffn.forward(&x).unwrap();
        for layer in ffn.layers_mut() {
            let full_rank = layer.in_dim().min(layer.out_dim());
            layer.factorize(full_rank).unwrap();
        }
        let factored_out = ffn.forward(&x).unwrap();
        assert!(dense_out.approx_eq(&factored_out, 1e-2));
    }

    #[test]
    fn training_reduces_loss_on_a_simple_mapping() {
        let mut rng = Rng::seed_from(4);
        let mut ffn = FeedForward::new(4, 16, &mut rng);
        let config = AdamWConfig {
            learning_rate: 0.01,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        let inputs: Vec<Matrix> = (0..16)
            .map(|_| Matrix::random_normal(1, 4, 0.0, 1.0, &mut rng))
            .collect();
        // Target: negate the input.
        let loss_of = |ffn: &FeedForward| -> f32 {
            inputs
                .iter()
                .map(|x| {
                    let y = ffn.forward(x).unwrap();
                    y.add(x)
                        .unwrap()
                        .as_slice()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>()
                })
                .sum::<f32>()
                / inputs.len() as f32
        };
        let initial = loss_of(&ffn);
        for _ in 0..150 {
            ffn.zero_grad();
            for x in &inputs {
                let y = ffn.forward(x).unwrap();
                let grad = y.add(x).unwrap().scale(2.0);
                ffn.backward(x, &grad).unwrap();
            }
            ffn.step(&config, inputs.len());
        }
        let trained = loss_of(&ffn);
        assert!(trained < initial * 0.5, "{initial} -> {trained}");
    }
}
