//! Task-level evaluation metrics.
//!
//! The paper reports accuracy for most GLUE tasks and CIFAR-10, Matthews
//! correlation for CoLA, Pearson correlation for STS-B, and evaluation loss
//! for the decoder models. [`TaskMetrics`] packages those so the benchmark
//! harness can print whichever one the paper uses for a given task.

use hyflex_tensor::stats::{self, ConfusionMatrix};
use serde::{Deserialize, Serialize};

/// Quality metrics for one evaluation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskMetrics {
    /// Classification metrics.
    Classification {
        /// Plain accuracy in `[0, 1]`.
        accuracy: f64,
        /// Matthews correlation coefficient (binary tasks; 0 otherwise).
        matthews: f64,
        /// F1 score (binary tasks; 0 otherwise).
        f1: f64,
    },
    /// Regression metrics.
    Regression {
        /// Pearson correlation between predictions and targets.
        pearson: f64,
    },
    /// Language-modeling metrics.
    LanguageModeling {
        /// Mean cross-entropy loss (natural log).
        loss: f64,
        /// Perplexity `exp(loss)`.
        perplexity: f64,
    },
}

impl TaskMetrics {
    /// Builds classification metrics from predicted and true class indices.
    pub fn classification(predicted: &[usize], actual: &[usize]) -> Self {
        let accuracy = stats::accuracy(predicted, actual);
        // Binary confusion-matrix metrics when the label space is {0, 1}.
        let is_binary = predicted.iter().chain(actual.iter()).all(|&c| c < 2);
        let (matthews, f1) = if is_binary && !predicted.is_empty() {
            let p: Vec<bool> = predicted.iter().map(|&c| c == 1).collect();
            let a: Vec<bool> = actual.iter().map(|&c| c == 1).collect();
            let cm = ConfusionMatrix::from_labels(&p, &a);
            (cm.matthews_correlation(), cm.f1())
        } else {
            (0.0, 0.0)
        };
        TaskMetrics::Classification {
            accuracy,
            matthews,
            f1,
        }
    }

    /// Builds regression metrics from predictions and targets.
    pub fn regression(predicted: &[f32], actual: &[f32]) -> Self {
        TaskMetrics::Regression {
            pearson: stats::pearson(predicted, actual),
        }
    }

    /// Builds language-modeling metrics from the mean cross-entropy loss.
    pub fn language_modeling(mean_loss: f64) -> Self {
        TaskMetrics::LanguageModeling {
            loss: mean_loss,
            perplexity: stats::perplexity(mean_loss),
        }
    }

    /// The single "headline" number the paper reports for this kind of task:
    /// accuracy, Matthews correlation (if the accuracy field is not the
    /// published metric the caller can still read it directly), Pearson, or
    /// negative loss (so that "higher is better" holds uniformly).
    pub fn primary_value(&self) -> f64 {
        match self {
            TaskMetrics::Classification { accuracy, .. } => *accuracy,
            TaskMetrics::Regression { pearson } => *pearson,
            TaskMetrics::LanguageModeling { loss, .. } => -loss,
        }
    }

    /// Accuracy, if this is a classification metric.
    pub fn accuracy(&self) -> Option<f64> {
        match self {
            TaskMetrics::Classification { accuracy, .. } => Some(*accuracy),
            _ => None,
        }
    }

    /// Matthews correlation, if this is a classification metric.
    pub fn matthews(&self) -> Option<f64> {
        match self {
            TaskMetrics::Classification { matthews, .. } => Some(*matthews),
            _ => None,
        }
    }

    /// Pearson correlation, if this is a regression metric.
    pub fn pearson(&self) -> Option<f64> {
        match self {
            TaskMetrics::Regression { pearson } => Some(*pearson),
            _ => None,
        }
    }

    /// Evaluation loss, if this is a language-modeling metric.
    pub fn loss(&self) -> Option<f64> {
        match self {
            TaskMetrics::LanguageModeling { loss, .. } => Some(*loss),
            _ => None,
        }
    }

    /// Perplexity, if this is a language-modeling metric.
    pub fn perplexity(&self) -> Option<f64> {
        match self {
            TaskMetrics::LanguageModeling { perplexity, .. } => Some(*perplexity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_metrics_for_perfect_predictions() {
        let m = TaskMetrics::classification(&[0, 1, 1, 0], &[0, 1, 1, 0]);
        assert_eq!(m.accuracy(), Some(1.0));
        assert_eq!(m.matthews(), Some(1.0));
        assert!((m.primary_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiclass_predictions_skip_binary_metrics() {
        let m = TaskMetrics::classification(&[0, 1, 2], &[0, 2, 2]);
        assert!((m.accuracy().unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.matthews(), Some(0.0));
    }

    #[test]
    fn regression_metrics_report_pearson() {
        let m = TaskMetrics::regression(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
        assert!((m.pearson().unwrap() - 1.0).abs() < 1e-9);
        assert!(m.accuracy().is_none());
    }

    #[test]
    fn language_modeling_metrics_expose_loss_and_perplexity() {
        let m = TaskMetrics::language_modeling(2.0);
        assert_eq!(m.loss(), Some(2.0));
        assert!((m.perplexity().unwrap() - 2.0f64.exp()).abs() < 1e-9);
        assert!((m.primary_value() + 2.0).abs() < 1e-12);
    }
}
