//! Model configurations: the paper's evaluation models and trainable
//! reduced-scale counterparts.

use crate::error::ModelError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// High-level architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Bidirectional encoder (BERT-style); attention is unmasked.
    Encoder,
    /// Autoregressive decoder (GPT-style); attention is causally masked.
    Decoder,
    /// Vision transformer: patch features in, class logits out.
    VisionEncoder,
}

/// The downstream task a model instance is trained for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Sequence classification into `num_classes` classes (GLUE, CIFAR).
    Classification {
        /// Number of output classes.
        num_classes: usize,
    },
    /// Scalar regression (STS-B).
    Regression,
    /// Next-token language modeling (WikiText-2, PTB).
    LanguageModeling,
}

impl TaskKind {
    /// Output dimension of the task head (vocabulary size for LM heads is
    /// resolved by the model, which passes `vocab_size`).
    pub fn head_outputs(&self, vocab_size: usize) -> usize {
        match self {
            TaskKind::Classification { num_classes } => *num_classes,
            TaskKind::Regression => 1,
            TaskKind::LanguageModeling => vocab_size,
        }
    }
}

/// Shape of one static (weight-stationary) linear layer in a transformer
/// block, used by the hardware mapping and the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StaticLayerKind {
    /// Query projection `W_Q` (Dh × Dh).
    Query,
    /// Key projection `W_K` (Dh × Dh).
    Key,
    /// Value projection `W_V` (Dh × Dh).
    Value,
    /// Output projection `W_proj` (Dh × Dh).
    Projection,
    /// First feed-forward matrix (Dh × Dff).
    Ffn1,
    /// Second feed-forward matrix (Dff × Dh).
    Ffn2,
}

impl StaticLayerKind {
    /// All six static layers in the paper's order.
    pub fn all() -> [StaticLayerKind; 6] {
        [
            StaticLayerKind::Query,
            StaticLayerKind::Key,
            StaticLayerKind::Value,
            StaticLayerKind::Projection,
            StaticLayerKind::Ffn1,
            StaticLayerKind::Ffn2,
        ]
    }
}

/// A transformer model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Architecture family.
    pub kind: ModelKind,
    /// Downstream task.
    pub task: TaskKind,
    /// Number of transformer blocks.
    pub num_layers: usize,
    /// Hidden dimension `D_h`.
    pub hidden_dim: usize,
    /// Feed-forward inner dimension `D_ff`.
    pub ffn_dim: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Maximum sequence length the model is instantiated for.
    pub max_seq_len: usize,
    /// Vocabulary size (token models) — ignored by vision models.
    pub vocab_size: usize,
    /// Patch feature dimension for vision models (`None` for token models).
    pub patch_dim: Option<usize>,
}

impl ModelConfig {
    /// Validates dimensional consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero or inconsistent sizes.
    pub fn validate(&self) -> Result<()> {
        if self.num_layers == 0
            || self.hidden_dim == 0
            || self.ffn_dim == 0
            || self.num_heads == 0
            || self.max_seq_len == 0
        {
            return Err(ModelError::InvalidConfig(format!(
                "{}: all dimensions must be non-zero",
                self.name
            )));
        }
        if !self.hidden_dim.is_multiple_of(self.num_heads) {
            return Err(ModelError::InvalidConfig(format!(
                "{}: hidden dim {} not divisible by {} heads",
                self.name, self.hidden_dim, self.num_heads
            )));
        }
        match self.kind {
            ModelKind::VisionEncoder => {
                if self.patch_dim.is_none() {
                    return Err(ModelError::InvalidConfig(format!(
                        "{}: vision models need a patch dimension",
                        self.name
                    )));
                }
            }
            ModelKind::Encoder | ModelKind::Decoder => {
                if self.vocab_size == 0 {
                    return Err(ModelError::InvalidConfig(format!(
                        "{}: token models need a vocabulary",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether attention should be causally masked.
    pub fn is_causal(&self) -> bool {
        matches!(self.kind, ModelKind::Decoder)
    }

    /// Shape `(rows, cols)` of one static linear layer.
    pub fn static_layer_shape(&self, layer: StaticLayerKind) -> (usize, usize) {
        match layer {
            StaticLayerKind::Query
            | StaticLayerKind::Key
            | StaticLayerKind::Value
            | StaticLayerKind::Projection => (self.hidden_dim, self.hidden_dim),
            StaticLayerKind::Ffn1 => (self.hidden_dim, self.ffn_dim),
            StaticLayerKind::Ffn2 => (self.ffn_dim, self.hidden_dim),
        }
    }

    /// Total number of static-weight parameters per block
    /// (the weights HyFlexPIM stores in analog RRAM).
    pub fn static_params_per_layer(&self) -> usize {
        StaticLayerKind::all()
            .iter()
            .map(|l| {
                let (r, c) = self.static_layer_shape(*l);
                r * c
            })
            .sum()
    }

    /// Total static-weight parameters for the whole model.
    pub fn static_params_total(&self) -> usize {
        self.static_params_per_layer() * self.num_layers
    }

    /// Rough total parameter count including embeddings and heads.
    pub fn approx_total_params(&self) -> usize {
        let embeddings = match self.kind {
            ModelKind::VisionEncoder => self.patch_dim.unwrap_or(0) * self.hidden_dim,
            _ => (self.vocab_size + self.max_seq_len) * self.hidden_dim,
        };
        let head = self.hidden_dim * self.task.head_outputs(self.vocab_size);
        self.static_params_total() + embeddings + head + 4 * self.hidden_dim * self.num_layers
    }

    // ----- Paper-scale configurations (used analytically) -----

    /// BERT-Base: 12 layers, hidden 768, FFN 3072, 12 heads (GLUE, MSL 128).
    pub fn bert_base() -> Self {
        ModelConfig {
            name: "BERT-Base".to_string(),
            kind: ModelKind::Encoder,
            task: TaskKind::Classification { num_classes: 2 },
            num_layers: 12,
            hidden_dim: 768,
            ffn_dim: 3072,
            num_heads: 12,
            max_seq_len: 128,
            vocab_size: 30_522,
            patch_dim: None,
        }
    }

    /// BERT-Large: 24 layers, hidden 1024, FFN 4096, 16 heads.
    pub fn bert_large() -> Self {
        ModelConfig {
            name: "BERT-Large".to_string(),
            kind: ModelKind::Encoder,
            task: TaskKind::Classification { num_classes: 2 },
            num_layers: 24,
            hidden_dim: 1024,
            ffn_dim: 4096,
            num_heads: 16,
            max_seq_len: 128,
            vocab_size: 30_522,
            patch_dim: None,
        }
    }

    /// GPT-2 Small: 12 layers, hidden 768, FFN 3072 (WikiText-2, MSL 1024).
    pub fn gpt2_small() -> Self {
        ModelConfig {
            name: "GPT-2".to_string(),
            kind: ModelKind::Decoder,
            task: TaskKind::LanguageModeling,
            num_layers: 12,
            hidden_dim: 768,
            ffn_dim: 3072,
            num_heads: 12,
            max_seq_len: 1024,
            vocab_size: 50_257,
            patch_dim: None,
        }
    }

    /// Llama-3.2-1B: 16 layers, hidden 2048, FFN 8192, 32 heads (PTB, MSL 100).
    pub fn llama3_1b() -> Self {
        ModelConfig {
            name: "Llama3".to_string(),
            kind: ModelKind::Decoder,
            task: TaskKind::LanguageModeling,
            num_layers: 16,
            hidden_dim: 2048,
            ffn_dim: 8192,
            num_heads: 32,
            max_seq_len: 100,
            vocab_size: 128_256,
            patch_dim: None,
        }
    }

    /// ViT-Base: 12 layers, hidden 768, FFN 3072 (CIFAR-10, 224×224, 16×16 patches).
    pub fn vit_base() -> Self {
        ModelConfig {
            name: "ViT-Base".to_string(),
            kind: ModelKind::VisionEncoder,
            task: TaskKind::Classification { num_classes: 10 },
            num_layers: 12,
            hidden_dim: 768,
            ffn_dim: 3072,
            num_heads: 12,
            max_seq_len: 197,
            vocab_size: 0,
            patch_dim: Some(16 * 16 * 3),
        }
    }

    /// All five paper-scale configurations.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            ModelConfig::bert_base(),
            ModelConfig::bert_large(),
            ModelConfig::gpt2_small(),
            ModelConfig::llama3_1b(),
            ModelConfig::vit_base(),
        ]
    }

    // ----- Trainable reduced-scale configurations -----

    /// A tiny encoder used for the functional accuracy experiments.
    pub fn tiny_encoder(num_classes: usize) -> Self {
        ModelConfig {
            name: "Tiny-Encoder".to_string(),
            kind: ModelKind::Encoder,
            task: TaskKind::Classification { num_classes },
            num_layers: 2,
            hidden_dim: 32,
            ffn_dim: 64,
            num_heads: 2,
            max_seq_len: 16,
            vocab_size: 64,
            patch_dim: None,
        }
    }

    /// A tiny encoder with a regression head (STS-B stand-in).
    pub fn tiny_encoder_regression() -> Self {
        ModelConfig {
            task: TaskKind::Regression,
            name: "Tiny-Encoder-Regression".to_string(),
            ..ModelConfig::tiny_encoder(2)
        }
    }

    /// A tiny decoder used for the functional loss experiments.
    pub fn tiny_decoder() -> Self {
        ModelConfig {
            name: "Tiny-Decoder".to_string(),
            kind: ModelKind::Decoder,
            task: TaskKind::LanguageModeling,
            num_layers: 2,
            hidden_dim: 32,
            ffn_dim: 64,
            num_heads: 2,
            max_seq_len: 16,
            vocab_size: 64,
            patch_dim: None,
        }
    }

    /// A tiny vision transformer used for the CIFAR-10 stand-in.
    pub fn tiny_vit(num_classes: usize) -> Self {
        ModelConfig {
            name: "Tiny-ViT".to_string(),
            kind: ModelKind::VisionEncoder,
            task: TaskKind::Classification { num_classes },
            num_layers: 2,
            hidden_dim: 32,
            ffn_dim: 64,
            num_heads: 2,
            max_seq_len: 16,
            vocab_size: 0,
            patch_dim: Some(24),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid_and_match_published_dims() {
        for config in ModelConfig::paper_models() {
            config.validate().unwrap();
        }
        let base = ModelConfig::bert_base();
        assert_eq!(base.num_layers, 12);
        assert_eq!(base.hidden_dim, 768);
        assert_eq!(base.ffn_dim, 3072);
        let large = ModelConfig::bert_large();
        assert_eq!(large.num_layers, 24);
        assert_eq!(large.hidden_dim, 1024);
        let llama = ModelConfig::llama3_1b();
        assert_eq!(llama.hidden_dim, 2048);
        assert!(llama.is_causal());
        assert!(!base.is_causal());
    }

    #[test]
    fn static_layer_shapes_match_figure_1() {
        let c = ModelConfig::bert_base();
        assert_eq!(c.static_layer_shape(StaticLayerKind::Query), (768, 768));
        assert_eq!(c.static_layer_shape(StaticLayerKind::Ffn1), (768, 3072));
        assert_eq!(c.static_layer_shape(StaticLayerKind::Ffn2), (3072, 768));
        // 4 * Dh^2 + 2 * Dh * Dff per layer.
        assert_eq!(c.static_params_per_layer(), 4 * 768 * 768 + 2 * 768 * 3072);
        assert_eq!(c.static_params_total(), 12 * c.static_params_per_layer());
    }

    #[test]
    fn bert_base_total_params_are_in_the_right_ballpark() {
        let c = ModelConfig::bert_base();
        let params = c.approx_total_params();
        // BERT-Base is ~110M parameters.
        assert!(params > 80_000_000 && params < 140_000_000, "{params}");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ModelConfig::bert_base();
        c.num_heads = 7;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::bert_base();
        c.num_layers = 0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::vit_base();
        c.patch_dim = None;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::bert_base();
        c.vocab_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_configs_are_valid_and_small() {
        for config in [
            ModelConfig::tiny_encoder(2),
            ModelConfig::tiny_encoder_regression(),
            ModelConfig::tiny_decoder(),
            ModelConfig::tiny_vit(10),
        ] {
            config.validate().unwrap();
            assert!(config.approx_total_params() < 200_000);
        }
    }

    #[test]
    fn task_head_outputs() {
        assert_eq!(
            TaskKind::Classification { num_classes: 3 }.head_outputs(100),
            3
        );
        assert_eq!(TaskKind::Regression.head_outputs(100), 1);
        assert_eq!(TaskKind::LanguageModeling.head_outputs(100), 100);
    }

    #[test]
    fn all_static_layer_kinds_enumerated() {
        assert_eq!(StaticLayerKind::all().len(), 6);
    }
}
