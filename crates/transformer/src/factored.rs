//! Truncated-SVD factored linear layers.
//!
//! The paper's gradient redistribution (Section 4) replaces every static
//! weight matrix `W` with its truncated SVD `U_k Σ_k V_kᵀ`, keeps the three
//! factors as separate trainable parameters, fine-tunes for 1–3 epochs, and
//! then ranks the singular values by the magnitude of their accumulated loss
//! gradient. The top-k% ranks are stored in SLC, the rest in MLC.
//!
//! [`FactoredLinear`] is that layer: `y = x · U · diag(σ) · Vᵀ + b`, with
//! per-factor gradients, direct access to `|∂L/∂σ_r|`, and conversion back to
//! a dense matrix (or to the `U` / `ΣVᵀ` pair the hardware stores).

use crate::layers::Linear;
use crate::param::{Param, ParamPath, ParamVisit};
use crate::Result;
use hyflex_tensor::svd::{self, hard_threshold_rank, SvdAlgorithm};
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A linear layer in truncated-SVD form: `y = x · U · diag(σ) · Vᵀ + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactoredLinear {
    /// Left factor `U`, shape `[in, k]`.
    u: Param,
    /// Singular values, shape `[1, k]`.
    sigma: Param,
    /// Right factor `Vᵀ`, shape `[k, out]`.
    vt: Param,
    /// Bias, shape `[1, out]`.
    bias: Param,
}

impl FactoredLinear {
    /// Factorizes a dense layer at the given rank.
    ///
    /// Rank 0 (or a rank larger than `min(in, out)`) is clamped to the full
    /// rank; use [`hard_threshold_rank`] for the paper's cost-neutral rank.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn from_dense(dense: &Linear, rank: usize) -> Result<Self> {
        Self::from_weight(dense.weight(), rank)
    }

    /// [`FactoredLinear::from_dense`] with an explicit SVD algorithm.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn from_dense_with(dense: &Linear, rank: usize, algorithm: SvdAlgorithm) -> Result<Self> {
        Self::from_weight_with(dense.weight(), rank, algorithm)
    }

    /// Factorizes an explicit `[in, out]` weight matrix at the given rank
    /// with the default (Jacobi) SVD.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn from_weight(weight: &Matrix, rank: usize) -> Result<Self> {
        Self::from_weight_with(weight, rank, SvdAlgorithm::Jacobi)
    }

    /// Factorizes an explicit `[in, out]` weight matrix at the given rank
    /// with the selected SVD algorithm.
    ///
    /// With [`SvdAlgorithm::Jacobi`] this is the historical full-SVD +
    /// truncate path, bit for bit. [`SvdAlgorithm::Randomized`] sketches
    /// only the retained subspace, which is what makes truncated
    /// factorization cheap for large layers.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn from_weight_with(weight: &Matrix, rank: usize, algorithm: SvdAlgorithm) -> Result<Self> {
        Self::from_weight_seeded(weight, rank, algorithm, None)
    }

    /// [`FactoredLinear::from_weight_with`] with an optional sketch seed.
    ///
    /// The seed only affects [`SvdAlgorithm::Randomized`]; the pooled
    /// gradient-redistribution pipeline passes one seed per layer (derived
    /// from the layer's parameter name) so concurrent factorizations draw
    /// independent, schedule-independent sketches.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn from_weight_seeded(
        weight: &Matrix,
        rank: usize,
        algorithm: SvdAlgorithm,
        seed: Option<u64>,
    ) -> Result<Self> {
        let full_rank = weight.rows().min(weight.cols());
        let k = if rank == 0 {
            full_rank
        } else {
            rank.min(full_rank)
        };
        let truncated = svd::svd_with_seeded(weight, algorithm, k, seed)?;
        let sigma_row = Matrix::from_vec(1, k, truncated.singular_values.to_vec())?;
        Ok(FactoredLinear {
            u: Param::new(truncated.u),
            sigma: Param::new(sigma_row),
            vt: Param::new(truncated.vt),
            bias: Param::new(Matrix::zeros(1, weight.cols())),
        })
    }

    /// Factorizes at the paper's hard-threshold rank
    /// `D_Th = in·out / (in + out)`, which keeps inference MACs and parameter
    /// count no larger than the dense layer.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn from_weight_hard_threshold(weight: &Matrix) -> Result<Self> {
        let rank = hard_threshold_rank(weight.rows(), weight.cols());
        Self::from_weight(weight, rank)
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.u.value().rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.vt.value().cols()
    }

    /// Retained rank.
    pub fn rank(&self) -> usize {
        self.sigma.value().cols()
    }

    /// Current singular values (rank-ordered as produced by the SVD; after
    /// fine-tuning they may no longer be sorted).
    pub fn singular_values(&self) -> Vec<f32> {
        self.sigma.value().row(0).to_vec()
    }

    /// Absolute accumulated gradient of the loss w.r.t. each singular value —
    /// the importance signal used for SLC/MLC rank selection.
    pub fn sigma_gradients(&self) -> Vec<f64> {
        self.sigma
            .grad()
            .row(0)
            .iter()
            .map(|g| f64::from(g.abs()))
            .collect()
    }

    /// The left factor `U`.
    pub fn u(&self) -> &Matrix {
        self.u.value()
    }

    /// The right factor `Vᵀ`.
    pub fn vt(&self) -> &Matrix {
        self.vt.value()
    }

    /// The factor `diag(σ)·Vᵀ` that the hardware stores alongside `U`
    /// (Figure 10, step 3).
    pub fn sigma_vt(&self) -> Matrix {
        let mut out = self.vt.value().clone();
        let sigma = self.sigma.value().row(0);
        for (k, &s) in sigma.iter().enumerate() {
            for value in out.row_mut(k) {
                *value *= s;
            }
        }
        out
    }

    /// Reconstructs the equivalent dense weight matrix `U·diag(σ)·Vᵀ`.
    pub fn to_dense(&self) -> Matrix {
        self.u
            .value()
            .matmul(&self.sigma_vt())
            .expect("factor shapes are consistent by construction")
    }

    /// Mutable access to the `U` parameter (noise injection).
    pub fn u_param_mut(&mut self) -> &mut Param {
        &mut self.u
    }

    /// Mutable access to the `Vᵀ` parameter (noise injection).
    pub fn vt_param_mut(&mut self) -> &mut Param {
        &mut self.vt
    }

    /// Mutable access to the singular-value parameter.
    pub fn sigma_param_mut(&mut self) -> &mut Param {
        &mut self.sigma
    }

    /// Forward pass for a `[L, in]` activation matrix.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the underlying matrix products.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let h = x.matmul(self.u.value())?;
        let scaled = self.scale_by_sigma(&h);
        let y = scaled.matmul(self.vt.value())?;
        Ok(y.add_row_broadcast(self.bias.value().row(0))?)
    }

    /// Backward pass: accumulates gradients on `U`, `σ`, `Vᵀ`, and the bias,
    /// and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the underlying matrix products.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Result<Matrix> {
        let h = x.matmul(self.u.value())?; // [L, k]
        let scaled = self.scale_by_sigma(&h); // h ⊙ σ

        // dL/dVᵀ = (h ⊙ σ)ᵀ · grad_out
        let d_vt = scaled.transpose().matmul(grad_out)?;
        self.vt.accumulate_grad(&d_vt);

        // dL/d(h ⊙ σ) = grad_out · V
        let d_scaled = grad_out.matmul(&self.vt.value().transpose())?; // [L, k]

        // dL/dσ_r = Σ_l d_scaled[l, r] · h[l, r], each rank reduced down its
        // column with the allocation-free strided iterators. The
        // accumulation order per rank is ascending row, exactly as the old
        // row-outer element-wise loop produced it.
        let mut d_sigma = Matrix::zeros(1, self.rank());
        for (k, slot) in (0..self.rank()).zip(d_sigma.row_mut(0)) {
            let mut acc = 0.0f32;
            for (d, hv) in d_scaled.column_iter(k).zip(h.column_iter(k)) {
                acc += d * hv;
            }
            *slot = acc;
        }
        self.sigma.accumulate_grad(&d_sigma);

        // dL/dh = d_scaled ⊙ σ
        let d_h = self.scale_by_sigma(&d_scaled);

        // dL/dU = xᵀ · d_h
        let d_u = x.transpose().matmul(&d_h)?;
        self.u.accumulate_grad(&d_u);

        // Bias gradient: column sums of grad_out, one contiguous row at a
        // time (same ascending-row accumulation per column as before).
        let mut d_bias = Matrix::zeros(1, grad_out.cols());
        for r in 0..grad_out.rows() {
            for (slot, g) in d_bias.row_mut(0).iter_mut().zip(grad_out.row(r)) {
                *slot += g;
            }
        }
        self.bias.accumulate_grad(&d_bias);

        // dL/dx = d_h · Uᵀ
        Ok(d_h.matmul(&self.u.value().transpose())?)
    }

    fn scale_by_sigma(&self, h: &Matrix) -> Matrix {
        let mut out = h.clone();
        let sigma = self.sigma.value();
        for r in 0..out.rows() {
            for (value, &s) in out.row_mut(r).iter_mut().zip(sigma.row(0)) {
                *value *= s;
            }
        }
        out
    }
}

impl ParamVisit for FactoredLinear {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        f(&path.leaf("u"), &self.u);
        f(&path.leaf("sigma"), &self.sigma);
        f(&path.leaf("vt"), &self.vt);
        f(&path.leaf("bias"), &self.bias);
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        f(&path.leaf("u"), &mut self.u);
        f(&path.leaf("sigma"), &mut self.sigma);
        f(&path.leaf("vt"), &mut self.vt);
        f(&path.leaf("bias"), &mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::AdamWConfig;
    use hyflex_tensor::rng::Rng;

    fn random_weight(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_normal(rows, cols, 0.0, 0.5, &mut rng)
    }

    #[test]
    fn full_rank_factorization_reproduces_dense_layer() {
        let w = random_weight(10, 6, 1);
        let dense = Linear::from_weight(w.clone());
        let factored = FactoredLinear::from_dense(&dense, 0).unwrap();
        assert_eq!(factored.rank(), 6);
        let mut rng = Rng::seed_from(2);
        let x = Matrix::random_normal(3, 10, 0.0, 1.0, &mut rng);
        let dense_out = dense.forward(&x).unwrap();
        let factored_out = factored.forward(&x).unwrap();
        assert!(dense_out.approx_eq(&factored_out, 1e-3));
        assert!(factored.to_dense().approx_eq(&w, 1e-3));
    }

    #[test]
    fn truncation_reduces_rank_and_parameters_at_hard_threshold() {
        let w = random_weight(64, 256, 3);
        let factored = FactoredLinear::from_weight_hard_threshold(&w).unwrap();
        let expected_rank = hard_threshold_rank(64, 256);
        assert_eq!(factored.rank(), expected_rank);
        // Parameter count (excluding sigma and bias bookkeeping) stays at or
        // below the dense count — the paper's cost-neutrality argument.
        let dense_params = 64 * 256;
        let factored_core = factored.u().len() + factored.vt().len();
        assert!(factored_core <= dense_params);
    }

    #[test]
    fn sigma_vt_combines_scale_into_right_factor() {
        let w = random_weight(8, 5, 4);
        let f = FactoredLinear::from_weight(&w, 4).unwrap();
        let reconstructed = f.u().matmul(&f.sigma_vt()).unwrap();
        assert!(reconstructed.approx_eq(&f.to_dense(), 1e-4));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let w = random_weight(6, 4, 5);
        let mut f = FactoredLinear::from_weight(&w, 3).unwrap();
        let mut rng = Rng::seed_from(6);
        let x = Matrix::random_normal(2, 6, 0.0, 1.0, &mut rng);
        let upstream = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        let d_input = f.backward(&x, &upstream).unwrap();
        let probe = f.clone();
        let loss = |input: &Matrix| -> f32 {
            probe
                .forward(input)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.at(r, c) + 1e-3);
                let mut minus = x.clone();
                minus.set(r, c, x.at(r, c) - 1e-3);
                let numeric = (loss(&plus) - loss(&minus)) / 2e-3;
                assert!((d_input.at(r, c) - numeric).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn sigma_gradient_matches_finite_difference() {
        let w = random_weight(6, 5, 7);
        let mut f = FactoredLinear::from_weight(&w, 4).unwrap();
        let mut rng = Rng::seed_from(8);
        let x = Matrix::random_normal(3, 6, 0.0, 1.0, &mut rng);
        let upstream = Matrix::random_normal(3, 5, 0.0, 1.0, &mut rng);
        f.backward(&x, &upstream).unwrap();
        let analytic: Vec<f32> = f.sigma.grad().row(0).to_vec();
        for (k, &analytic_k) in analytic.iter().enumerate() {
            let numeric = {
                let mut plus = f.clone();
                let v = plus.sigma.value().at(0, k) + 1e-3;
                plus.sigma.value_mut().set(0, k, v);
                let mut minus = f.clone();
                let v = minus.sigma.value().at(0, k) - 1e-3;
                minus.sigma.value_mut().set(0, k, v);
                let loss_p = plus.forward(&x).unwrap().hadamard(&upstream).unwrap().sum();
                let loss_m = minus
                    .forward(&x)
                    .unwrap()
                    .hadamard(&upstream)
                    .unwrap()
                    .sum();
                (loss_p - loss_m) / 2e-3
            };
            assert!(
                (analytic_k - numeric).abs() < 2e-2,
                "sigma grad[{k}]: {analytic_k} vs {numeric}"
            );
        }
        // The public accessor exposes the absolute values.
        let abs: Vec<f64> = f.sigma_gradients();
        for (a, b) in abs.iter().zip(analytic.iter()) {
            assert!((a - f64::from(b.abs())).abs() < 1e-9);
        }
    }

    #[test]
    fn training_the_factored_layer_reduces_loss() {
        let w = random_weight(4, 1, 9);
        let mut f = FactoredLinear::from_weight(&w, 2).unwrap();
        let config = AdamWConfig {
            learning_rate: 0.02,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        let mut rng = Rng::seed_from(10);
        let inputs: Vec<Matrix> = (0..16)
            .map(|_| Matrix::random_normal(1, 4, 0.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<f32> = inputs
            .iter()
            .map(|x| 2.0 * x.at(0, 0) - x.at(0, 3))
            .collect();
        let loss_of = |f: &FactoredLinear| -> f32 {
            inputs
                .iter()
                .zip(targets.iter())
                .map(|(x, t)| {
                    let y = f.forward(x).unwrap().at(0, 0);
                    (y - t) * (y - t)
                })
                .sum::<f32>()
                / inputs.len() as f32
        };
        let initial = loss_of(&f);
        for _ in 0..300 {
            f.zero_grad();
            for (x, t) in inputs.iter().zip(targets.iter()) {
                let y = f.forward(x).unwrap();
                let grad = Matrix::filled(1, 1, 2.0 * (y.at(0, 0) - t));
                f.backward(x, &grad).unwrap();
            }
            f.step(&config, inputs.len());
        }
        let trained = loss_of(&f);
        assert!(trained < initial * 0.2, "{initial} -> {trained}");
    }

    #[test]
    fn rank_is_clamped_to_full_rank() {
        let w = random_weight(5, 3, 11);
        let f = FactoredLinear::from_weight(&w, 100).unwrap();
        assert_eq!(f.rank(), 3);
        assert_eq!(f.in_dim(), 5);
        assert_eq!(f.out_dim(), 3);
    }
}
