//! A pre-norm transformer block: attention and FFN with residual connections.

use crate::attention::MultiHeadAttention;
use crate::ffn::FeedForward;
use crate::layers::{AnyLinear, LayerNorm};
use crate::param::AdamWConfig;
use crate::Result;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// One transformer block: `x + Attn(LN(x))` followed by `h + FFN(LN(h))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attention: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
}

/// Generates the `&`/`&mut` pair of six-layer accessors from one body, so
/// the ordering contract (`[W_Q, W_K, W_V, W_proj, FFN1, FFN2]`) lives in
/// exactly one place.
macro_rules! impl_static_linears {
    ($(#[$doc:meta])* $fn_name:ident, $projections:ident, $layers:ident, $($mut_:tt)?) => {
        $(#[$doc])*
        pub fn $fn_name(& $($mut_)? self) -> Vec<& $($mut_)? AnyLinear> {
            let [wq, wk, wv, wo] = self.attention.$projections();
            let [fc1, fc2] = self.ffn.$layers();
            vec![wq, wk, wv, wo, fc1, fc2]
        }
    };
}

impl TransformerBlock {
    /// Creates a block with the given hidden size, FFN size, and head count.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `dim` is not divisible by `num_heads`.
    pub fn new(dim: usize, ffn_dim: usize, num_heads: usize, rng: &mut Rng) -> Result<Self> {
        Ok(TransformerBlock {
            ln1: LayerNorm::new(dim),
            attention: MultiHeadAttention::new(dim, num_heads, rng)?,
            ln2: LayerNorm::new(dim),
            ffn: FeedForward::new(dim, ffn_dim, rng),
        })
    }

    /// Hidden dimension.
    pub fn dim(&self) -> usize {
        self.ln1.dim()
    }

    /// The attention sub-layer.
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attention
    }

    /// The FFN sub-layer.
    pub fn ffn(&self) -> &FeedForward {
        &self.ffn
    }

    impl_static_linears!(
        /// All six static linear layers of the block, in the paper's order:
        /// `[W_Q, W_K, W_V, W_proj, FFN1, FFN2]`.
        static_linears_mut, projections_mut, layers_mut, mut
    );
    impl_static_linears!(
        /// Immutable view of the six static linear layers.
        static_linears, projections, layers,
    );

    /// Forward pass over a `[L, dim]` matrix.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn forward(&self, x: &Matrix, causal: bool) -> Result<Matrix> {
        let attn_out = self.attention.forward(&self.ln1.forward(x)?, causal)?;
        let h = x.add(&attn_out)?;
        let ffn_out = self.ffn.forward(&self.ln2.forward(&h)?)?;
        Ok(h.add(&ffn_out)?)
    }

    /// Backward pass: accumulates gradients in all sub-layers and returns
    /// `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix, causal: bool) -> Result<Matrix> {
        // Recompute the forward intermediates.
        let ln1_out = self.ln1.forward(x)?;
        let attn_out = self.attention.forward(&ln1_out, causal)?;
        let h = x.add(&attn_out)?;
        let ln2_out = self.ln2.forward(&h)?;

        // y = h + FFN(LN2(h))
        let d_ffn_in = self.ffn.backward(&ln2_out, grad_out)?;
        let d_h_from_ffn = self.ln2.backward(&h, &d_ffn_in)?;
        let mut d_h = grad_out.clone();
        d_h.add_assign(&d_h_from_ffn)?;

        // h = x + Attn(LN1(x))
        let d_attn_in = self.attention.backward(&ln1_out, &d_h, causal)?;
        let d_x_from_attn = self.ln1.backward(x, &d_attn_in)?;
        let mut d_x = d_h;
        d_x.add_assign(&d_x_from_attn)?;
        Ok(d_x)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.ln1.zero_grad();
        self.attention.zero_grad();
        self.ln2.zero_grad();
        self.ffn.zero_grad();
    }

    /// Applies one AdamW step to every sub-layer.
    pub fn step(&mut self, config: &AdamWConfig, batch_size: usize) {
        self.ln1.step(config, batch_size);
        self.attention.step(config, batch_size);
        self.ln2.step(config, batch_size);
        self.ffn.step(config, batch_size);
    }

    /// Number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.ln1.parameter_count()
            + self.attention.parameter_count()
            + self.ln2.parameter_count()
            + self.ffn.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_preserves_shape_and_counts_parameters() {
        let mut rng = Rng::seed_from(1);
        let block = TransformerBlock::new(8, 16, 2, &mut rng).unwrap();
        let x = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
        let y = block.forward(&x, false).unwrap();
        assert_eq!(y.shape(), (4, 8));
        assert_eq!(block.dim(), 8);
        let expected = 2 * 2 * 8 + 4 * (8 * 8 + 8) + (8 * 16 + 16) + (16 * 8 + 8);
        assert_eq!(block.parameter_count(), expected);
    }

    #[test]
    fn six_static_linears_are_exposed() {
        let mut rng = Rng::seed_from(2);
        let mut block = TransformerBlock::new(8, 16, 2, &mut rng).unwrap();
        assert_eq!(block.static_linears().len(), 6);
        assert_eq!(block.static_linears_mut().len(), 6);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(3);
        let block = TransformerBlock::new(6, 12, 2, &mut rng).unwrap();
        let x = Matrix::random_normal(3, 6, 0.0, 0.5, &mut rng);
        let upstream = Matrix::random_normal(3, 6, 0.0, 1.0, &mut rng);
        let mut block_mut = block.clone();
        let d_input = block_mut.backward(&x, &upstream, false).unwrap();
        let loss = |input: &Matrix| -> f32 {
            block
                .forward(input, false)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.at(r, c) + 1e-2);
                let mut minus = x.clone();
                minus.set(r, c, x.at(r, c) - 1e-2);
                let numeric = (loss(&plus) - loss(&minus)) / 2e-2;
                assert!(
                    (d_input.at(r, c) - numeric).abs() < 0.1,
                    "block d_input[{r},{c}]: {} vs {}",
                    d_input.at(r, c),
                    numeric
                );
            }
        }
    }

    #[test]
    fn residual_path_keeps_output_close_to_input_at_init() {
        // With Xavier-initialized small weights the block output should stay
        // in the same ballpark as the input (residual connections dominate).
        let mut rng = Rng::seed_from(4);
        let block = TransformerBlock::new(8, 16, 2, &mut rng).unwrap();
        let x = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
        let y = block.forward(&x, false).unwrap();
        let rel = y.sub(&x).unwrap().frobenius_norm() / x.frobenius_norm();
        assert!(rel < 3.0);
    }

    #[test]
    fn step_changes_outputs() {
        let mut rng = Rng::seed_from(5);
        let mut block = TransformerBlock::new(4, 8, 1, &mut rng).unwrap();
        let x = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        let before = block.forward(&x, false).unwrap();
        let grad = Matrix::filled(2, 4, 1.0);
        block.backward(&x, &grad, false).unwrap();
        block.step(
            &AdamWConfig {
                learning_rate: 0.05,
                ..AdamWConfig::default()
            },
            1,
        );
        block.zero_grad();
        let after = block.forward(&x, false).unwrap();
        assert!(!before.approx_eq(&after, 1e-6));
    }
}
