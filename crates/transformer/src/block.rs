//! A pre-norm transformer block: two [`Residual`] halves (attention, FFN).

use crate::attention::{AttentionMask, MultiHeadAttention};
use crate::ffn::FeedForward;
use crate::kv::LayerKv;
use crate::layers::{AnyLinear, Layer, LayerCtx, LayerNorm, Residual};
use crate::param::{Param, ParamPath, ParamVisit};
use crate::Result;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Generates a named static-linear accessor from the single canonical
/// definition of the paper's layer order (`[W_Q, W_K, W_V, W_proj, FFN1,
/// FFN2]`), tagged with the block-relative parameter scopes. The `&` and
/// `&mut` variants are two expansions of the same body, so the list can no
/// longer be edited in one place and forgotten in the other.
macro_rules! impl_block_named_linears {
    ($(#[$doc:meta])* $fn_name:ident, $inner:ident, $projections:ident, $layers:ident, $($mut_:tt)?) => {
        $(#[$doc])*
        pub fn $fn_name(& $($mut_)? self) -> [(&'static str, & $($mut_)? AnyLinear); 6] {
            let [wq, wk, wv, wo] = self.attn.$inner().$projections();
            let [fc1, fc2] = self.ffn.$inner().$layers();
            [
                ("attn.q_proj", wq),
                ("attn.k_proj", wk),
                ("attn.v_proj", wv),
                ("attn.out_proj", wo),
                ("ffn.fc1", fc1),
                ("ffn.fc2", fc2),
            ]
        }
    };
}

/// One transformer block: `x + Attn(LN(x))` followed by `h + FFN(LN(h))` —
/// structurally, `Residual<MultiHeadAttention>` then `Residual<FeedForward>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerBlock {
    attn: Residual<MultiHeadAttention>,
    ffn: Residual<FeedForward>,
}

impl TransformerBlock {
    /// Creates a block with the given hidden size, FFN size, and head count.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `dim` is not divisible by `num_heads`.
    pub fn new(dim: usize, ffn_dim: usize, num_heads: usize, rng: &mut Rng) -> Result<Self> {
        Ok(TransformerBlock {
            attn: Residual::new(
                LayerNorm::new(dim),
                MultiHeadAttention::new(dim, num_heads, rng)?,
            ),
            ffn: Residual::new(LayerNorm::new(dim), FeedForward::new(dim, ffn_dim, rng)),
        })
    }

    /// Hidden dimension.
    pub fn dim(&self) -> usize {
        self.attn.norm().dim()
    }

    /// The attention sub-layer.
    pub fn attention(&self) -> &MultiHeadAttention {
        self.attn.inner()
    }

    /// The FFN sub-layer.
    pub fn ffn(&self) -> &FeedForward {
        self.ffn.inner()
    }

    // Both named-linear accessors are generated from this one definition of
    // the paper's layer order so the `&`/`&mut` variants cannot drift apart.
    impl_block_named_linears!(
        /// The six static linear layers of the block in the paper's order
        /// `[W_Q, W_K, W_V, W_proj, FFN1, FFN2]`, each tagged with its
        /// block-relative parameter scope (`attn.q_proj`, ..., `ffn.fc2`).
        ///
        /// This is the hook the gradient-redistribution pipeline uses to
        /// factorize layers and to inject hardware noise.
        named_linears_mut, inner_mut, projections_mut, layers_mut, mut
    );
    impl_block_named_linears!(
        /// Immutable view of the six named static linear layers, in the same
        /// order as [`TransformerBlock::named_linears_mut`].
        named_linears, inner, projections, layers,
    );

    /// Forward pass over a `[L, dim]` matrix.
    ///
    /// Shorthand for [`TransformerBlock::forward_masked`] with
    /// [`AttentionMask::Causal`] or [`AttentionMask::Bidirectional`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn forward(&self, x: &Matrix, causal: bool) -> Result<Matrix> {
        let mask = if causal {
            AttentionMask::Causal
        } else {
            AttentionMask::Bidirectional
        };
        self.forward_masked(x, &mask)
    }

    /// Forward pass under an explicit [`AttentionMask`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn forward_masked(&self, x: &Matrix, mask: &AttentionMask) -> Result<Matrix> {
        let ctx = LayerCtx::with_mask(*mask);
        let h = self.attn.forward(x, &ctx)?;
        self.ffn.forward(&h, &ctx)
    }

    /// Decode-phase forward of one request's next rows, using and growing
    /// this block's cached keys/values.
    ///
    /// Chains exactly the same operations as [`TransformerBlock::forward`]
    /// with a causal mask — pre-norm, attention, residual add, then the FFN
    /// half (which is row-wise and ignores the mask) — so each output row is
    /// bit-identical to the matching row of the full forward pass.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn decode_step(&self, x: &Matrix, kv: &mut LayerKv) -> Result<Matrix> {
        let normed = self.attn.norm().forward(x)?;
        let y = self.attn.inner().decode_step(&normed, kv)?;
        let h = x.add(&y)?;
        self.ffn.forward(&h, &LayerCtx::inference())
    }

    /// One iteration-level batched decode step: row `b` of `x` belongs to the
    /// request owning `caches[b]`. Row-identical to per-request
    /// [`TransformerBlock::decode_step`] calls.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn decode_step_batch(&self, x: &Matrix, caches: &mut [&mut LayerKv]) -> Result<Matrix> {
        let normed = self.attn.norm().forward(x)?;
        let y = self.attn.inner().decode_step_batch(&normed, caches)?;
        let h = x.add(&y)?;
        self.ffn.forward(&h, &LayerCtx::inference())
    }

    /// Backward pass: accumulates gradients in all sub-layers and returns
    /// `dL/dx`.
    ///
    /// Shorthand for [`TransformerBlock::backward_masked`] with
    /// [`AttentionMask::Causal`] or [`AttentionMask::Bidirectional`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix, causal: bool) -> Result<Matrix> {
        let mask = if causal {
            AttentionMask::Causal
        } else {
            AttentionMask::Bidirectional
        };
        self.backward_masked(x, grad_out, &mask)
    }

    /// Backward pass under an explicit [`AttentionMask`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the sub-layers.
    pub fn backward_masked(
        &mut self,
        x: &Matrix,
        grad_out: &Matrix,
        mask: &AttentionMask,
    ) -> Result<Matrix> {
        let ctx = LayerCtx::with_mask(*mask).train();
        // Recompute the attention half's output, then chain the two residual
        // backward passes (FFN half first, mirroring the forward order).
        let h = self.attn.forward(x, &ctx)?;
        let d_h = self.ffn.backward(&h, grad_out, &ctx)?;
        self.attn.backward(x, &d_h, &ctx)
    }
}

impl ParamVisit for TransformerBlock {
    // Hand-written (rather than delegating to the residuals' own `norm`/
    // `inner` scopes) so the canonical dotted names stay flat and readable:
    // `ln1.gamma`, `attn.q_proj.weight`, `ln2.beta`, `ffn.fc1.bias`.
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        path.scope("ln1", |p| self.attn.norm().visit_params(p, f));
        path.scope("attn", |p| self.attn.inner().visit_params(p, f));
        path.scope("ln2", |p| self.ffn.norm().visit_params(p, f));
        path.scope("ffn", |p| self.ffn.inner().visit_params(p, f));
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        let (ln1, attn) = self.attn.parts_mut();
        let (ln2, ffn) = self.ffn.parts_mut();
        path.scope("ln1", |p| ln1.visit_params_mut(p, f));
        path.scope("attn", |p| attn.visit_params_mut(p, f));
        path.scope("ln2", |p| ln2.visit_params_mut(p, f));
        path.scope("ffn", |p| ffn.visit_params_mut(p, f));
    }
}

impl Layer for TransformerBlock {
    fn forward(&self, x: &Matrix, ctx: &LayerCtx) -> Result<Matrix> {
        let h = self.attn.forward(x, ctx)?;
        self.ffn.forward(&h, ctx)
    }

    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, ctx: &LayerCtx) -> Result<Matrix> {
        let h = self.attn.forward(x, ctx)?;
        let d_h = self.ffn.backward(&h, grad_out, ctx)?;
        self.attn.backward(x, &d_h, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::AdamWConfig;

    #[test]
    fn forward_preserves_shape_and_counts_parameters() {
        let mut rng = Rng::seed_from(1);
        let block = TransformerBlock::new(8, 16, 2, &mut rng).unwrap();
        let x = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
        let y = block.forward(&x, false).unwrap();
        assert_eq!(y.shape(), (4, 8));
        assert_eq!(block.dim(), 8);
        let expected = 2 * 2 * 8 + 4 * (8 * 8 + 8) + (8 * 16 + 16) + (16 * 8 + 8);
        assert_eq!(block.parameter_count(), expected);
    }

    #[test]
    fn six_named_linears_are_exposed() {
        let mut rng = Rng::seed_from(2);
        let mut block = TransformerBlock::new(8, 16, 2, &mut rng).unwrap();
        let names: Vec<&str> = block.named_linears().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "attn.q_proj",
                "attn.k_proj",
                "attn.v_proj",
                "attn.out_proj",
                "ffn.fc1",
                "ffn.fc2"
            ]
        );
        assert_eq!(block.named_linears_mut().len(), 6);
    }

    #[test]
    fn param_visitation_covers_all_scopes() {
        let mut rng = Rng::seed_from(6);
        let block = TransformerBlock::new(8, 16, 2, &mut rng).unwrap();
        let mut names = Vec::new();
        let mut path = ParamPath::root();
        block.visit_params(&mut path, &mut |name, _| names.push(name.to_string()));
        assert!(names.contains(&"ln1.gamma".to_string()));
        assert!(names.contains(&"attn.q_proj.weight".to_string()));
        assert!(names.contains(&"ln2.beta".to_string()));
        assert!(names.contains(&"ffn.fc2.bias".to_string()));
        // 2 norms x 2 + 6 linears x 2 params each.
        assert_eq!(names.len(), 4 + 12);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(3);
        let block = TransformerBlock::new(6, 12, 2, &mut rng).unwrap();
        let x = Matrix::random_normal(3, 6, 0.0, 0.5, &mut rng);
        let upstream = Matrix::random_normal(3, 6, 0.0, 1.0, &mut rng);
        let mut block_mut = block.clone();
        let d_input = block_mut.backward(&x, &upstream, false).unwrap();
        let loss = |input: &Matrix| -> f32 {
            block
                .forward(input, false)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.at(r, c) + 1e-2);
                let mut minus = x.clone();
                minus.set(r, c, x.at(r, c) - 1e-2);
                let numeric = (loss(&plus) - loss(&minus)) / 2e-2;
                assert!(
                    (d_input.at(r, c) - numeric).abs() < 0.1,
                    "block d_input[{r},{c}]: {} vs {}",
                    d_input.at(r, c),
                    numeric
                );
            }
        }
    }

    #[test]
    fn residual_path_keeps_output_close_to_input_at_init() {
        // With Xavier-initialized small weights the block output should stay
        // in the same ballpark as the input (residual connections dominate).
        let mut rng = Rng::seed_from(4);
        let block = TransformerBlock::new(8, 16, 2, &mut rng).unwrap();
        let x = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
        let y = block.forward(&x, false).unwrap();
        let rel = y.sub(&x).unwrap().frobenius_norm() / x.frobenius_norm();
        assert!(rel < 3.0);
    }

    #[test]
    fn step_changes_outputs() {
        let mut rng = Rng::seed_from(5);
        let mut block = TransformerBlock::new(4, 8, 1, &mut rng).unwrap();
        let x = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        let before = block.forward(&x, false).unwrap();
        let grad = Matrix::filled(2, 4, 1.0);
        block.backward(&x, &grad, false).unwrap();
        block.step(
            &AdamWConfig {
                learning_rate: 0.05,
                ..AdamWConfig::default()
            },
            1,
        );
        block.zero_grad();
        let after = block.forward(&x, false).unwrap();
        assert!(!before.approx_eq(&after, 1e-6));
    }
}
