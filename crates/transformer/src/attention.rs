//! Multi-head self-attention with full backward pass.
//!
//! The four projection matrices (`W_Q`, `W_K`, `W_V`, `W_proj`) are the
//! static weights HyFlexPIM maps onto analog RRAM (Figure 9, blocks 1 and 2);
//! the score (`Q·Kᵀ`) and context (`softmax·V`) products involve dynamically
//! generated operands and are executed on digital PIM. This module implements
//! the exact functional computation with gradients; the hardware mapping and
//! its costs live in `hyflex-pim`.

use crate::error::ModelError;
use crate::kv::LayerKv;
use crate::layers::{AnyLinear, Layer, LayerCtx, Linear};
use crate::param::{Param, ParamPath, ParamVisit};
use crate::Result;
use hyflex_tensor::activations::{softmax, softmax_backward};
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Attention masking policy for one forward/backward pass.
///
/// The packed variant is what makes mixed-length batching exact: several
/// requests share one activation matrix (their rows concatenated), and the
/// mask keeps every request blind to the others, so each row's scores,
/// softmax, and context are bit-identical to running that request alone
/// (out-of-segment lanes contribute `exp(-inf) = +0.0` to the softmax sums
/// and exact zero probabilities to the context product).
#[derive(Debug, Clone, Copy, Default)]
pub enum AttentionMask<'a> {
    /// Every position attends to every position.
    #[default]
    Bidirectional,
    /// Position `i` attends only to positions `<= i` (decoder behaviour).
    Causal,
    /// Packed mixed-length batch: `segments[k]` is the contiguous row range
    /// of request `k`, and attention never crosses a segment boundary.
    /// `causal` additionally applies the causal rule *within* each segment.
    Packed {
        /// Per-request row ranges; together they must cover every row.
        segments: &'a [Range<usize>],
        /// Apply causal masking within each segment.
        causal: bool,
    },
}

impl AttentionMask<'_> {
    /// Whether query row `r` may attend to key column `c`.
    pub fn allows(&self, r: usize, c: usize) -> bool {
        match self {
            AttentionMask::Bidirectional => true,
            AttentionMask::Causal => c <= r,
            AttentionMask::Packed { segments, causal } => segments
                .iter()
                .any(|s| s.contains(&r) && s.contains(&c) && (!causal || c <= r)),
        }
    }
}

/// Sets disallowed score lanes to `-inf` so the row-wise softmax assigns them
/// exactly zero probability.
fn apply_mask(scores: &mut Matrix, mask: &AttentionMask) {
    match mask {
        AttentionMask::Bidirectional => {}
        AttentionMask::Causal => {
            let n = scores.rows();
            for r in 0..n {
                for c in (r + 1)..n {
                    scores.set(r, c, f32::NEG_INFINITY);
                }
            }
        }
        AttentionMask::Packed { .. } => {
            for r in 0..scores.rows() {
                for c in 0..scores.cols() {
                    if !mask.allows(r, c) {
                        scores.set(r, c, f32::NEG_INFINITY);
                    }
                }
            }
        }
    }
}

/// Zeroes score gradients on masked lanes (their probabilities are constant
/// zero, so no gradient flows through them).
fn zero_masked_grads(d_scores: &mut Matrix, mask: &AttentionMask) {
    match mask {
        AttentionMask::Bidirectional => {}
        AttentionMask::Causal => {
            let n = d_scores.rows();
            for r in 0..n {
                for c in (r + 1)..n {
                    d_scores.set(r, c, 0.0);
                }
            }
        }
        AttentionMask::Packed { .. } => {
            for r in 0..d_scores.rows() {
                for c in 0..d_scores.cols() {
                    if !mask.allows(r, c) {
                        d_scores.set(r, c, 0.0);
                    }
                }
            }
        }
    }
}

/// Multi-head self-attention layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    wq: AnyLinear,
    wk: AnyLinear,
    wv: AnyLinear,
    wo: AnyLinear,
    num_heads: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer over hidden size `dim` with `num_heads` heads.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `dim` is not divisible by
    /// `num_heads`.
    pub fn new(dim: usize, num_heads: usize, rng: &mut Rng) -> Result<Self> {
        if num_heads == 0 || !dim.is_multiple_of(num_heads) {
            return Err(ModelError::InvalidConfig(format!(
                "hidden dim {dim} must be divisible by {num_heads} heads"
            )));
        }
        Ok(MultiHeadAttention {
            wq: AnyLinear::Dense(Linear::new(dim, dim, rng)),
            wk: AnyLinear::Dense(Linear::new(dim, dim, rng)),
            wv: AnyLinear::Dense(Linear::new(dim, dim, rng)),
            wo: AnyLinear::Dense(Linear::new(dim, dim, rng)),
            num_heads,
        })
    }

    /// Hidden dimension.
    pub fn dim(&self) -> usize {
        self.wq.in_dim()
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.dim() / self.num_heads
    }

    /// Access to the four projection layers, in `[W_Q, W_K, W_V, W_proj]`
    /// order, for factorization and noise injection.
    pub fn projections_mut(&mut self) -> [&mut AnyLinear; 4] {
        [&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    /// Immutable access to the projection layers in the same order.
    pub fn projections(&self) -> [&AnyLinear; 4] {
        [&self.wq, &self.wk, &self.wv, &self.wo]
    }

    /// Forward pass over a `[L, dim]` activation matrix.
    ///
    /// `causal` masks attention to positions `> i` (decoder behaviour).
    /// Shorthand for [`MultiHeadAttention::forward_masked`] with
    /// [`AttentionMask::Causal`] or [`AttentionMask::Bidirectional`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the projections.
    pub fn forward(&self, x: &Matrix, causal: bool) -> Result<Matrix> {
        let mask = if causal {
            AttentionMask::Causal
        } else {
            AttentionMask::Bidirectional
        };
        self.forward_masked(x, &mask)
    }

    /// Forward pass under an explicit [`AttentionMask`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the projections.
    pub fn forward_masked(&self, x: &Matrix, mask: &AttentionMask) -> Result<Matrix> {
        let (q, k, v) = (
            self.wq.forward(x)?,
            self.wk.forward(x)?,
            self.wv.forward(x)?,
        );
        let context = self.attend(&q, &k, &v, mask)?;
        self.wo.forward(&context)
    }

    fn head_slice(&self, m: &Matrix, head: usize) -> Matrix {
        let hd = self.head_dim();
        m.submatrix(0, head * hd, m.rows(), hd)
            .expect("head slice within projection output")
    }

    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix, mask: &AttentionMask) -> Result<Matrix> {
        let len = q.rows();
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        let mut context = Matrix::zeros(len, self.dim());
        for head in 0..self.num_heads {
            let qh = self.head_slice(q, head);
            let kh = self.head_slice(k, head);
            let vh = self.head_slice(v, head);
            let mut scores = qh.matmul_transpose(&kh)?.scale(scale);
            apply_mask(&mut scores, mask);
            let mut probs = Matrix::zeros(len, len);
            for r in 0..len {
                probs.row_mut(r).copy_from_slice(&softmax(scores.row(r)));
            }
            let out_h = probs.matmul(&vh)?;
            context.set_submatrix(0, head * hd, &out_h)?;
        }
        Ok(context)
    }

    /// Decode-phase forward: treats `x`'s rows as one request's next tokens,
    /// appends their keys/values to the request's cache, and attends each new
    /// row causally over the full cached history.
    ///
    /// `x` holds the (already pre-normalized) hidden rows of `m` new tokens
    /// at absolute positions `kv.len()..kv.len() + m`; the prefill phase
    /// passes the whole prompt at once (`kv` empty) and decode passes one row
    /// per step. The output is bit-identical to the matching rows of
    /// [`MultiHeadAttention::forward`] with a causal mask over the whole
    /// sequence: the projections are row-independent, softmax over an
    /// un-padded prefix equals softmax over the `-inf`-masked full row
    /// (`exp(-inf) = +0.0` and trailing exact zeros leave the sums
    /// unchanged), and zero probabilities contribute exact zeros to the
    /// context product — the same argument that makes packed batching exact.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the projections or a cache whose width
    /// disagrees with this layer.
    pub fn decode_step(&self, x: &Matrix, kv: &mut LayerKv) -> Result<Matrix> {
        let start = kv.len();
        let q = self.wq.forward(x)?;
        let k = self.wk.forward(x)?;
        let v = self.wv.forward(x)?;
        kv.append(&k, &v)?;
        let k_all = kv.keys().expect("cache is non-empty after append");
        let v_all = kv.values().expect("cache is non-empty after append");
        let m = x.rows();
        let len = k_all.rows();
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        let mut context = Matrix::zeros(m, self.dim());
        for head in 0..self.num_heads {
            let qh = self.head_slice(&q, head);
            let kh = self.head_slice(k_all, head);
            let vh = self.head_slice(v_all, head);
            let mut scores = qh.matmul_transpose(&kh)?.scale(scale);
            // New row r sits at absolute position start + r and may attend
            // every cached position up to and including itself.
            for r in 0..m {
                for c in (start + r + 1)..len {
                    scores.set(r, c, f32::NEG_INFINITY);
                }
            }
            let mut probs = Matrix::zeros(m, len);
            for r in 0..m {
                probs.row_mut(r).copy_from_slice(&softmax(scores.row(r)));
            }
            let out_h = probs.matmul(&vh)?;
            context.set_submatrix(0, head * hd, &out_h)?;
        }
        self.wo.forward(&context)
    }

    /// One iteration-level batched decode step: row `b` of `x` is the next
    /// token of the request owning `caches[b]`.
    ///
    /// The projections run once over the whole batch (they are
    /// row-independent, so each row matches its solo computation bitwise);
    /// attention then runs per request against that request's own cache. The
    /// newest token may attend every cached position, so no mask is needed.
    /// Each output row is bit-identical to calling
    /// [`MultiHeadAttention::decode_step`] for that request alone.
    ///
    /// # Errors
    ///
    /// Returns an error when the row count and cache count disagree, plus
    /// shape errors from the projections.
    pub fn decode_step_batch(&self, x: &Matrix, caches: &mut [&mut LayerKv]) -> Result<Matrix> {
        if x.rows() != caches.len() {
            return Err(ModelError::InvalidInput(format!(
                "batched decode got {} rows for {} caches",
                x.rows(),
                caches.len()
            )));
        }
        let q = self.wq.forward(x)?;
        let k = self.wk.forward(x)?;
        let v = self.wv.forward(x)?;
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();
        let mut context = Matrix::zeros(x.rows(), self.dim());
        for (b, kv) in caches.iter_mut().enumerate() {
            let k_b = k.submatrix(b, 0, 1, k.cols())?;
            let v_b = v.submatrix(b, 0, 1, v.cols())?;
            kv.append(&k_b, &v_b)?;
            let k_all = kv.keys().expect("cache is non-empty after append");
            let v_all = kv.values().expect("cache is non-empty after append");
            for head in 0..self.num_heads {
                let qh = q.submatrix(b, head * hd, 1, hd)?;
                let kh = self.head_slice(k_all, head);
                let vh = self.head_slice(v_all, head);
                let scores = qh.matmul_transpose(&kh)?.scale(scale);
                let mut probs = Matrix::zeros(1, scores.cols());
                probs.row_mut(0).copy_from_slice(&softmax(scores.row(0)));
                let out_h = probs.matmul(&vh)?;
                context.set_submatrix(b, head * hd, &out_h)?;
            }
        }
        self.wo.forward(&context)
    }

    /// Backward pass: accumulates projection gradients and returns `dL/dx`.
    ///
    /// Shorthand for [`MultiHeadAttention::backward_masked`] with
    /// [`AttentionMask::Causal`] or [`AttentionMask::Bidirectional`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the projections.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix, causal: bool) -> Result<Matrix> {
        let mask = if causal {
            AttentionMask::Causal
        } else {
            AttentionMask::Bidirectional
        };
        self.backward_masked(x, grad_out, &mask)
    }

    /// Backward pass under an explicit [`AttentionMask`].
    ///
    /// The forward intermediates are recomputed internally, so the caller only
    /// supplies the original input.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the projections.
    pub fn backward_masked(
        &mut self,
        x: &Matrix,
        grad_out: &Matrix,
        mask: &AttentionMask,
    ) -> Result<Matrix> {
        let len = x.rows();
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let q = self.wq.forward(x)?;
        let k = self.wk.forward(x)?;
        let v = self.wv.forward(x)?;
        let context = self.attend(&q, &k, &v, mask)?;

        // Through the output projection.
        let d_context = self.wo.backward(&context, grad_out)?;

        let mut d_q = Matrix::zeros(len, self.dim());
        let mut d_k = Matrix::zeros(len, self.dim());
        let mut d_v = Matrix::zeros(len, self.dim());

        for head in 0..self.num_heads {
            let qh = self.head_slice(&q, head);
            let kh = self.head_slice(&k, head);
            let vh = self.head_slice(&v, head);
            let d_ctx_h = self.head_slice(&d_context, head);

            let mut scores = qh.matmul_transpose(&kh)?.scale(scale);
            apply_mask(&mut scores, mask);
            let mut probs = Matrix::zeros(len, len);
            for r in 0..len {
                probs.row_mut(r).copy_from_slice(&softmax(scores.row(r)));
            }

            // d_probs = d_ctx_h · vhᵀ ; d_vh = probsᵀ · d_ctx_h
            let d_probs = d_ctx_h.matmul(&vh.transpose())?;
            let d_vh = probs.transpose().matmul(&d_ctx_h)?;

            // Through the row-wise softmax.
            let mut d_scores = Matrix::zeros(len, len);
            for r in 0..len {
                let ds = softmax_backward(probs.row(r), d_probs.row(r));
                d_scores.row_mut(r).copy_from_slice(&ds);
            }
            zero_masked_grads(&mut d_scores, mask);
            let d_scores = d_scores.scale(scale);

            // d_qh = d_scores · kh ; d_kh = d_scoresᵀ · qh
            let d_qh = d_scores.matmul(&kh)?;
            let d_kh = d_scores.transpose().matmul(&qh)?;

            d_q.set_submatrix(0, head * hd, &d_qh)?;
            d_k.set_submatrix(0, head * hd, &d_kh)?;
            d_v.set_submatrix(0, head * hd, &d_vh)?;
        }

        let dx_q = self.wq.backward(x, &d_q)?;
        let dx_k = self.wk.backward(x, &d_k)?;
        let dx_v = self.wv.backward(x, &d_v)?;
        let mut dx = dx_q;
        dx.add_assign(&dx_k)?;
        dx.add_assign(&dx_v)?;
        Ok(dx)
    }
}

impl ParamVisit for MultiHeadAttention {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        path.scope("q_proj", |p| self.wq.visit_params(p, f));
        path.scope("k_proj", |p| self.wk.visit_params(p, f));
        path.scope("v_proj", |p| self.wv.visit_params(p, f));
        path.scope("out_proj", |p| self.wo.visit_params(p, f));
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        path.scope("q_proj", |p| self.wq.visit_params_mut(p, f));
        path.scope("k_proj", |p| self.wk.visit_params_mut(p, f));
        path.scope("v_proj", |p| self.wv.visit_params_mut(p, f));
        path.scope("out_proj", |p| self.wo.visit_params_mut(p, f));
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&self, x: &Matrix, ctx: &LayerCtx) -> Result<Matrix> {
        self.forward_masked(x, &ctx.mask)
    }

    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, ctx: &LayerCtx) -> Result<Matrix> {
        self.backward_masked(x, grad_out, &ctx.mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::AdamWConfig;

    fn make(dim: usize, heads: usize, seed: u64) -> MultiHeadAttention {
        let mut rng = Rng::seed_from(seed);
        MultiHeadAttention::new(dim, heads, &mut rng).unwrap()
    }

    #[test]
    fn construction_validates_head_divisibility() {
        let mut rng = Rng::seed_from(1);
        assert!(MultiHeadAttention::new(8, 3, &mut rng).is_err());
        assert!(MultiHeadAttention::new(8, 0, &mut rng).is_err());
        let attn = MultiHeadAttention::new(8, 2, &mut rng).unwrap();
        assert_eq!(attn.head_dim(), 4);
        assert_eq!(attn.num_heads(), 2);
        assert_eq!(attn.dim(), 8);
        assert_eq!(attn.parameter_count(), 4 * (8 * 8 + 8));
    }

    #[test]
    fn forward_preserves_shape() {
        let attn = make(8, 2, 2);
        let mut rng = Rng::seed_from(3);
        let x = Matrix::random_normal(5, 8, 0.0, 1.0, &mut rng);
        let y = attn.forward(&x, false).unwrap();
        assert_eq!(y.shape(), (5, 8));
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        let attn = make(4, 1, 4);
        let mut rng = Rng::seed_from(5);
        let x = Matrix::random_normal(6, 4, 0.0, 1.0, &mut rng);
        // Changing a future token must not change earlier outputs under the
        // causal mask.
        let y1 = attn.forward(&x, true).unwrap();
        let mut x2 = x.clone();
        for c in 0..4 {
            x2.set(5, c, x.at(5, c) + 3.0);
        }
        let y2 = attn.forward(&x2, true).unwrap();
        for r in 0..5 {
            for c in 0..4 {
                assert!(
                    (y1.at(r, c) - y2.at(r, c)).abs() < 1e-5,
                    "causal leak at ({r}, {c})"
                );
            }
        }
        // Without the mask the earlier outputs do change.
        let y3 = attn.forward(&x, false).unwrap();
        let y4 = attn.forward(&x2, false).unwrap();
        let changed = (0..5).any(|r| (y3.at(r, 0) - y4.at(r, 0)).abs() > 1e-4);
        assert!(changed);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let attn = make(6, 2, 6);
        let mut rng = Rng::seed_from(7);
        let x = Matrix::random_normal(4, 6, 0.0, 0.8, &mut rng);
        let upstream = Matrix::random_normal(4, 6, 0.0, 1.0, &mut rng);
        let mut attn_mut = attn.clone();
        let d_input = attn_mut.backward(&x, &upstream, false).unwrap();
        let loss = |input: &Matrix| -> f32 {
            attn.forward(input, false)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.at(r, c) + 1e-2);
                let mut minus = x.clone();
                minus.set(r, c, x.at(r, c) - 1e-2);
                let numeric = (loss(&plus) - loss(&minus)) / 2e-2;
                assert!(
                    (d_input.at(r, c) - numeric).abs() < 5e-2,
                    "attention d_input[{r},{c}]: {} vs {}",
                    d_input.at(r, c),
                    numeric
                );
            }
        }
    }

    #[test]
    fn causal_input_gradient_matches_finite_difference() {
        let attn = make(4, 2, 8);
        let mut rng = Rng::seed_from(9);
        let x = Matrix::random_normal(3, 4, 0.0, 0.8, &mut rng);
        let upstream = Matrix::random_normal(3, 4, 0.0, 1.0, &mut rng);
        let mut attn_mut = attn.clone();
        let d_input = attn_mut.backward(&x, &upstream, true).unwrap();
        let loss = |input: &Matrix| -> f32 {
            attn.forward(input, true)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.at(r, c) + 1e-2);
                let mut minus = x.clone();
                minus.set(r, c, x.at(r, c) - 1e-2);
                let numeric = (loss(&plus) - loss(&minus)) / 2e-2;
                assert!((d_input.at(r, c) - numeric).abs() < 5e-2);
            }
        }
    }

    #[test]
    fn projections_can_be_factorized() {
        let mut attn = make(8, 2, 10);
        for proj in attn.projections_mut() {
            proj.factorize(4).unwrap();
        }
        assert!(attn.projections().iter().all(|p| p.as_factored().is_some()));
        let mut rng = Rng::seed_from(11);
        let x = Matrix::random_normal(3, 8, 0.0, 1.0, &mut rng);
        let y = attn.forward(&x, false).unwrap();
        assert_eq!(y.shape(), (3, 8));
    }

    #[test]
    fn zero_grad_and_step_do_not_panic_and_update() {
        let mut attn = make(4, 1, 12);
        let mut rng = Rng::seed_from(13);
        let x = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        let upstream = Matrix::filled(2, 4, 0.5);
        let before = attn.forward(&x, false).unwrap();
        attn.backward(&x, &upstream, false).unwrap();
        attn.step(
            &AdamWConfig {
                learning_rate: 0.05,
                ..AdamWConfig::default()
            },
            1,
        );
        attn.zero_grad();
        let after = attn.forward(&x, false).unwrap();
        assert!(
            !before.approx_eq(&after, 1e-6),
            "step should change outputs"
        );
    }
}
