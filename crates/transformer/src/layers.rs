//! Composable trainable layers and the [`Layer`] trait.
//!
//! Every module here implements two orthogonal interfaces:
//!
//! * [`Layer`] — `forward`/`backward` over row-major `[L, dim]` activation
//!   matrices, with a [`LayerCtx`] carrying the attention mask and the
//!   train-mode flag. Composition helpers ([`Residual`]) and the block/model
//!   stack in [`crate::block`]/[`crate::model`] are written against this
//!   trait, so encoder, decoder, and vision topologies assemble from the
//!   same parts.
//! * [`crate::param::ParamVisit`] — named parameter visitation, the single
//!   source of truth for optimizer stepping, gradient clearing, and
//!   parameter enumeration (`blocks.3.attn.q_proj.weight`).
//!
//! The concrete modules are [`Linear`], [`AnyLinear`] (dense or truncated-SVD
//! factored), [`LayerNorm`], [`Embedding`], plus [`MultiHeadAttention`] and
//! [`FeedForward`] in their own files.
//!
//! [`MultiHeadAttention`]: crate::attention::MultiHeadAttention
//! [`FeedForward`]: crate::ffn::FeedForward

use crate::attention::AttentionMask;
use crate::error::ModelError;
use crate::factored::FactoredLinear;
use crate::param::{Param, ParamPath, ParamVisit};
use crate::Result;
use hyflex_tensor::activations;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Per-pass context threaded through [`Layer::forward`] and
/// [`Layer::backward`].
#[derive(Debug, Clone, Copy)]
pub struct LayerCtx<'a> {
    /// Attention masking for this pass; layers without attention ignore it.
    pub mask: AttentionMask<'a>,
    /// Train-mode flag. No current module behaves differently between train
    /// and inference (there is no dropout), but the flag is threaded through
    /// every call so stochastic layers can be added without changing the
    /// [`Layer`] signature.
    pub train: bool,
}

impl<'a> LayerCtx<'a> {
    /// Inference context with the given attention mask.
    pub fn with_mask(mask: AttentionMask<'a>) -> Self {
        LayerCtx { mask, train: false }
    }

    /// Bidirectional inference context (the default).
    pub fn inference() -> LayerCtx<'static> {
        LayerCtx::with_mask(AttentionMask::Bidirectional)
    }

    /// Causally masked inference context (decoder behaviour).
    pub fn causal() -> LayerCtx<'static> {
        LayerCtx::with_mask(AttentionMask::Causal)
    }

    /// The same context with the train-mode flag raised.
    pub fn train(mut self) -> Self {
        self.train = true;
        self
    }
}

/// A composable model module: forward/backward over `[L, dim]` activations
/// plus named parameter visitation (via the [`ParamVisit`] supertrait).
///
/// `backward` recomputes its forward intermediates internally, accumulates
/// gradients into the module's parameters, and returns `dL/dx`; callers only
/// supply the original input. Modules whose input is not an activation
/// matrix (e.g. [`Embedding`], which consumes token ids) implement only
/// [`ParamVisit`].
pub trait Layer: ParamVisit {
    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the underlying computation.
    fn forward(&self, x: &Matrix, ctx: &LayerCtx) -> Result<Matrix>;

    /// Backward pass: accumulates parameter gradients, returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the underlying computation.
    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, ctx: &LayerCtx) -> Result<Matrix>;
}

/// Pre-norm residual combinator: `x + inner(norm(x))`.
///
/// Both halves of a transformer block are instances of this shape — attention
/// and FFN each sit behind a layer norm inside a residual connection — so the
/// block in [`crate::block`] is literally two `Residual`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Residual<L> {
    norm: LayerNorm,
    inner: L,
}

impl<L> Residual<L> {
    /// Wraps `inner` behind `norm` in a residual connection.
    pub fn new(norm: LayerNorm, inner: L) -> Self {
        Residual { norm, inner }
    }

    /// The pre-normalization layer.
    pub fn norm(&self) -> &LayerNorm {
        &self.norm
    }

    /// Mutable access to the pre-normalization layer.
    pub fn norm_mut(&mut self) -> &mut LayerNorm {
        &mut self.norm
    }

    /// The wrapped module.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Mutable access to the wrapped module.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }

    /// Simultaneous mutable borrows of the norm and the wrapped module.
    pub fn parts_mut(&mut self) -> (&mut LayerNorm, &mut L) {
        (&mut self.norm, &mut self.inner)
    }
}

impl<L: ParamVisit> ParamVisit for Residual<L> {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        path.scope("norm", |p| self.norm.visit_params(p, f));
        path.scope("inner", |p| self.inner.visit_params(p, f));
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        path.scope("norm", |p| self.norm.visit_params_mut(p, f));
        path.scope("inner", |p| self.inner.visit_params_mut(p, f));
    }
}

impl<L: Layer> Layer for Residual<L> {
    fn forward(&self, x: &Matrix, ctx: &LayerCtx) -> Result<Matrix> {
        let normed = self.norm.forward(x)?;
        let y = self.inner.forward(&normed, ctx)?;
        Ok(x.add(&y)?)
    }

    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, ctx: &LayerCtx) -> Result<Matrix> {
        let normed = self.norm.forward(x)?;
        let d_inner = self.inner.backward(&normed, grad_out, ctx)?;
        let d_norm = self.norm.backward(x, &d_inner)?;
        let mut d_x = grad_out.clone();
        d_x.add_assign(&d_norm)?;
        Ok(d_x)
    }
}

/// A dense affine layer `y = x · W + b` with `W` of shape `[in, out]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    bias: Param,
}

impl Linear {
    /// Creates a Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: Param::new(Matrix::xavier(in_dim, out_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
        }
    }

    /// Creates a layer from an explicit weight matrix (bias zero).
    pub fn from_weight(weight: Matrix) -> Self {
        let out = weight.cols();
        Linear {
            weight: Param::new(weight),
            bias: Param::new(Matrix::zeros(1, out)),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value().rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value().cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        self.weight.value()
    }

    /// Mutable access to the weight parameter (noise injection, re-mapping).
    pub fn weight_param_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The weight parameter (gradient inspection).
    pub fn weight_param(&self) -> &Param {
        &self.weight
    }

    /// Forward pass for a `[L, in]` activation matrix.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not have `in_dim` columns.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let y = x.matmul(self.weight.value())?;
        Ok(y.add_row_broadcast(self.bias.value().row(0))?)
    }

    /// Backward pass: accumulates weight/bias gradients and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` and `grad_out` disagree with the layer.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Result<Matrix> {
        let d_weight = x.transpose().matmul(grad_out)?;
        self.weight.accumulate_grad(&d_weight);
        let mut d_bias = Matrix::zeros(1, grad_out.cols());
        for r in 0..grad_out.rows() {
            for c in 0..grad_out.cols() {
                d_bias.set(0, c, d_bias.at(0, c) + grad_out.at(r, c));
            }
        }
        self.bias.accumulate_grad(&d_bias);
        Ok(grad_out.matmul(&self.weight.value().transpose())?)
    }
}

impl ParamVisit for Linear {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        f(&path.leaf("weight"), &self.weight);
        f(&path.leaf("bias"), &self.bias);
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        f(&path.leaf("weight"), &mut self.weight);
        f(&path.leaf("bias"), &mut self.bias);
    }
}

impl Layer for Linear {
    fn forward(&self, x: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        Linear::forward(self, x)
    }

    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        Linear::backward(self, x, grad_out)
    }
}

/// Either a dense linear layer or its truncated-SVD factored replacement.
///
/// The gradient-redistribution pipeline converts selected `Dense` layers to
/// `Factored` in place; every consumer (attention, FFN, model) goes through
/// this enum so the swap is transparent.
// The factored variant carries U, sigma, and V; boxing it would push every
// forward/backward access through a pointer for no measurable win, so the
// size imbalance is accepted.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyLinear {
    /// A standard dense layer.
    Dense(Linear),
    /// A truncated-SVD factored layer (`x·U·diag(σ)·Vᵀ + b`).
    Factored(FactoredLinear),
}

impl AnyLinear {
    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        match self {
            AnyLinear::Dense(l) => l.in_dim(),
            AnyLinear::Factored(f) => f.in_dim(),
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        match self {
            AnyLinear::Dense(l) => l.out_dim(),
            AnyLinear::Factored(f) => f.out_dim(),
        }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying layer.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        match self {
            AnyLinear::Dense(l) => l.forward(x),
            AnyLinear::Factored(f) => f.forward(x),
        }
    }

    /// Backward pass returning `dL/dx`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying layer.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Result<Matrix> {
        match self {
            AnyLinear::Dense(l) => l.backward(x, grad_out),
            AnyLinear::Factored(f) => f.backward(x, grad_out),
        }
    }

    /// Converts a dense layer into its hard-threshold factored form in place
    /// with the default (Jacobi) SVD.
    ///
    /// No-op if the layer is already factored.
    ///
    /// # Errors
    ///
    /// Propagates SVD errors.
    pub fn factorize(&mut self, rank: usize) -> Result<()> {
        self.factorize_with(rank, hyflex_tensor::SvdAlgorithm::Jacobi)
    }

    /// [`AnyLinear::factorize`] with an explicit SVD algorithm (the
    /// gradient-redistribution pipeline threads its configured
    /// [`hyflex_tensor::SvdAlgorithm`] through here).
    ///
    /// # Errors
    ///
    /// Propagates SVD errors.
    pub fn factorize_with(
        &mut self,
        rank: usize,
        algorithm: hyflex_tensor::SvdAlgorithm,
    ) -> Result<()> {
        self.factorize_seeded(rank, algorithm, None)
    }

    /// [`AnyLinear::factorize_with`] with an optional sketch seed for the
    /// randomized SVD (see
    /// [`FactoredLinear::from_weight_seeded`]).
    ///
    /// # Errors
    ///
    /// Propagates SVD errors.
    pub fn factorize_seeded(
        &mut self,
        rank: usize,
        algorithm: hyflex_tensor::SvdAlgorithm,
        seed: Option<u64>,
    ) -> Result<()> {
        if let AnyLinear::Dense(l) = self {
            let factored = FactoredLinear::from_weight_seeded(l.weight(), rank, algorithm, seed)?;
            *self = AnyLinear::Factored(factored);
        }
        Ok(())
    }

    /// Returns the factored layer, if this is one.
    pub fn as_factored(&self) -> Option<&FactoredLinear> {
        match self {
            AnyLinear::Factored(f) => Some(f),
            AnyLinear::Dense(_) => None,
        }
    }

    /// Returns the factored layer mutably, if this is one.
    pub fn as_factored_mut(&mut self) -> Option<&mut FactoredLinear> {
        match self {
            AnyLinear::Factored(f) => Some(f),
            AnyLinear::Dense(_) => None,
        }
    }

    /// Returns the dense layer mutably, if this is one.
    pub fn as_dense_mut(&mut self) -> Option<&mut Linear> {
        match self {
            AnyLinear::Dense(l) => Some(l),
            AnyLinear::Factored(_) => None,
        }
    }
}

impl ParamVisit for AnyLinear {
    // Transparent: the variant's own leaf names (`weight`/`bias` dense,
    // `u`/`sigma`/`vt`/`bias` factored) appear directly under the layer's
    // scope, so `VarBuilder::get("q_proj")` resolves through the `.weight`
    // fallback regardless of factorization state.
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        match self {
            AnyLinear::Dense(l) => l.visit_params(path, f),
            AnyLinear::Factored(fl) => fl.visit_params(path, f),
        }
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        match self {
            AnyLinear::Dense(l) => l.visit_params_mut(path, f),
            AnyLinear::Factored(fl) => fl.visit_params_mut(path, f),
        }
    }
}

impl Layer for AnyLinear {
    fn forward(&self, x: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        AnyLinear::forward(self, x)
    }

    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        AnyLinear::backward(self, x, grad_out)
    }
}

/// Layer normalization with learned scale and shift, applied to each row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    epsilon: f32,
}

impl LayerNorm {
    /// Creates a layer norm over vectors of length `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Matrix::filled(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            epsilon: 1e-5,
        }
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value().cols()
    }

    /// Forward pass over a `[L, dim]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if the column count differs from the layer dimension.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.dim() {
            return Err(ModelError::InvalidInput(format!(
                "layer norm expected {} columns, got {}",
                self.dim(),
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let normalized = activations::layer_norm(
                x.row(r),
                self.gamma.value().row(0),
                self.beta.value().row(0),
                self.epsilon,
            );
            out.row_mut(r).copy_from_slice(&normalized.output);
        }
        Ok(out)
    }

    /// Backward pass: accumulates gamma/beta gradients, returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Result<Matrix> {
        if x.shape() != grad_out.shape() {
            return Err(ModelError::InvalidInput(
                "layer norm backward shape mismatch".to_string(),
            ));
        }
        let mut d_input = Matrix::zeros(x.rows(), x.cols());
        let mut d_gamma = Matrix::zeros(1, x.cols());
        let mut d_beta = Matrix::zeros(1, x.cols());
        for r in 0..x.rows() {
            let forward = activations::layer_norm(
                x.row(r),
                self.gamma.value().row(0),
                self.beta.value().row(0),
                self.epsilon,
            );
            let grads = activations::layer_norm_backward(
                &forward,
                self.gamma.value().row(0),
                grad_out.row(r),
            );
            d_input.row_mut(r).copy_from_slice(&grads.d_input);
            for c in 0..x.cols() {
                d_gamma.set(0, c, d_gamma.at(0, c) + grads.d_gamma[c]);
                d_beta.set(0, c, d_beta.at(0, c) + grads.d_beta[c]);
            }
        }
        self.gamma.accumulate_grad(&d_gamma);
        self.beta.accumulate_grad(&d_beta);
        Ok(d_input)
    }
}

impl ParamVisit for LayerNorm {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        f(&path.leaf("gamma"), &self.gamma);
        f(&path.leaf("beta"), &self.beta);
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        f(&path.leaf("gamma"), &mut self.gamma);
        f(&path.leaf("beta"), &mut self.beta);
    }
}

impl Layer for LayerNorm {
    fn forward(&self, x: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        LayerNorm::forward(self, x)
    }

    fn backward(&mut self, x: &Matrix, grad_out: &Matrix, _ctx: &LayerCtx) -> Result<Matrix> {
        LayerNorm::backward(self, x, grad_out)
    }
}

/// Token embedding plus learned positional embedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    table: Param,
    positions: Param,
}

impl Embedding {
    /// Creates embeddings for `vocab_size` tokens, `max_len` positions, and
    /// hidden size `dim`.
    pub fn new(vocab_size: usize, max_len: usize, dim: usize, rng: &mut Rng) -> Self {
        Embedding {
            table: Param::new(Matrix::random_normal(vocab_size, dim, 0.0, 0.02, rng)),
            positions: Param::new(Matrix::random_normal(max_len, dim, 0.0, 0.02, rng)),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.table.value().rows()
    }

    /// Maximum sequence length.
    pub fn max_len(&self) -> usize {
        self.positions.value().rows()
    }

    /// Hidden dimension.
    pub fn dim(&self) -> usize {
        self.table.value().cols()
    }

    /// Looks up the embeddings for a token sequence.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-vocabulary tokens or too-long sequences.
    pub fn forward(&self, tokens: &[usize]) -> Result<Matrix> {
        self.forward_from(tokens, 0)
    }

    /// Looks up embeddings with positions starting at `start`: token `i`
    /// receives the positional embedding of absolute position `start + i`.
    /// This is the decode-phase entry point — a request with `start` tokens
    /// already cached embeds its next token at position `start`, bit-identical
    /// to where a full-sequence [`Embedding::forward`] would place it.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-vocabulary tokens or when `start +
    /// tokens.len()` exceeds the maximum sequence length.
    pub fn forward_from(&self, tokens: &[usize], start: usize) -> Result<Matrix> {
        if tokens.is_empty() {
            return Err(ModelError::InvalidInput("empty token sequence".into()));
        }
        if start + tokens.len() > self.max_len() {
            return Err(ModelError::InvalidInput(format!(
                "positions {start}..{} exceed maximum {}",
                start + tokens.len(),
                self.max_len()
            )));
        }
        let dim = self.dim();
        let mut out = Matrix::zeros(tokens.len(), dim);
        for (i, &tok) in tokens.iter().enumerate() {
            if tok >= self.vocab_size() {
                return Err(ModelError::InvalidInput(format!(
                    "token {tok} out of vocabulary ({})",
                    self.vocab_size()
                )));
            }
            for c in 0..dim {
                out.set(
                    i,
                    c,
                    self.table.value().at(tok, c) + self.positions.value().at(start + i, c),
                );
            }
        }
        Ok(out)
    }

    /// Accumulates gradients for the looked-up rows.
    ///
    /// # Errors
    ///
    /// Returns an error if the gradient shape does not match the lookup.
    pub fn backward(&mut self, tokens: &[usize], grad_out: &Matrix) -> Result<()> {
        if grad_out.rows() != tokens.len() || grad_out.cols() != self.dim() {
            return Err(ModelError::InvalidInput(
                "embedding backward shape mismatch".to_string(),
            ));
        }
        for (i, &tok) in tokens.iter().enumerate() {
            for c in 0..self.dim() {
                let g = grad_out.at(i, c);
                let t = self.table.grad_mut().at(tok, c) + g;
                self.table.grad_mut().set(tok, c, t);
                let p = self.positions.grad_mut().at(i, c) + g;
                self.positions.grad_mut().set(i, c, p);
            }
        }
        Ok(())
    }
}

impl ParamVisit for Embedding {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        f(&path.leaf("table"), &self.table);
        f(&path.leaf("positions"), &self.positions);
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        f(&path.leaf("table"), &mut self.table);
        f(&path.leaf("positions"), &mut self.positions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::AdamWConfig;

    fn finite_difference_check<F>(f: F, x: &Matrix, analytic: &Matrix, tol: f32)
    where
        F: Fn(&Matrix) -> f32,
    {
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(r, c, x.at(r, c) + 1e-3);
                let mut minus = x.clone();
                minus.set(r, c, x.at(r, c) - 1e-3);
                let numeric = (f(&plus) - f(&minus)) / 2e-3;
                assert!(
                    (analytic.at(r, c) - numeric).abs() < tol,
                    "grad[{r},{c}]: {} vs {}",
                    analytic.at(r, c),
                    numeric
                );
            }
        }
    }

    #[test]
    fn linear_forward_matches_manual_computation() {
        let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let layer = Linear::from_weight(w);
        let x = Matrix::from_rows(&[vec![1.0, 0.0, -1.0]]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 2));
        assert_eq!(y.at(0, 0), -4.0);
        assert_eq!(y.at(0, 1), -4.0);
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 2);
        assert_eq!(layer.parameter_count(), 8);
    }

    #[test]
    fn linear_input_gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(1);
        let layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        let upstream = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        let loss = |input: &Matrix| -> f32 {
            layer
                .forward(input)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        let d_input = {
            let mut l = layer.clone();
            l.backward(&x, &upstream).unwrap()
        };
        finite_difference_check(loss, &x, &d_input, 1e-2);
    }

    #[test]
    fn linear_weight_gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(2);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        let upstream = Matrix::random_normal(2, 2, 0.0, 1.0, &mut rng);
        layer.backward(&x, &upstream).unwrap();
        let analytic = layer.weight_param().grad().clone();
        let base_weight = layer.weight().clone();
        let loss = |w: &Matrix| -> f32 {
            let probe = Linear::from_weight(w.clone());
            probe
                .forward(&x)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        finite_difference_check(loss, &base_weight, &analytic, 1e-2);
    }

    #[test]
    fn any_linear_factorize_round_trip() {
        let mut rng = Rng::seed_from(3);
        let mut layer = AnyLinear::Dense(Linear::new(8, 6, &mut rng));
        let x = Matrix::random_normal(2, 8, 0.0, 1.0, &mut rng);
        let dense_out = layer.forward(&x).unwrap();
        layer.factorize(6).unwrap();
        assert!(layer.as_factored().is_some());
        let factored_out = layer.forward(&x).unwrap();
        // Full-rank factorization reproduces the dense output.
        assert!(dense_out.approx_eq(&factored_out, 1e-3));
        // Factorizing again is a no-op.
        layer.factorize(3).unwrap();
        assert_eq!(layer.as_factored().unwrap().rank(), 6);
    }

    #[test]
    fn layer_norm_forward_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![-1.0, 0.0, 1.0, 2.0]]).unwrap();
        let y = ln.forward(&x).unwrap();
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
        assert!(ln.forward(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn layer_norm_backward_matches_finite_difference() {
        let mut rng = Rng::seed_from(4);
        let mut ln = LayerNorm::new(5);
        let x = Matrix::random_normal(3, 5, 0.0, 1.0, &mut rng);
        let upstream = Matrix::random_normal(3, 5, 0.0, 1.0, &mut rng);
        let d_input = ln.backward(&x, &upstream).unwrap();
        let probe = LayerNorm::new(5);
        let loss = |input: &Matrix| -> f32 {
            probe
                .forward(input)
                .unwrap()
                .hadamard(&upstream)
                .unwrap()
                .sum()
        };
        finite_difference_check(loss, &x, &d_input, 2e-2);
    }

    #[test]
    fn embedding_lookup_and_bounds() {
        let mut rng = Rng::seed_from(5);
        let emb = Embedding::new(10, 6, 4, &mut rng);
        let out = emb.forward(&[1, 3, 5]).unwrap();
        assert_eq!(out.shape(), (3, 4));
        assert!(emb.forward(&[11]).is_err());
        assert!(emb.forward(&[]).is_err());
        assert!(emb.forward(&[0; 7]).is_err());
        assert_eq!(emb.parameter_count(), 10 * 4 + 6 * 4);
    }

    #[test]
    fn embedding_backward_accumulates_into_looked_up_rows() {
        let mut rng = Rng::seed_from(6);
        let mut emb = Embedding::new(5, 4, 3, &mut rng);
        let tokens = [2usize, 2, 4];
        let grad = Matrix::filled(3, 3, 1.0);
        emb.backward(&tokens, &grad).unwrap();
        // Token 2 appears twice: its gradient row should be 2.0 everywhere.
        // Access through a step: after zero_grad the update disappears.
        emb.step(&AdamWConfig::default(), 1);
        emb.zero_grad();
        assert!(emb.backward(&tokens, &Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn training_a_linear_layer_reduces_loss() {
        let mut rng = Rng::seed_from(7);
        let mut layer = Linear::new(4, 1, &mut rng);
        let config = AdamWConfig {
            learning_rate: 0.01,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        // Learn y = sum(x).
        let inputs: Vec<Matrix> = (0..32)
            .map(|_| Matrix::random_normal(1, 4, 0.0, 1.0, &mut rng))
            .collect();
        let targets: Vec<f32> = inputs.iter().map(|x| x.sum()).collect();
        let loss_of = |layer: &Linear| -> f32 {
            inputs
                .iter()
                .zip(targets.iter())
                .map(|(x, t)| {
                    let y = layer.forward(x).unwrap().at(0, 0);
                    (y - t) * (y - t)
                })
                .sum::<f32>()
                / inputs.len() as f32
        };
        let initial = loss_of(&layer);
        for _ in 0..200 {
            layer.zero_grad();
            for (x, t) in inputs.iter().zip(targets.iter()) {
                let y = layer.forward(x).unwrap();
                let grad = Matrix::filled(1, 1, 2.0 * (y.at(0, 0) - t));
                layer.backward(x, &grad).unwrap();
            }
            layer.step(&config, inputs.len());
        }
        let trained = loss_of(&layer);
        assert!(
            trained < initial * 0.1,
            "training failed: {initial} -> {trained}"
        );
    }
}
