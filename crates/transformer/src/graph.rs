//! Declarative model assembly: [`ModelGraph`] builds encoder, decoder, and
//! vision topologies from the same composable modules.
//!
//! A graph is a linear pipeline of three stages — a [`StemSpec`] that turns
//! raw input into `[L, hidden]` activations, a list of [`BlockSpec`] nodes
//! (encoder or decoder blocks), and a [`HeadSpec`] that maps the final
//! hidden state to task logits. [`ModelGraph::from_config`] derives the
//! graph from a [`ModelConfig`]; [`ModelGraph::build`] instantiates it into
//! a [`TransformerModel`], consuming the RNG in a fixed order (stem, then
//! blocks in sequence, then head) so graph-built models are bit-identical
//! to the historical hand-wired constructor.

use crate::block::TransformerBlock;
use crate::config::{ModelConfig, ModelKind, TaskKind};
use crate::error::ModelError;
use crate::layers::{Embedding, LayerNorm, Linear};
use crate::model::TransformerModel;
use crate::Result;
use hyflex_tensor::rng::Rng;
use std::fmt::Write as _;

/// The input stage of a model graph: raw input to `[L, hidden]` activations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StemSpec {
    /// Token-id lookup: learned token table plus learned positions.
    TokenEmbedding {
        /// Vocabulary size.
        vocab_size: usize,
        /// Maximum sequence length (position table size).
        max_seq_len: usize,
    },
    /// Linear projection of patch/feature vectors (vision models).
    PatchProjection {
        /// Input feature dimension per patch.
        patch_dim: usize,
    },
}

/// One transformer block node in the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockSpec {
    /// Bidirectional self-attention block (BERT/ViT-style).
    Encoder,
    /// Causally masked self-attention block (GPT-style). The causality is
    /// enforced at run time by the mask the model derives from its
    /// configuration; the spec records the topology.
    Decoder,
}

/// The output stage: final hidden state to task logits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeadSpec {
    /// Mean-pool the sequence, then one linear layer (classification /
    /// regression).
    Pooled {
        /// Number of output logits.
        outputs: usize,
    },
    /// One linear layer applied to every position (language modeling).
    PerToken {
        /// Number of output logits per position (the vocabulary).
        outputs: usize,
    },
}

/// A declarative description of a transformer model's structure.
///
/// ```
/// use hyflex_tensor::rng::Rng;
/// use hyflex_transformer::{ModelConfig, ModelGraph};
///
/// let graph = ModelGraph::from_config(ModelConfig::tiny_decoder()).unwrap();
/// assert_eq!(graph.blocks().len(), 2);
/// let model = graph.build(&mut Rng::seed_from(7)).unwrap();
/// assert_eq!(model.blocks().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelGraph {
    config: ModelConfig,
    stem: StemSpec,
    blocks: Vec<BlockSpec>,
    head: HeadSpec,
}

impl ModelGraph {
    /// Derives the layer graph implied by a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for inconsistent configurations
    /// (the same validation [`TransformerModel::new`] applies).
    pub fn from_config(config: ModelConfig) -> Result<Self> {
        config.validate()?;
        let stem = match config.kind {
            ModelKind::VisionEncoder => StemSpec::PatchProjection {
                patch_dim: config
                    .patch_dim
                    .ok_or_else(|| ModelError::InvalidConfig("missing patch_dim".into()))?,
            },
            _ => StemSpec::TokenEmbedding {
                vocab_size: config.vocab_size,
                max_seq_len: config.max_seq_len,
            },
        };
        let block = if config.is_causal() {
            BlockSpec::Decoder
        } else {
            BlockSpec::Encoder
        };
        let blocks = vec![block; config.num_layers];
        let outputs = config.task.head_outputs(config.vocab_size);
        let head = match config.task {
            TaskKind::LanguageModeling => HeadSpec::PerToken { outputs },
            _ => HeadSpec::Pooled { outputs },
        };
        Ok(ModelGraph {
            config,
            stem,
            blocks,
            head,
        })
    }

    /// The configuration this graph was derived from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The input stage.
    pub fn stem(&self) -> &StemSpec {
        &self.stem
    }

    /// The block nodes, in execution order.
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// The output stage.
    pub fn head(&self) -> &HeadSpec {
        &self.head
    }

    /// A printable multi-line description of the graph.
    pub fn summary(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(out, "model graph: {}", c.name);
        match &self.stem {
            StemSpec::TokenEmbedding {
                vocab_size,
                max_seq_len,
            } => {
                let _ = writeln!(
                    out,
                    "  stem: token embedding (vocab {vocab_size}, max len {max_seq_len}, dim {})",
                    c.hidden_dim
                );
            }
            StemSpec::PatchProjection { patch_dim } => {
                let _ = writeln!(
                    out,
                    "  stem: patch projection ({patch_dim} -> {})",
                    c.hidden_dim
                );
            }
        }
        let kind = match self.blocks.first() {
            Some(BlockSpec::Decoder) => "decoder (causal)",
            _ => "encoder (bidirectional)",
        };
        let _ = writeln!(
            out,
            "  blocks: {} x {kind} (dim {}, ffn {}, heads {})",
            self.blocks.len(),
            c.hidden_dim,
            c.ffn_dim,
            c.num_heads
        );
        match &self.head {
            HeadSpec::Pooled { outputs } => {
                let _ = writeln!(out, "  head: mean-pool -> linear [{outputs}]");
            }
            HeadSpec::PerToken { outputs } => {
                let _ = writeln!(out, "  head: per-token linear [{outputs}]");
            }
        }
        out
    }

    /// Instantiates the graph with random initialization.
    ///
    /// The RNG is consumed in stem, block (in order), head order — exactly
    /// the order the historical hand-wired constructor used, so seeded
    /// builds reproduce the same parameters bit for bit.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from block construction.
    pub fn build(&self, rng: &mut Rng) -> Result<TransformerModel> {
        let c = &self.config;
        let (embedding, patch_proj) = match &self.stem {
            StemSpec::TokenEmbedding {
                vocab_size,
                max_seq_len,
            } => (
                Some(Embedding::new(*vocab_size, *max_seq_len, c.hidden_dim, rng)),
                None,
            ),
            StemSpec::PatchProjection { patch_dim } => {
                (None, Some(Linear::new(*patch_dim, c.hidden_dim, rng)))
            }
        };
        let blocks = self
            .blocks
            .iter()
            .map(|_| TransformerBlock::new(c.hidden_dim, c.ffn_dim, c.num_heads, rng))
            .collect::<Result<Vec<_>>>()?;
        let final_norm = LayerNorm::new(c.hidden_dim);
        let head_outputs = match &self.head {
            HeadSpec::Pooled { outputs } | HeadSpec::PerToken { outputs } => *outputs,
        };
        let head = Linear::new(c.hidden_dim, head_outputs, rng);
        Ok(TransformerModel::from_parts(
            self.config.clone(),
            embedding,
            patch_proj,
            blocks,
            final_norm,
            head,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelInput;

    #[test]
    fn encoder_graph_has_token_stem_and_pooled_head() {
        let graph = ModelGraph::from_config(ModelConfig::tiny_encoder(3)).unwrap();
        assert!(matches!(graph.stem(), StemSpec::TokenEmbedding { .. }));
        assert!(graph.blocks().iter().all(|b| *b == BlockSpec::Encoder));
        assert!(matches!(graph.head(), HeadSpec::Pooled { outputs: 3 }));
        let summary = graph.summary();
        assert!(summary.contains("token embedding"));
        assert!(summary.contains("encoder (bidirectional)"));
    }

    #[test]
    fn decoder_graph_has_causal_blocks_and_per_token_head() {
        let graph = ModelGraph::from_config(ModelConfig::tiny_decoder()).unwrap();
        assert!(graph.blocks().iter().all(|b| *b == BlockSpec::Decoder));
        assert!(matches!(graph.head(), HeadSpec::PerToken { .. }));
        assert!(graph.summary().contains("decoder (causal)"));
    }

    #[test]
    fn vision_graph_has_patch_stem() {
        let graph = ModelGraph::from_config(ModelConfig::tiny_vit(10)).unwrap();
        assert!(matches!(
            graph.stem(),
            StemSpec::PatchProjection { patch_dim: 24 }
        ));
        assert!(graph.summary().contains("patch projection"));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = ModelConfig::tiny_encoder(2);
        config.num_heads = 3;
        assert!(ModelGraph::from_config(config).is_err());
    }

    #[test]
    fn graph_build_matches_direct_construction_bit_for_bit() {
        for config in [
            ModelConfig::tiny_encoder(3),
            ModelConfig::tiny_decoder(),
            ModelConfig::tiny_vit(10),
        ] {
            let graph = ModelGraph::from_config(config.clone()).unwrap();
            let mut rng_a = Rng::seed_from(99);
            let built = graph.build(&mut rng_a).unwrap();
            let mut rng_b = Rng::seed_from(99);
            let direct = TransformerModel::new(config, &mut rng_b).unwrap();
            assert_eq!(built, direct);
            if built.config().patch_dim.is_none() {
                let input = ModelInput::Tokens(vec![1, 2, 3]);
                assert_eq!(
                    built.forward(&input).unwrap(),
                    direct.forward(&input).unwrap()
                );
            }
        }
    }
}
