#![forbid(unsafe_code)]
//! # hyflex-transformer
//!
//! A from-scratch transformer substrate: encoder, decoder, and vision models
//! with full forward/backward passes, an AdamW trainer, task metrics, and
//! per-stage operation counting.
//!
//! The HyFlexPIM paper evaluates on BERT-Base/Large, GPT-2, Llama-3.2-1B and
//! ViT-Base. Two kinds of model configuration are provided here:
//!
//! * **Paper-scale configs** ([`config::ModelConfig::bert_base`], ...) carry
//!   the real layer dimensions and are consumed *analytically* by the
//!   operation-count and performance models (Figures 2, 14–17).
//! * **Trainable reduced configs** ([`config::ModelConfig::tiny_encoder`],
//!   ...) are small enough to fine-tune on the synthetic workloads in
//!   `hyflex-workloads` within seconds, and are used for the functional
//!   experiments: SVD truncation, gradient redistribution, hybrid SLC/MLC
//!   noise injection (Figures 11–13 and the accuracy portion of Figure 12).
//!
//! The layer zoo ([`layers`], [`attention`], [`ffn`], [`factored`]) exposes a
//! uniform forward/backward interface — the [`layers::Layer`] trait — built
//! on [`param::Param`], so the gradient-redistribution pipeline in
//! `hyflex-pim` can swap any dense linear layer for its truncated-SVD
//! factored equivalent and read back gradients on the singular values.
//!
//! Model structure is declarative: [`graph::ModelGraph`] assembles encoder,
//! decoder, and vision topologies from the same composable modules, and
//! every parameter is reachable through the named-visitation API in
//! [`param`] ([`param::ParamVisit`], [`param::ParamStore`],
//! [`param::VarBuilder`]) under dotted names such as
//! `blocks.3.attn.q_proj.weight`.

pub mod attention;
pub mod block;
pub mod config;
pub mod error;
pub mod factored;
pub mod ffn;
pub mod graph;
pub mod kv;
pub mod layers;
pub mod metrics;
pub mod model;
pub mod ops_count;
pub mod param;
pub mod trainer;

pub use attention::AttentionMask;
pub use config::{ModelConfig, ModelKind, TaskKind};
pub use error::ModelError;
pub use factored::FactoredLinear;
pub use graph::{BlockSpec, HeadSpec, ModelGraph, StemSpec};
pub use kv::{KvCache, LayerKv};
pub use layers::{Layer, LayerCtx, Residual};
pub use model::{ModelInput, TransformerModel};
pub use param::{AdamWConfig, Param, ParamPath, ParamStore, ParamVisit, VarBuilder};
pub use trainer::Trainer;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ModelError>;
