//! Per-request key/value caches for autoregressive decoding.
//!
//! During decode a request re-uses the keys and values of every token it has
//! already processed instead of recomputing them, so each new token costs one
//! row of projections plus attention over the cached history. [`LayerKv`]
//! holds one attention layer's cache; [`KvCache`] stacks one `LayerKv` per
//! transformer block and is owned by a single request for its lifetime.
//!
//! The caches store exact `f32` values, which is what makes incremental
//! decoding bit-identical to the full causal forward pass (see
//! [`crate::attention::MultiHeadAttention::decode_step`]). What the cache
//! *costs* on HyFlexPIM hardware — SLC versus MLC cells, programming energy,
//! append latency — is modeled separately in `hyflex-pim`'s mapping layer.

use crate::error::ModelError;
use crate::Result;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Cached keys and values of one attention layer for one request.
///
/// Both matrices are `[cached_tokens, dim]` with all heads concatenated
/// column-wise, matching the projection layout in
/// [`crate::attention::MultiHeadAttention`]. Empty caches hold no matrix at
/// all (the tensor crate rejects zero-row matrices).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerKv {
    k: Option<Matrix>,
    v: Option<Matrix>,
}

impl LayerKv {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LayerKv::default()
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.k.as_ref().map_or(0, Matrix::rows)
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached key rows, if any.
    pub fn keys(&self) -> Option<&Matrix> {
        self.k.as_ref()
    }

    /// The cached value rows, if any.
    pub fn values(&self) -> Option<&Matrix> {
        self.v.as_ref()
    }

    /// Appends freshly projected key/value rows (one row per new token).
    ///
    /// # Errors
    ///
    /// Returns an error if the key and value shapes disagree with each other
    /// or with the already-cached rows.
    pub fn append(&mut self, k_new: &Matrix, v_new: &Matrix) -> Result<()> {
        if k_new.shape() != v_new.shape() {
            return Err(ModelError::InvalidInput(format!(
                "KV append shapes disagree: keys {:?}, values {:?}",
                k_new.shape(),
                v_new.shape()
            )));
        }
        match (&mut self.k, &mut self.v) {
            (Some(k), Some(v)) => {
                *k = k.vstack(k_new)?;
                *v = v.vstack(v_new)?;
            }
            _ => {
                self.k = Some(k_new.clone());
                self.v = Some(v_new.clone());
            }
        }
        Ok(())
    }

    /// Drops every cached entry.
    pub fn clear(&mut self) {
        self.k = None;
        self.v = None;
    }
}

/// Per-request KV cache: one [`LayerKv`] per transformer block, growing by
/// one token row per layer at every decode step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    layers: Vec<LayerKv>,
}

impl KvCache {
    /// Creates an empty cache for a model with `num_layers` blocks.
    pub fn new(num_layers: usize) -> Self {
        KvCache {
            layers: vec![LayerKv::new(); num_layers],
        }
    }

    /// Number of per-layer caches.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of cached tokens (all layers stay in lockstep).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, LayerKv::len)
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-layer caches.
    pub fn layers(&self) -> &[LayerKv] {
        &self.layers
    }

    /// Mutable access to the per-layer caches (the decode path appends
    /// through this).
    pub fn layers_mut(&mut self) -> &mut [LayerKv] {
        &mut self.layers
    }

    /// Drops every cached entry in every layer.
    pub fn clear(&mut self) {
        for layer in &mut self.layers {
            layer.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows_and_clear_empties() {
        let mut kv = LayerKv::new();
        assert!(kv.is_empty());
        assert!(kv.keys().is_none());
        let row = Matrix::filled(1, 4, 1.0);
        kv.append(&row, &row).unwrap();
        kv.append(&row, &row).unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.keys().unwrap().shape(), (2, 4));
        assert_eq!(kv.values().unwrap().shape(), (2, 4));
        kv.clear();
        assert!(kv.is_empty());
    }

    #[test]
    fn append_rejects_mismatched_shapes() {
        let mut kv = LayerKv::new();
        let k = Matrix::filled(1, 4, 1.0);
        let v = Matrix::filled(1, 3, 1.0);
        assert!(kv.append(&k, &v).is_err());
        kv.append(&k, &k).unwrap();
        // Wrong width versus the cached rows.
        let wide = Matrix::filled(1, 5, 1.0);
        assert!(kv.append(&wide, &wide).is_err());
    }

    #[test]
    fn cache_tracks_layers_in_lockstep() {
        let mut cache = KvCache::new(3);
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.len(), 0);
        let row = Matrix::filled(1, 4, 0.5);
        for layer in cache.layers_mut() {
            layer.append(&row, &row).unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
