//! End-to-end transformer models: embeddings, block stack, and task head.
//!
//! [`TransformerModel`] is assembled by the declarative builder in
//! [`crate::graph`]; this module owns the runtime behaviour — forward,
//! packed batching, backward, and the named parameter surface.

use crate::attention::AttentionMask;
use crate::block::TransformerBlock;
use crate::config::{ModelConfig, TaskKind};
use crate::error::ModelError;
use crate::graph::ModelGraph;
use crate::kv::{KvCache, LayerKv};
use crate::layers::{AnyLinear, Embedding, LayerNorm, Linear};
use crate::param::{Param, ParamPath, ParamStore, ParamVisit};
use crate::Result;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Input to a transformer model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelInput {
    /// A sequence of token ids (encoder / decoder models).
    Tokens(Vec<usize>),
    /// A matrix of patch/feature vectors, one row per position (vision models).
    Features(Matrix),
}

impl ModelInput {
    /// Sequence length of the input.
    pub fn len(&self) -> usize {
        match self {
            ModelInput::Tokens(t) => t.len(),
            ModelInput::Features(f) => f.rows(),
        }
    }

    /// Whether the input is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generates a model-level named-linear accessor by flattening the per-block
/// lists under `blocks.N.` prefixes; the `&`/`&mut` pair shares this one body
/// so the enumeration order (block-major, paper layer order within a block)
/// is defined exactly once.
macro_rules! impl_model_named_linears {
    ($(#[$doc:meta])* $fn_name:ident, $iter:ident, $($mut_:tt)?) => {
        $(#[$doc])*
        pub fn $fn_name(& $($mut_)? self) -> Vec<(String, & $($mut_)? AnyLinear)> {
            self.blocks
                .$iter()
                .enumerate()
                .flat_map(|(i, b)| {
                    b.$fn_name()
                        .into_iter()
                        .map(move |(name, layer)| (format!("blocks.{i}.{name}"), layer))
                })
                .collect()
        }
    };
}

/// A complete transformer model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerModel {
    config: ModelConfig,
    embedding: Option<Embedding>,
    patch_proj: Option<Linear>,
    blocks: Vec<TransformerBlock>,
    final_norm: LayerNorm,
    head: Linear,
}

impl TransformerModel {
    /// Builds a randomly initialized model from a configuration.
    ///
    /// Shorthand for [`ModelGraph::from_config`] followed by
    /// [`ModelGraph::build`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for inconsistent configurations.
    pub fn new(config: ModelConfig, rng: &mut Rng) -> Result<Self> {
        ModelGraph::from_config(config)?.build(rng)
    }

    /// Assembles a model from already-constructed parts (the graph builder's
    /// final step).
    pub(crate) fn from_parts(
        config: ModelConfig,
        embedding: Option<Embedding>,
        patch_proj: Option<Linear>,
        blocks: Vec<TransformerBlock>,
        final_norm: LayerNorm,
        head: Linear,
    ) -> Self {
        TransformerModel {
            config,
            embedding,
            patch_proj,
            blocks,
            final_norm,
            head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The transformer blocks.
    pub fn blocks(&self) -> &[TransformerBlock] {
        &self.blocks
    }

    /// A flat, named snapshot of every parameter (see [`ParamStore`]).
    pub fn params(&self) -> ParamStore<'_> {
        ParamStore::of(self)
    }

    // Both model-level accessors expand from the same flattening definition,
    // mirroring the macro-generated pair on [`TransformerBlock`].
    impl_model_named_linears!(
        /// Mutable access to every static linear layer of every block as
        /// `(name, layer)` pairs — `blocks.0.attn.q_proj` through
        /// `blocks.N.ffn.fc2` — in block-major, paper layer order.
        ///
        /// This is the hook the gradient-redistribution pipeline uses to
        /// factorize layers and to inject hardware noise.
        named_linears_mut, iter_mut, mut
    );
    impl_model_named_linears!(
        /// Immutable access to every named static linear layer, in the same
        /// order as [`TransformerModel::named_linears_mut`].
        named_linears, iter,
    );

    fn embed(&self, input: &ModelInput) -> Result<Matrix> {
        match (input, &self.embedding, &self.patch_proj) {
            (ModelInput::Tokens(tokens), Some(embedding), _) => embedding.forward(tokens),
            (ModelInput::Features(features), _, Some(proj)) => {
                if features.rows() > self.config.max_seq_len {
                    return Err(ModelError::InvalidInput(format!(
                        "{} patches exceed maximum {}",
                        features.rows(),
                        self.config.max_seq_len
                    )));
                }
                proj.forward(features)
            }
            (ModelInput::Tokens(_), None, _) => Err(ModelError::InvalidInput(
                "vision model cannot consume token input".to_string(),
            )),
            (ModelInput::Features(_), _, None) => Err(ModelError::InvalidInput(
                "token model cannot consume feature input".to_string(),
            )),
        }
    }

    /// The whole-sequence attention mask this model's topology implies.
    fn sequence_mask(&self) -> AttentionMask<'static> {
        if self.config.is_causal() {
            AttentionMask::Causal
        } else {
            AttentionMask::Bidirectional
        }
    }

    /// Applies the task head to one request's final hidden rows.
    fn head_logits(&self, hidden: &Matrix) -> Result<Matrix> {
        match self.config.task {
            TaskKind::LanguageModeling => self.head.forward(hidden),
            _ => self.head.forward(&mean_pool(hidden)),
        }
    }

    /// Runs the model and returns the task logits.
    ///
    /// * Classification / regression: a `[1, outputs]` row (mean-pooled).
    /// * Language modeling: a `[L, vocab]` matrix of next-token logits.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors.
    pub fn forward(&self, input: &ModelInput) -> Result<Matrix> {
        let mask = self.sequence_mask();
        let mut x = self.embed(input)?;
        for block in &self.blocks {
            x = block.forward_masked(&x, &mask)?;
        }
        let hidden = self.final_norm.forward(&x)?;
        self.head_logits(&hidden)
    }

    /// Runs the model over a group of requests (a serving batch) and returns
    /// one logits matrix per request, in request order.
    ///
    /// The requests are **packed**: each is embedded on its own (positions
    /// restart at zero per request), the rows are concatenated into a single
    /// activation matrix with no padding, and [`AttentionMask::Packed`] keeps
    /// attention from crossing request boundaries. Every per-request result
    /// is bit-identical to calling [`TransformerModel::forward`] on that
    /// request alone, while the whole group shares one pass over the static
    /// weights — mirroring how the PIM arrays amortize a weight read-out
    /// schedule across a serving batch without wasting crossbar rows on
    /// padding lanes. The runtime crate's batch scheduler uses this to
    /// execute the request groups it forms.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] for an empty group and propagates
    /// per-request embedding/shape errors.
    pub fn forward_batch(&self, inputs: &[ModelInput]) -> Result<Vec<Matrix>> {
        if inputs.is_empty() {
            return Err(ModelError::InvalidInput(
                "batched forward needs at least one request".to_string(),
            ));
        }
        let (mut x, segments) = self.pack(inputs)?;
        let mask = AttentionMask::Packed {
            segments: &segments,
            causal: self.config.is_causal(),
        };
        for block in &self.blocks {
            x = block.forward_masked(&x, &mask)?;
        }
        let hidden = self.final_norm.forward(&x)?;
        segments
            .iter()
            .map(|seg| {
                let rows = hidden.submatrix(seg.start, 0, seg.end - seg.start, hidden.cols())?;
                self.head_logits(&rows)
            })
            .collect()
    }

    /// Embeds each request independently and concatenates the rows into one
    /// packed activation matrix, returning it with the per-request segments.
    fn pack(&self, inputs: &[ModelInput]) -> Result<(Matrix, Vec<Range<usize>>)> {
        let mut segments = Vec::with_capacity(inputs.len());
        let mut embedded = Vec::with_capacity(inputs.len());
        let mut rows = 0usize;
        for input in inputs {
            let e = self.embed(input)?;
            segments.push(rows..rows + e.rows());
            rows += e.rows();
            embedded.push(e);
        }
        let mut packed = Matrix::zeros(rows, self.config.hidden_dim);
        for (seg, e) in segments.iter().zip(&embedded) {
            packed.set_submatrix(seg.start, 0, e)?;
        }
        Ok((packed, segments))
    }

    /// Creates an empty KV cache sized for this model's block stack.
    pub fn new_kv_cache(&self) -> KvCache {
        KvCache::new(self.blocks.len())
    }

    fn check_decode_ready(&self, cache_layers: usize) -> Result<()> {
        if !self.config.is_causal() {
            return Err(ModelError::InvalidInput(
                "KV-cached decoding needs a causal (decoder) model".to_string(),
            ));
        }
        if !matches!(self.config.task, TaskKind::LanguageModeling) {
            return Err(ModelError::InvalidInput(
                "KV-cached decoding needs a language-modeling head".to_string(),
            ));
        }
        if self.embedding.is_none() {
            return Err(ModelError::InvalidInput(
                "KV-cached decoding needs a token embedding".to_string(),
            ));
        }
        if cache_layers != self.blocks.len() {
            return Err(ModelError::InvalidInput(format!(
                "KV cache has {cache_layers} layers, model has {}",
                self.blocks.len()
            )));
        }
        Ok(())
    }

    /// Prefill phase: runs `tokens` through the stack in one pass, growing
    /// `cache` by their keys/values, and returns the `[tokens, vocab]`
    /// next-token logits.
    ///
    /// The tokens sit at absolute positions `cache.len()..cache.len() +
    /// tokens.len()`, so calling prefill on an empty cache processes a fresh
    /// prompt and calling it again extends the same request. Every logits row
    /// is bit-identical to the matching row of
    /// [`TransformerModel::forward`] over the request's full token sequence —
    /// the cached decode path reorders no arithmetic (see
    /// [`crate::attention::MultiHeadAttention::decode_step`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] for non-causal or non-LM models,
    /// a cache of the wrong depth, out-of-vocabulary tokens, or a sequence
    /// overrunning the maximum length.
    pub fn prefill(&self, tokens: &[usize], cache: &mut KvCache) -> Result<Matrix> {
        self.check_decode_ready(cache.num_layers())?;
        let embedding = self.embedding.as_ref().expect("checked by decode_ready");
        let mut x = embedding.forward_from(tokens, cache.len())?;
        for (block, kv) in self.blocks.iter().zip(cache.layers_mut()) {
            x = block.decode_step(&x, kv)?;
        }
        let hidden = self.final_norm.forward(&x)?;
        self.head.forward(&hidden)
    }

    /// Decode phase: appends one token to a request and returns its
    /// `[1, vocab]` next-token logits.
    ///
    /// # Errors
    ///
    /// See [`TransformerModel::prefill`].
    pub fn decode_step(&self, token: usize, cache: &mut KvCache) -> Result<Matrix> {
        self.prefill(&[token], cache)
    }

    /// One iteration-level batched decode step: `tokens[b]` is the next token
    /// of the request owning `caches[b]`, and row `b` of the returned
    /// `[batch, vocab]` matrix is its next-token logits.
    ///
    /// Requests at different positions share the pass — this is what lets the
    /// runtime's continuous batcher admit and retire requests at token
    /// boundaries. Every row is bit-identical to a per-request
    /// [`TransformerModel::decode_step`] call because each sub-layer is
    /// row-independent and attention runs against each request's own cache.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] for an empty batch or mismatched
    /// token/cache counts, plus the per-request errors of
    /// [`TransformerModel::prefill`].
    pub fn decode_step_batch(
        &self,
        tokens: &[usize],
        caches: &mut [&mut KvCache],
    ) -> Result<Matrix> {
        if tokens.is_empty() || tokens.len() != caches.len() {
            return Err(ModelError::InvalidInput(format!(
                "batched decode got {} tokens for {} caches",
                tokens.len(),
                caches.len()
            )));
        }
        for cache in caches.iter() {
            self.check_decode_ready(cache.num_layers())?;
        }
        let embedding = self.embedding.as_ref().expect("checked by decode_ready");
        let mut x = Matrix::zeros(tokens.len(), self.config.hidden_dim);
        for (b, (&tok, cache)) in tokens.iter().zip(caches.iter()).enumerate() {
            let row = embedding.forward_from(&[tok], cache.len())?;
            x.set_submatrix(b, 0, &row)?;
        }
        for (i, block) in self.blocks.iter().enumerate() {
            let mut layer_kvs: Vec<&mut LayerKv> =
                caches.iter_mut().map(|c| &mut c.layers_mut()[i]).collect();
            x = block.decode_step_batch(&x, &mut layer_kvs)?;
        }
        let hidden = self.final_norm.forward(&x)?;
        self.head.forward(&hidden)
    }

    /// Runs the model, then back-propagates `d_logits`, accumulating
    /// gradients in every layer. Returns the forward logits so callers can
    /// compute the loss once.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors.
    pub fn forward_backward(
        &mut self,
        input: &ModelInput,
        d_logits_of: &mut dyn FnMut(&Matrix) -> Matrix,
    ) -> Result<(Matrix, Matrix)> {
        let mask = self.sequence_mask();
        // Forward, caching each block input.
        let x0 = self.embed(input)?;
        let mut block_inputs = Vec::with_capacity(self.blocks.len());
        let mut x = x0.clone();
        for block in &self.blocks {
            block_inputs.push(x.clone());
            x = block.forward_masked(&x, &mask)?;
        }
        let hidden = self.final_norm.forward(&x)?;
        let (logits, pooled) = match self.config.task {
            TaskKind::LanguageModeling => (self.head.forward(&hidden)?, None),
            _ => {
                let pooled = mean_pool(&hidden);
                (self.head.forward(&pooled)?, Some(pooled))
            }
        };

        let d_logits = d_logits_of(&logits);

        // Backward through the head.
        let d_hidden = match (&self.config.task, pooled) {
            (TaskKind::LanguageModeling, _) => self.head.backward(&hidden, &d_logits)?,
            (_, Some(pooled)) => {
                let d_pooled = self.head.backward(&pooled, &d_logits)?;
                // Mean pooling broadcast: every row receives d_pooled / L.
                let len = hidden.rows() as f32;
                let mut d_hidden = Matrix::zeros(hidden.rows(), hidden.cols());
                for r in 0..hidden.rows() {
                    for c in 0..hidden.cols() {
                        d_hidden.set(r, c, d_pooled.at(0, c) / len);
                    }
                }
                d_hidden
            }
            (_, None) => unreachable!("pooled is always present for non-LM tasks"),
        };

        // Backward through the final layer norm and the block stack.
        let mut d_x = self.final_norm.backward(&x, &d_hidden)?;
        for (block, block_input) in self.blocks.iter_mut().zip(block_inputs.iter()).rev() {
            d_x = block.backward_masked(block_input, &d_x, &mask)?;
        }

        // Backward into the embedding / patch projection.
        match (input, &mut self.embedding, &mut self.patch_proj) {
            (ModelInput::Tokens(tokens), Some(embedding), _) => {
                embedding.backward(tokens, &d_x)?;
            }
            (ModelInput::Features(features), _, Some(proj)) => {
                proj.backward(features, &d_x)?;
            }
            _ => {}
        }
        Ok((logits, d_logits))
    }
}

impl ParamVisit for TransformerModel {
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param)) {
        if let Some(e) = &self.embedding {
            path.scope("embedding", |p| e.visit_params(p, f));
        }
        if let Some(proj) = &self.patch_proj {
            path.scope("patch_proj", |p| proj.visit_params(p, f));
        }
        for (i, block) in self.blocks.iter().enumerate() {
            let scope = format!("blocks.{i}");
            path.scope(&scope, |p| block.visit_params(p, f));
        }
        path.scope("final_norm", |p| self.final_norm.visit_params(p, f));
        path.scope("head", |p| self.head.visit_params(p, f));
    }

    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    ) {
        if let Some(e) = &mut self.embedding {
            path.scope("embedding", |p| e.visit_params_mut(p, f));
        }
        if let Some(proj) = &mut self.patch_proj {
            path.scope("patch_proj", |p| proj.visit_params_mut(p, f));
        }
        for (i, block) in self.blocks.iter_mut().enumerate() {
            let scope = format!("blocks.{i}");
            path.scope(&scope, |p| block.visit_params_mut(p, f));
        }
        path.scope("final_norm", |p| self.final_norm.visit_params_mut(p, f));
        path.scope("head", |p| self.head.visit_params_mut(p, f));
    }
}

fn mean_pool(hidden: &Matrix) -> Matrix {
    let mut pooled = Matrix::zeros(1, hidden.cols());
    for c in 0..hidden.cols() {
        let mut acc = 0.0f32;
        for r in 0..hidden.rows() {
            acc += hidden.at(r, c);
        }
        pooled.set(0, c, acc / hidden.rows() as f32);
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(seed: u64) -> TransformerModel {
        let mut rng = Rng::seed_from(seed);
        TransformerModel::new(ModelConfig::tiny_encoder(3), &mut rng).unwrap()
    }

    #[test]
    fn classification_forward_produces_one_row_of_logits() {
        let model = tiny_model(1);
        let logits = model
            .forward(&ModelInput::Tokens(vec![1, 5, 9, 2]))
            .unwrap();
        assert_eq!(logits.shape(), (1, 3));
    }

    #[test]
    fn packed_batched_forward_matches_per_request_forward() {
        let model = tiny_model(7);
        let inputs = vec![
            ModelInput::Tokens(vec![1, 5, 9, 2]),
            ModelInput::Tokens(vec![4, 4]),
            ModelInput::Tokens(vec![7, 0, 3, 3, 3, 1]),
        ];
        let batched = model.forward_batch(&inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        for (input, logits) in inputs.iter().zip(&batched) {
            let solo = model.forward(input).unwrap();
            assert_eq!(solo.shape(), logits.shape());
            for r in 0..solo.rows() {
                for (c, (a, b)) in solo.row(r).iter().zip(logits.row(r)).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "packed logits diverge at [{r},{c}]: {a:?} != {b:?}"
                    );
                }
            }
        }
        assert!(model.forward_batch(&[]).is_err());
    }

    #[test]
    fn packed_causal_batch_matches_per_request_forward() {
        let mut rng = Rng::seed_from(11);
        let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
        let inputs = vec![
            ModelInput::Tokens(vec![3, 1, 4, 1, 5]),
            ModelInput::Tokens(vec![9]),
            ModelInput::Tokens(vec![2, 6, 5]),
        ];
        let batched = model.forward_batch(&inputs).unwrap();
        for (input, logits) in inputs.iter().zip(&batched) {
            let solo = model.forward(input).unwrap();
            assert_eq!(&solo, logits);
        }
    }

    #[test]
    fn kv_decode_matches_full_causal_forward_bitwise() {
        let mut rng = Rng::seed_from(21);
        let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
        let tokens = vec![3usize, 1, 4, 1, 5, 9];
        let full = model.forward(&ModelInput::Tokens(tokens.clone())).unwrap();

        // Prefill the first three tokens in one pass, then decode one by one.
        let mut cache = model.new_kv_cache();
        let prefill = model.prefill(&tokens[..3], &mut cache).unwrap();
        assert_eq!(prefill.shape(), (3, full.cols()));
        for r in 0..3 {
            for c in 0..full.cols() {
                assert_eq!(
                    prefill.at(r, c).to_bits(),
                    full.at(r, c).to_bits(),
                    "prefill logits diverge at [{r},{c}]"
                );
            }
        }
        for (t, &tok) in tokens.iter().enumerate().skip(3) {
            let step = model.decode_step(tok, &mut cache).unwrap();
            assert_eq!(step.shape(), (1, full.cols()));
            for c in 0..full.cols() {
                assert_eq!(
                    step.at(0, c).to_bits(),
                    full.at(t, c).to_bits(),
                    "decode logits diverge at step {t}, col {c}"
                );
            }
        }
        assert_eq!(cache.len(), tokens.len());
    }

    #[test]
    fn batched_decode_matches_sequential_decode_bitwise() {
        let mut rng = Rng::seed_from(22);
        let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
        let prompts = [vec![3usize, 1, 4], vec![9usize], vec![2usize, 6, 5, 3]];
        let next = [1usize, 7, 0];

        // Sequential: decode each request alone.
        let mut solo_caches: Vec<KvCache> = prompts
            .iter()
            .map(|p| {
                let mut c = model.new_kv_cache();
                model.prefill(p, &mut c).unwrap();
                c
            })
            .collect();
        let solo: Vec<Matrix> = next
            .iter()
            .zip(solo_caches.iter_mut())
            .map(|(&tok, c)| model.decode_step(tok, c).unwrap())
            .collect();

        // Batched: same requests share one iteration.
        let mut batch_caches: Vec<KvCache> = prompts
            .iter()
            .map(|p| {
                let mut c = model.new_kv_cache();
                model.prefill(p, &mut c).unwrap();
                c
            })
            .collect();
        let mut refs: Vec<&mut KvCache> = batch_caches.iter_mut().collect();
        let batched = model.decode_step_batch(&next, &mut refs).unwrap();

        assert_eq!(batched.rows(), prompts.len());
        for (b, solo_logits) in solo.iter().enumerate() {
            for c in 0..batched.cols() {
                assert_eq!(
                    batched.at(b, c).to_bits(),
                    solo_logits.at(0, c).to_bits(),
                    "batched decode diverges for request {b}, col {c}"
                );
            }
        }
        // Caches advanced identically.
        for (solo_c, batch_c) in solo_caches.iter().zip(&batch_caches) {
            assert_eq!(solo_c, batch_c);
        }
    }

    #[test]
    fn decode_rejects_bad_models_and_caches() {
        // Encoder models (non-causal, non-LM) cannot decode.
        let encoder = tiny_model(23);
        let mut cache = encoder.new_kv_cache();
        assert!(encoder.prefill(&[1, 2], &mut cache).is_err());

        let mut rng = Rng::seed_from(24);
        let decoder = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
        // Wrong cache depth.
        let mut shallow = KvCache::new(1);
        assert!(decoder.prefill(&[1], &mut shallow).is_err());
        // Out-of-vocabulary token and over-long sequence.
        let mut cache = decoder.new_kv_cache();
        assert!(decoder.prefill(&[1000], &mut cache).is_err());
        let max = decoder.config().max_seq_len;
        let mut cache = decoder.new_kv_cache();
        decoder.prefill(&vec![1; max], &mut cache).unwrap();
        assert!(decoder.decode_step(1, &mut cache).is_err());
        // Batch size / cache count mismatch.
        let mut one = decoder.new_kv_cache();
        decoder.prefill(&[1], &mut one).unwrap();
        let mut refs: Vec<&mut KvCache> = vec![&mut one];
        assert!(decoder.decode_step_batch(&[1, 2], &mut refs).is_err());
        assert!(decoder.decode_step_batch(&[], &mut []).is_err());
    }

    #[test]
    fn lm_forward_produces_per_position_logits() {
        let mut rng = Rng::seed_from(2);
        let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
        let logits = model
            .forward(&ModelInput::Tokens(vec![3, 1, 4, 1, 5]))
            .unwrap();
        assert_eq!(logits.shape(), (5, 64));
    }

    #[test]
    fn vision_forward_consumes_patch_features() {
        let mut rng = Rng::seed_from(3);
        let config = ModelConfig::tiny_vit(10);
        let model = TransformerModel::new(config, &mut rng).unwrap();
        let patches = Matrix::random_normal(9, 24, 0.0, 1.0, &mut rng);
        let logits = model.forward(&ModelInput::Features(patches)).unwrap();
        assert_eq!(logits.shape(), (1, 10));
        // Token input into a vision model is rejected.
        assert!(model.forward(&ModelInput::Tokens(vec![1])).is_err());
    }

    #[test]
    fn token_model_rejects_feature_input_and_bad_tokens() {
        let model = tiny_model(4);
        assert!(model
            .forward(&ModelInput::Features(Matrix::zeros(2, 2)))
            .is_err());
        assert!(model.forward(&ModelInput::Tokens(vec![1000])).is_err());
        assert!(model.forward(&ModelInput::Tokens(vec![0; 17])).is_err());
    }

    #[test]
    fn named_linears_exposes_six_layers_per_block_with_scoped_names() {
        let mut model = tiny_model(5);
        let named = model.named_linears();
        assert_eq!(named.len(), 2 * 6);
        assert_eq!(named[0].0, "blocks.0.attn.q_proj");
        assert_eq!(named[5].0, "blocks.0.ffn.fc2");
        assert_eq!(named[6].0, "blocks.1.attn.q_proj");
        assert_eq!(named[11].0, "blocks.1.ffn.fc2");
        assert_eq!(model.named_linears_mut().len(), 2 * 6);
    }

    #[test]
    fn param_store_resolves_scoped_names() {
        let model = tiny_model(9);
        let store = model.params();
        assert_eq!(store.parameter_count(), model.parameter_count());
        // Exact leaf lookup and the `.weight` fallback both resolve.
        let vb = store.root().pp("blocks.1").pp("attn");
        let direct = vb.get("q_proj.weight").unwrap();
        let fallback = vb.get("q_proj").unwrap();
        assert!(std::ptr::eq(direct, fallback));
        assert!(vb.get("nonexistent").is_err());
        assert!(store.get("embedding.table").is_some());
        assert!(store.get("final_norm.gamma").is_some());
        assert!(store.get("head.bias").is_some());
    }

    #[test]
    fn parameter_count_is_consistent_with_config_estimate() {
        let model = tiny_model(6);
        let approx = model.config().approx_total_params();
        let exact = model.parameter_count();
        let ratio = exact as f64 / approx as f64;
        assert!(ratio > 0.7 && ratio < 1.5, "exact {exact}, approx {approx}");
    }

    #[test]
    fn forward_backward_returns_logits_and_accumulates_grads() {
        let mut model = tiny_model(7);
        let input = ModelInput::Tokens(vec![1, 2, 3]);
        let (logits, d_logits) = model
            .forward_backward(&input, &mut |logits: &Matrix| logits.scale(1.0))
            .unwrap();
        assert_eq!(logits.shape(), (1, 3));
        assert_eq!(d_logits.shape(), (1, 3));
        // The block weight gradients should now be non-zero.
        let any_grad = model.named_linears().iter().any(|(_, l)| match l {
            AnyLinear::Dense(d) => d.weight_param().grad().max_abs() > 0.0,
            AnyLinear::Factored(_) => false,
        });
        assert!(any_grad, "expected gradients to accumulate in block layers");
    }

    #[test]
    fn model_input_len_helpers() {
        assert_eq!(ModelInput::Tokens(vec![1, 2]).len(), 2);
        assert!(!ModelInput::Tokens(vec![1]).is_empty());
        assert_eq!(ModelInput::Features(Matrix::zeros(3, 2)).len(), 3);
    }

    #[test]
    fn invalid_configuration_is_rejected_at_construction() {
        let mut rng = Rng::seed_from(8);
        let mut config = ModelConfig::tiny_encoder(2);
        config.num_heads = 3;
        assert!(TransformerModel::new(config, &mut rng).is_err());
    }
}
