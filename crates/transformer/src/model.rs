//! End-to-end transformer models: embeddings, block stack, and task head.

use crate::block::TransformerBlock;
use crate::config::{ModelConfig, ModelKind, TaskKind};
use crate::error::ModelError;
use crate::layers::{AnyLinear, Embedding, LayerNorm, Linear};
use crate::param::AdamWConfig;
use crate::Result;
use hyflex_tensor::rng::Rng;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Input to a transformer model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelInput {
    /// A sequence of token ids (encoder / decoder models).
    Tokens(Vec<usize>),
    /// A matrix of patch/feature vectors, one row per position (vision models).
    Features(Matrix),
}

impl ModelInput {
    /// Sequence length of the input.
    pub fn len(&self) -> usize {
        match self {
            ModelInput::Tokens(t) => t.len(),
            ModelInput::Features(f) => f.rows(),
        }
    }

    /// Whether the input is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete transformer model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerModel {
    config: ModelConfig,
    embedding: Option<Embedding>,
    patch_proj: Option<Linear>,
    blocks: Vec<TransformerBlock>,
    final_norm: LayerNorm,
    head: Linear,
}

/// Generates the `&`/`&mut` pair of whole-model static-linear accessors from
/// one body (the per-block ordering contract lives on
/// [`TransformerBlock::static_linears`]).
macro_rules! impl_model_static_linears {
    ($(#[$doc:meta])* $fn_name:ident, $iter:ident, $($mut_:tt)?) => {
        $(#[$doc])*
        pub fn $fn_name(& $($mut_)? self) -> Vec<& $($mut_)? AnyLinear> {
            self.blocks.$iter().flat_map(|b| b.$fn_name()).collect()
        }
    };
}

impl TransformerModel {
    /// Builds a randomly initialized model from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for inconsistent configurations.
    pub fn new(config: ModelConfig, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        let (embedding, patch_proj) = match config.kind {
            ModelKind::VisionEncoder => {
                let patch_dim = config
                    .patch_dim
                    .ok_or_else(|| ModelError::InvalidConfig("missing patch_dim".into()))?;
                (None, Some(Linear::new(patch_dim, config.hidden_dim, rng)))
            }
            _ => (
                Some(Embedding::new(
                    config.vocab_size,
                    config.max_seq_len,
                    config.hidden_dim,
                    rng,
                )),
                None,
            ),
        };
        let blocks = (0..config.num_layers)
            .map(|_| {
                TransformerBlock::new(config.hidden_dim, config.ffn_dim, config.num_heads, rng)
            })
            .collect::<Result<Vec<_>>>()?;
        let head_outputs = config.task.head_outputs(config.vocab_size);
        Ok(TransformerModel {
            final_norm: LayerNorm::new(config.hidden_dim),
            head: Linear::new(config.hidden_dim, head_outputs, rng),
            embedding,
            patch_proj,
            blocks,
            config,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The transformer blocks.
    pub fn blocks(&self) -> &[TransformerBlock] {
        &self.blocks
    }

    impl_model_static_linears!(
        /// Mutable access to every static linear layer of every block, in
        /// `(layer_index, [W_Q, W_K, W_V, W_proj, FFN1, FFN2])` order,
        /// flattened.
        ///
        /// This is the hook the gradient-redistribution pipeline uses to
        /// factorize layers and to inject hardware noise.
        static_linears_mut, iter_mut, mut
    );
    impl_model_static_linears!(
        /// Immutable access to every static linear layer.
        static_linears, iter,
    );

    /// Total scalar parameter count.
    pub fn parameter_count(&self) -> usize {
        let mut count: usize = self.blocks.iter().map(|b| b.parameter_count()).sum();
        count += self.final_norm.parameter_count() + self.head.parameter_count();
        if let Some(e) = &self.embedding {
            count += e.parameter_count();
        }
        if let Some(p) = &self.patch_proj {
            count += p.parameter_count();
        }
        count
    }

    fn embed(&self, input: &ModelInput) -> Result<Matrix> {
        match (input, &self.embedding, &self.patch_proj) {
            (ModelInput::Tokens(tokens), Some(embedding), _) => embedding.forward(tokens),
            (ModelInput::Features(features), _, Some(proj)) => {
                if features.rows() > self.config.max_seq_len {
                    return Err(ModelError::InvalidInput(format!(
                        "{} patches exceed maximum {}",
                        features.rows(),
                        self.config.max_seq_len
                    )));
                }
                proj.forward(features)
            }
            (ModelInput::Tokens(_), None, _) => Err(ModelError::InvalidInput(
                "vision model cannot consume token input".to_string(),
            )),
            (ModelInput::Features(_), _, None) => Err(ModelError::InvalidInput(
                "token model cannot consume feature input".to_string(),
            )),
        }
    }

    /// Runs the model and returns the task logits.
    ///
    /// * Classification / regression: a `[1, outputs]` row (mean-pooled).
    /// * Language modeling: a `[L, vocab]` matrix of next-token logits.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors.
    pub fn forward(&self, input: &ModelInput) -> Result<Matrix> {
        let causal = self.config.is_causal();
        let mut x = self.embed(input)?;
        for block in &self.blocks {
            x = block.forward(&x, causal)?;
        }
        let hidden = self.final_norm.forward(&x)?;
        match self.config.task {
            TaskKind::LanguageModeling => self.head.forward(&hidden),
            _ => {
                let pooled = mean_pool(&hidden);
                self.head.forward(&pooled)
            }
        }
    }

    /// Runs the model over a group of requests (a serving batch) and returns
    /// one logits matrix per request, in request order.
    ///
    /// Weights are static in the PIM arrays, so a batch shares one weight
    /// read-out schedule; functionally the requests are independent, and the
    /// results are identical to calling [`TransformerModel::forward`] per
    /// request. The runtime crate's batch scheduler uses this to execute the
    /// request groups it forms.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] for an empty group and propagates
    /// per-request forward errors.
    pub fn forward_batch(&self, inputs: &[ModelInput]) -> Result<Vec<Matrix>> {
        if inputs.is_empty() {
            return Err(ModelError::InvalidInput(
                "batched forward needs at least one request".to_string(),
            ));
        }
        inputs.iter().map(|input| self.forward(input)).collect()
    }

    /// Runs the model, then back-propagates `d_logits`, accumulating
    /// gradients in every layer. Returns the forward logits so callers can
    /// compute the loss once.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors.
    pub fn forward_backward(
        &mut self,
        input: &ModelInput,
        d_logits_of: &mut dyn FnMut(&Matrix) -> Matrix,
    ) -> Result<(Matrix, Matrix)> {
        let causal = self.config.is_causal();
        // Forward, caching each block input.
        let x0 = self.embed(input)?;
        let mut block_inputs = Vec::with_capacity(self.blocks.len());
        let mut x = x0.clone();
        for block in &self.blocks {
            block_inputs.push(x.clone());
            x = block.forward(&x, causal)?;
        }
        let hidden = self.final_norm.forward(&x)?;
        let (logits, pooled) = match self.config.task {
            TaskKind::LanguageModeling => (self.head.forward(&hidden)?, None),
            _ => {
                let pooled = mean_pool(&hidden);
                (self.head.forward(&pooled)?, Some(pooled))
            }
        };

        let d_logits = d_logits_of(&logits);

        // Backward through the head.
        let d_hidden = match (&self.config.task, pooled) {
            (TaskKind::LanguageModeling, _) => self.head.backward(&hidden, &d_logits)?,
            (_, Some(pooled)) => {
                let d_pooled = self.head.backward(&pooled, &d_logits)?;
                // Mean pooling broadcast: every row receives d_pooled / L.
                let len = hidden.rows() as f32;
                let mut d_hidden = Matrix::zeros(hidden.rows(), hidden.cols());
                for r in 0..hidden.rows() {
                    for c in 0..hidden.cols() {
                        d_hidden.set(r, c, d_pooled.at(0, c) / len);
                    }
                }
                d_hidden
            }
            (_, None) => unreachable!("pooled is always present for non-LM tasks"),
        };

        // Backward through the final layer norm and the block stack.
        let mut d_x = self.final_norm.backward(&x, &d_hidden)?;
        for (block, block_input) in self.blocks.iter_mut().zip(block_inputs.iter()).rev() {
            d_x = block.backward(block_input, &d_x, causal)?;
        }

        // Backward into the embedding / patch projection.
        match (input, &mut self.embedding, &mut self.patch_proj) {
            (ModelInput::Tokens(tokens), Some(embedding), _) => {
                embedding.backward(tokens, &d_x)?;
            }
            (ModelInput::Features(features), _, Some(proj)) => {
                proj.backward(features, &d_x)?;
            }
            _ => {}
        }
        Ok((logits, d_logits))
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        if let Some(e) = &mut self.embedding {
            e.zero_grad();
        }
        if let Some(p) = &mut self.patch_proj {
            p.zero_grad();
        }
        for block in &mut self.blocks {
            block.zero_grad();
        }
        self.final_norm.zero_grad();
        self.head.zero_grad();
    }

    /// Applies one AdamW step to every parameter.
    pub fn step(&mut self, config: &AdamWConfig, batch_size: usize) {
        if let Some(e) = &mut self.embedding {
            e.step(config, batch_size);
        }
        if let Some(p) = &mut self.patch_proj {
            p.step(config, batch_size);
        }
        for block in &mut self.blocks {
            block.step(config, batch_size);
        }
        self.final_norm.step(config, batch_size);
        self.head.step(config, batch_size);
    }
}

fn mean_pool(hidden: &Matrix) -> Matrix {
    let mut pooled = Matrix::zeros(1, hidden.cols());
    for c in 0..hidden.cols() {
        let mut acc = 0.0f32;
        for r in 0..hidden.rows() {
            acc += hidden.at(r, c);
        }
        pooled.set(0, c, acc / hidden.rows() as f32);
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(seed: u64) -> TransformerModel {
        let mut rng = Rng::seed_from(seed);
        TransformerModel::new(ModelConfig::tiny_encoder(3), &mut rng).unwrap()
    }

    #[test]
    fn classification_forward_produces_one_row_of_logits() {
        let model = tiny_model(1);
        let logits = model
            .forward(&ModelInput::Tokens(vec![1, 5, 9, 2]))
            .unwrap();
        assert_eq!(logits.shape(), (1, 3));
    }

    #[test]
    fn batched_forward_matches_per_request_forward() {
        let model = tiny_model(7);
        let inputs = vec![
            ModelInput::Tokens(vec![1, 5, 9, 2]),
            ModelInput::Tokens(vec![4, 4]),
            ModelInput::Tokens(vec![7, 0, 3, 3, 3, 1]),
        ];
        let batched = model.forward_batch(&inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        for (input, logits) in inputs.iter().zip(&batched) {
            assert_eq!(logits, &model.forward(input).unwrap());
        }
        assert!(model.forward_batch(&[]).is_err());
    }

    #[test]
    fn lm_forward_produces_per_position_logits() {
        let mut rng = Rng::seed_from(2);
        let model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
        let logits = model
            .forward(&ModelInput::Tokens(vec![3, 1, 4, 1, 5]))
            .unwrap();
        assert_eq!(logits.shape(), (5, 64));
    }

    #[test]
    fn vision_forward_consumes_patch_features() {
        let mut rng = Rng::seed_from(3);
        let config = ModelConfig::tiny_vit(10);
        let model = TransformerModel::new(config, &mut rng).unwrap();
        let patches = Matrix::random_normal(9, 24, 0.0, 1.0, &mut rng);
        let logits = model.forward(&ModelInput::Features(patches)).unwrap();
        assert_eq!(logits.shape(), (1, 10));
        // Token input into a vision model is rejected.
        assert!(model.forward(&ModelInput::Tokens(vec![1])).is_err());
    }

    #[test]
    fn token_model_rejects_feature_input_and_bad_tokens() {
        let model = tiny_model(4);
        assert!(model
            .forward(&ModelInput::Features(Matrix::zeros(2, 2)))
            .is_err());
        assert!(model.forward(&ModelInput::Tokens(vec![1000])).is_err());
        assert!(model.forward(&ModelInput::Tokens(vec![0; 17])).is_err());
    }

    #[test]
    fn static_linears_exposes_six_layers_per_block() {
        let mut model = tiny_model(5);
        assert_eq!(model.static_linears().len(), 2 * 6);
        assert_eq!(model.static_linears_mut().len(), 2 * 6);
    }

    #[test]
    fn parameter_count_is_consistent_with_config_estimate() {
        let model = tiny_model(6);
        let approx = model.config().approx_total_params();
        let exact = model.parameter_count();
        let ratio = exact as f64 / approx as f64;
        assert!(ratio > 0.7 && ratio < 1.5, "exact {exact}, approx {approx}");
    }

    #[test]
    fn forward_backward_returns_logits_and_accumulates_grads() {
        let mut model = tiny_model(7);
        let input = ModelInput::Tokens(vec![1, 2, 3]);
        let (logits, d_logits) = model
            .forward_backward(&input, &mut |logits: &Matrix| logits.scale(1.0))
            .unwrap();
        assert_eq!(logits.shape(), (1, 3));
        assert_eq!(d_logits.shape(), (1, 3));
        // The head weight gradient should now be non-zero.
        let any_grad = model.static_linears().iter().any(|l| match l {
            AnyLinear::Dense(d) => d.weight_param().grad().max_abs() > 0.0,
            AnyLinear::Factored(_) => false,
        });
        assert!(any_grad, "expected gradients to accumulate in block layers");
    }

    #[test]
    fn model_input_len_helpers() {
        assert_eq!(ModelInput::Tokens(vec![1, 2]).len(), 2);
        assert!(!ModelInput::Tokens(vec![1]).is_empty());
        assert_eq!(ModelInput::Features(Matrix::zeros(3, 2)).len(), 3);
    }

    #[test]
    fn invalid_configuration_is_rejected_at_construction() {
        let mut rng = Rng::seed_from(8);
        let mut config = ModelConfig::tiny_encoder(2);
        config.num_heads = 3;
        assert!(TransformerModel::new(config, &mut rng).is_err());
    }
}
