//! Training and evaluation loops.
//!
//! The trainer implements the paper's fine-tuning recipe (AdamW, a handful of
//! epochs, small batches — Table 1) generically over classification,
//! regression, and language-modeling tasks so both the dense pre-training of
//! the tiny models and the post-SVD fine-tuning of the gradient
//! redistribution pipeline reuse the same code.

use crate::config::TaskKind;
use crate::error::ModelError;
use crate::metrics::TaskMetrics;
use crate::model::{ModelInput, TransformerModel};
use crate::param::{AdamWConfig, ParamVisit};
use crate::Result;
use hyflex_tensor::activations::softmax;
use hyflex_tensor::stats;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The supervised target for one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// Class index for classification tasks.
    Class(usize),
    /// Scalar value for regression tasks.
    Value(f32),
    /// Next-token ids (same length as the input) for language modeling.
    NextTokens(Vec<usize>),
}

/// One supervised sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Model input.
    pub input: ModelInput,
    /// Supervised target.
    pub target: Target,
}

/// Loss value and gradient for one sample's logits.
fn loss_and_grad(task: &TaskKind, logits: &Matrix, target: &Target) -> Result<(f64, Matrix)> {
    match (task, target) {
        (TaskKind::Classification { num_classes }, Target::Class(label)) => {
            if *label >= *num_classes || logits.cols() != *num_classes {
                return Err(ModelError::InvalidInput(format!(
                    "label {label} incompatible with {num_classes}-way head"
                )));
            }
            let probs = softmax(logits.row(0));
            let loss = -(probs[*label].max(1e-12) as f64).ln();
            let mut grad = Matrix::zeros(1, *num_classes);
            for (c, &p) in probs.iter().enumerate() {
                let indicator = if c == *label { 1.0 } else { 0.0 };
                grad.set(0, c, p - indicator);
            }
            Ok((loss, grad))
        }
        (TaskKind::Regression, Target::Value(value)) => {
            let prediction = logits.at(0, 0);
            let diff = prediction - value;
            let grad = Matrix::from_vec(1, 1, vec![2.0 * diff])?;
            Ok((f64::from(diff * diff), grad))
        }
        (TaskKind::LanguageModeling, Target::NextTokens(next)) => {
            if next.len() != logits.rows() {
                return Err(ModelError::InvalidInput(format!(
                    "{} next tokens for {} positions",
                    next.len(),
                    logits.rows()
                )));
            }
            let vocab = logits.cols();
            let mut grad = Matrix::zeros(logits.rows(), vocab);
            let mut total_loss = 0.0f64;
            for (r, &tok) in next.iter().enumerate() {
                if tok >= vocab {
                    return Err(ModelError::InvalidInput(format!(
                        "target token {tok} outside vocabulary {vocab}"
                    )));
                }
                let probs = softmax(logits.row(r));
                total_loss += -(probs[tok].max(1e-12) as f64).ln();
                for (c, &p) in probs.iter().enumerate() {
                    let indicator = if c == tok { 1.0 } else { 0.0 };
                    grad.set(r, c, (p - indicator) / next.len() as f32);
                }
            }
            Ok((total_loss / next.len() as f64, grad))
        }
        _ => Err(ModelError::InvalidInput(
            "target kind does not match the model task".to_string(),
        )),
    }
}

/// Evaluation summary over a dataset split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Mean loss over the split.
    pub mean_loss: f64,
    /// Task-appropriate quality metrics.
    pub metrics: TaskMetrics,
}

/// Fine-tuning driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trainer {
    /// Optimizer hyper-parameters.
    pub optimizer: AdamWConfig,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
}

impl Trainer {
    /// Creates a trainer with the given optimizer settings and batch size.
    pub fn new(optimizer: AdamWConfig, batch_size: usize) -> Self {
        Trainer {
            optimizer,
            batch_size: batch_size.max(1),
        }
    }

    /// Runs one epoch of training and returns the mean training loss.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors from the model.
    pub fn train_epoch(&self, model: &mut TransformerModel, samples: &[Sample]) -> Result<f64> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let task = model.config().task;
        let mut total_loss = 0.0f64;
        for batch in samples.chunks(self.batch_size) {
            model.zero_grad();
            for sample in batch {
                let mut loss_cell = 0.0f64;
                let target = sample.target.clone();
                model.forward_backward(&sample.input, &mut |logits: &Matrix| {
                    let (loss, grad) = loss_and_grad(&task, logits, &target)
                        .expect("loss configuration already validated");
                    loss_cell = loss;
                    grad
                })?;
                total_loss += loss_cell;
            }
            model.step(&self.optimizer, batch.len());
        }
        Ok(total_loss / samples.len() as f64)
    }

    /// Runs several epochs, returning the loss after each epoch.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors from the model.
    pub fn train(
        &self,
        model: &mut TransformerModel,
        samples: &[Sample],
        epochs: usize,
    ) -> Result<Vec<f64>> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            losses.push(self.train_epoch(model, samples)?);
        }
        Ok(losses)
    }

    /// Evaluates a model on a dataset split without updating parameters.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors from the model.
    pub fn evaluate(&self, model: &TransformerModel, samples: &[Sample]) -> Result<EvalReport> {
        evaluate_model(model, samples)
    }

    /// Accumulates loss gradients over `samples` **without** updating any
    /// parameter or clearing existing gradients. Returns the mean loss.
    ///
    /// The gradient-redistribution pipeline uses this after fine-tuning to
    /// measure `|∂L/∂σ_r|` for every retained singular value (Algorithm 1,
    /// step 4). Call `model.zero_grad()` first if a fresh accumulation is
    /// wanted.
    ///
    /// # Errors
    ///
    /// Returns input/shape errors from the model.
    pub fn accumulate_gradients(
        &self,
        model: &mut TransformerModel,
        samples: &[Sample],
    ) -> Result<f64> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let task = model.config().task;
        let mut total_loss = 0.0f64;
        for sample in samples {
            let mut loss_cell = 0.0f64;
            let target = sample.target.clone();
            model.forward_backward(&sample.input, &mut |logits: &Matrix| {
                let (loss, grad) = loss_and_grad(&task, logits, &target)
                    .expect("loss configuration already validated");
                loss_cell = loss;
                grad
            })?;
            total_loss += loss_cell;
        }
        Ok(total_loss / samples.len() as f64)
    }
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer::new(AdamWConfig::default(), 8)
    }
}

/// Evaluates a model on a dataset split (free function so that callers
/// without a [`Trainer`] — e.g. the noise simulator — can reuse it).
///
/// # Errors
///
/// Returns input/shape errors from the model.
pub fn evaluate_model(model: &TransformerModel, samples: &[Sample]) -> Result<EvalReport> {
    let task = model.config().task;
    let mut total_loss = 0.0f64;
    let mut predicted_classes = Vec::new();
    let mut actual_classes = Vec::new();
    let mut predicted_values = Vec::new();
    let mut actual_values = Vec::new();

    for sample in samples {
        let logits = model.forward(&sample.input)?;
        let (loss, _) = loss_and_grad(&task, &logits, &sample.target)?;
        total_loss += loss;
        match (&task, &sample.target) {
            (TaskKind::Classification { .. }, Target::Class(label)) => {
                predicted_classes.push(stats::argmax(logits.row(0)));
                actual_classes.push(*label);
            }
            (TaskKind::Regression, Target::Value(v)) => {
                predicted_values.push(logits.at(0, 0));
                actual_values.push(*v);
            }
            _ => {}
        }
    }

    let n = samples.len().max(1) as f64;
    let mean_loss = total_loss / n;
    let metrics = match task {
        TaskKind::Classification { .. } => {
            TaskMetrics::classification(&predicted_classes, &actual_classes)
        }
        TaskKind::Regression => TaskMetrics::regression(&predicted_values, &actual_values),
        TaskKind::LanguageModeling => TaskMetrics::language_modeling(mean_loss),
    };
    Ok(EvalReport { mean_loss, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use hyflex_tensor::rng::Rng;

    fn classification_dataset(rng: &mut Rng, n: usize) -> Vec<Sample> {
        // Simple learnable rule: class = (whether token 1 appears in the
        // first half of the sequence).
        (0..n)
            .map(|_| {
                let label = rng.below(2);
                let mut tokens: Vec<usize> = (0..8).map(|_| 2 + rng.below(30)).collect();
                if label == 1 {
                    tokens[rng.below(4)] = 1;
                }
                Sample {
                    input: ModelInput::Tokens(tokens),
                    target: Target::Class(label),
                }
            })
            .collect()
    }

    #[test]
    fn training_improves_classification_accuracy() {
        let mut rng = Rng::seed_from(1);
        let mut model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
        let train = classification_dataset(&mut rng, 96);
        let test = classification_dataset(&mut rng, 48);
        let trainer = Trainer::new(
            AdamWConfig {
                learning_rate: 3e-3,
                weight_decay: 0.0,
                ..AdamWConfig::default()
            },
            16,
        );
        let before = trainer.evaluate(&model, &test).unwrap();
        let losses = trainer.train(&mut model, &train, 8).unwrap();
        let after = trainer.evaluate(&model, &test).unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap());
        assert!(
            after.metrics.primary_value() > before.metrics.primary_value(),
            "accuracy should improve: {:?} -> {:?}",
            before.metrics,
            after.metrics
        );
        assert!(after.metrics.primary_value() > 0.7);
    }

    #[test]
    fn language_model_training_reduces_loss() {
        let mut rng = Rng::seed_from(2);
        let mut model = TransformerModel::new(ModelConfig::tiny_decoder(), &mut rng).unwrap();
        // Deterministic cyclic sequences are easy to learn.
        let samples: Vec<Sample> = (0..24)
            .map(|i| {
                let start = i % 8;
                let tokens: Vec<usize> = (0..8).map(|t| (start + t) % 16).collect();
                let next: Vec<usize> = (0..8).map(|t| (start + t + 1) % 16).collect();
                Sample {
                    input: ModelInput::Tokens(tokens),
                    target: Target::NextTokens(next),
                }
            })
            .collect();
        let trainer = Trainer::new(
            AdamWConfig {
                learning_rate: 3e-3,
                weight_decay: 0.0,
                ..AdamWConfig::default()
            },
            8,
        );
        let losses = trainer.train(&mut model, &samples, 6).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.9),
            "LM loss should fall: {losses:?}"
        );
        let report = trainer.evaluate(&model, &samples).unwrap();
        assert!(report.metrics.perplexity().unwrap() < (64.0f64));
    }

    #[test]
    fn regression_training_learns_a_signal() {
        let mut rng = Rng::seed_from(3);
        let mut model =
            TransformerModel::new(ModelConfig::tiny_encoder_regression(), &mut rng).unwrap();
        // Target = fraction of token-1 occurrences.
        let samples: Vec<Sample> = (0..64)
            .map(|_| {
                let ones = rng.below(9);
                let mut tokens = vec![2usize; 8];
                for slot in tokens.iter_mut().take(ones) {
                    *slot = 1;
                }
                Sample {
                    input: ModelInput::Tokens(tokens),
                    target: Target::Value(ones as f32 / 8.0),
                }
            })
            .collect();
        let trainer = Trainer::new(
            AdamWConfig {
                learning_rate: 3e-3,
                weight_decay: 0.0,
                ..AdamWConfig::default()
            },
            16,
        );
        trainer.train(&mut model, &samples, 8).unwrap();
        let report = trainer.evaluate(&model, &samples).unwrap();
        assert!(
            report.metrics.primary_value() > 0.5,
            "Pearson correlation should be positive and sizeable: {:?}",
            report.metrics
        );
    }

    #[test]
    fn mismatched_targets_are_rejected() {
        let mut rng = Rng::seed_from(4);
        let mut model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
        let bad = vec![Sample {
            input: ModelInput::Tokens(vec![1, 2, 3]),
            target: Target::Value(0.3),
        }];
        let trainer = Trainer::default();
        assert!(trainer.evaluate(&model, &bad).is_err());
        assert!(trainer.train_epoch(&mut model, &[]).unwrap() == 0.0);
    }

    #[test]
    fn class_label_out_of_range_is_rejected() {
        let mut rng = Rng::seed_from(5);
        let model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
        let bad = vec![Sample {
            input: ModelInput::Tokens(vec![1, 2, 3]),
            target: Target::Class(5),
        }];
        assert!(evaluate_model(&model, &bad).is_err());
    }
}
