//! Error types for the transformer substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while building, running, or training transformer models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A configuration parameter was invalid (zero dimension, mismatched heads, ...).
    InvalidConfig(String),
    /// An input did not match the model configuration.
    InvalidInput(String),
    /// An underlying tensor operation failed.
    Tensor(hyflex_tensor::TensorError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            ModelError::InvalidInput(msg) => write!(f, "invalid model input: {msg}"),
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hyflex_tensor::TensorError> for ModelError {
    fn from(e: hyflex_tensor::TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ModelError::InvalidConfig("heads".into())
            .to_string()
            .contains("heads"));
        assert!(ModelError::InvalidInput("len".into())
            .to_string()
            .contains("len"));
    }

    #[test]
    fn tensor_errors_convert() {
        let e: ModelError = hyflex_tensor::TensorError::InvalidArgument("x".into()).into();
        assert!(matches!(e, ModelError::Tensor(_)));
        assert!(Error::source(&e).is_some());
    }
}
