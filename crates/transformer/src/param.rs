//! Trainable parameters and the AdamW update rule.
//!
//! Every layer owns its parameters as [`Param`] values: the weight matrix, an
//! accumulated gradient, and the AdamW first/second-moment state. The trainer
//! drives the generic `zero_grad` / accumulate / `adamw_step` cycle; the
//! gradient-redistribution pipeline in `hyflex-pim` additionally reads the
//! accumulated gradient magnitudes to rank singular values by importance.

use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the AdamW optimizer (paper Table 1 uses AdamW for all
/// fine-tuning runs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamWConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay rate for the first moment.
    pub beta1: f32,
    /// Exponential decay rate for the second moment.
    pub beta2: f32,
    /// Numerical stability constant.
    pub epsilon: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl AdamWConfig {
    /// The paper's encoder fine-tuning setting (BERT-Base: lr 2e-5).
    pub fn with_learning_rate(learning_rate: f32) -> Self {
        AdamWConfig {
            learning_rate,
            ..AdamWConfig::default()
        }
    }
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            learning_rate: 2e-5,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.01,
        }
    }
}

/// A trainable parameter tensor with gradient and AdamW state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    value: Matrix,
    grad: Matrix,
    moment1: Matrix,
    moment2: Matrix,
    /// Number of AdamW steps applied (for bias correction).
    steps: u64,
    /// Frozen parameters accumulate gradients but are not updated.
    frozen: bool,
}

impl Param {
    /// Wraps a value matrix as a trainable parameter.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Matrix::zeros(r, c),
            moment1: Matrix::zeros(r, c),
            moment2: Matrix::zeros(r, c),
            steps: 0,
            frozen: false,
        }
    }

    /// The current parameter value.
    pub fn value(&self) -> &Matrix {
        &self.value
    }

    /// Mutable access to the value (used when injecting hardware noise).
    pub fn value_mut(&mut self) -> &mut Matrix {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Matrix {
        &self.grad
    }

    /// Mutable access to the accumulated gradient (used by layers that update
    /// sparse slices, such as embedding tables).
    pub fn grad_mut(&mut self) -> &mut Matrix {
        &mut self.grad
    }

    /// Whether the parameter is excluded from optimizer updates.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Freezes or unfreezes the parameter.
    pub fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// Adds a gradient contribution (e.g. from one sample of a batch).
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the parameter shape.
    pub fn accumulate_grad(&mut self, grad: &Matrix) {
        self.grad
            .add_assign(grad)
            .expect("gradient shape must match parameter shape");
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Applies one AdamW update using the accumulated gradient divided by
    /// `batch_size`.
    pub fn adamw_step(&mut self, config: &AdamWConfig, batch_size: usize) {
        if self.frozen {
            return;
        }
        self.steps += 1;
        let scale = 1.0 / batch_size.max(1) as f32;
        let t = self.steps as i32;
        let bias1 = 1.0 - config.beta1.powi(t);
        let bias2 = 1.0 - config.beta2.powi(t);
        let n = self.value.len();
        let value = self.value.as_mut_slice();
        let grad = self.grad.as_slice();
        let m = self.moment1.as_mut_slice();
        let v = self.moment2.as_mut_slice();
        for i in 0..n {
            let g = grad[i] * scale;
            m[i] = config.beta1 * m[i] + (1.0 - config.beta1) * g;
            v[i] = config.beta2 * v[i] + (1.0 - config.beta2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            let update = m_hat / (v_hat.sqrt() + config.epsilon);
            value[i] -= config.learning_rate * (update + config.weight_decay * value[i]);
        }
    }

    /// Mean absolute accumulated gradient, a scalar importance signal.
    pub fn mean_abs_grad(&self) -> f64 {
        let n = self.grad.len() as f64;
        self.grad
            .as_slice()
            .iter()
            .map(|g| g.abs() as f64)
            .sum::<f64>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_tensor::rng::Rng;

    #[test]
    fn adamw_minimizes_a_quadratic() {
        // Minimize f(w) = 0.5 * ||w - target||^2 with gradient (w - target).
        let mut rng = Rng::seed_from(1);
        let target = Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng);
        let mut param = Param::new(Matrix::zeros(4, 4));
        let config = AdamWConfig {
            learning_rate: 0.05,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        for _ in 0..500 {
            param.zero_grad();
            let grad = param.value().sub(&target).unwrap();
            param.accumulate_grad(&grad);
            param.adamw_step(&config, 1);
        }
        let err = param.value().sub(&target).unwrap().max_abs();
        assert!(err < 0.05, "AdamW failed to converge, err {err}");
    }

    #[test]
    fn gradients_accumulate_and_reset() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        let g = Matrix::filled(2, 2, 1.0);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad().at(0, 0), 2.0);
        assert!((p.mean_abs_grad() - 2.0).abs() < 1e-9);
        p.zero_grad();
        assert_eq!(p.grad().max_abs(), 0.0);
    }

    #[test]
    fn frozen_parameters_do_not_update() {
        let mut p = Param::new(Matrix::filled(2, 2, 1.0));
        p.set_frozen(true);
        p.accumulate_grad(&Matrix::filled(2, 2, 10.0));
        p.adamw_step(&AdamWConfig::default(), 1);
        assert!(p.value().approx_eq(&Matrix::filled(2, 2, 1.0), 0.0));
        assert!(p.is_frozen());
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let mut p = Param::new(Matrix::filled(2, 2, 1.0));
        let config = AdamWConfig {
            learning_rate: 0.1,
            weight_decay: 0.5,
            ..AdamWConfig::default()
        };
        p.adamw_step(&config, 1);
        assert!(p.value().at(0, 0) < 1.0);
    }

    #[test]
    fn batch_size_scales_the_gradient() {
        let config = AdamWConfig {
            learning_rate: 0.1,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        let mut a = Param::new(Matrix::zeros(1, 1));
        a.accumulate_grad(&Matrix::filled(1, 1, 4.0));
        a.adamw_step(&config, 4);

        let mut b = Param::new(Matrix::zeros(1, 1));
        b.accumulate_grad(&Matrix::filled(1, 1, 1.0));
        b.adamw_step(&config, 1);

        assert!((a.value().at(0, 0) - b.value().at(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn default_config_matches_paper_style_settings() {
        let c = AdamWConfig::default();
        assert!((c.learning_rate - 2e-5).abs() < 1e-12);
        assert!(c.beta1 > c.weight_decay);
        let c2 = AdamWConfig::with_learning_rate(5e-6);
        assert!((c2.learning_rate - 5e-6).abs() < 1e-12);
        assert_eq!(c2.beta2, c.beta2);
    }
}
