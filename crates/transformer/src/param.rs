//! Trainable parameters, the AdamW update rule, and named visitation.
//!
//! Every layer owns its parameters as [`Param`] values: the weight matrix, an
//! accumulated gradient, and the AdamW first/second-moment state. The trainer
//! drives the generic `zero_grad` / accumulate / `adamw_step` cycle; the
//! gradient-redistribution pipeline in `hyflex-pim` additionally reads the
//! accumulated gradient magnitudes to rank singular values by importance.
//!
//! # Named parameter visitation
//!
//! [`ParamVisit`] is the single source of truth for parameter enumeration:
//! every module walks its parameters exactly once, in declaration order,
//! under dotted hierarchical names (`blocks.3.attn.q_proj.weight`). The
//! optimizer entry points ([`ParamVisit::step`], [`ParamVisit::zero_grad`])
//! and [`ParamVisit::parameter_count`] are provided methods on top of that
//! one walk, so they can never drift from the module structure the way the
//! old hand-maintained `static_linears` vectors could.
//!
//! [`ParamStore`] snapshots one walk into a name → parameter table, and
//! [`VarBuilder`] is the candle-style scoped accessor over it:
//!
//! ```
//! use hyflex_transformer::{ModelConfig, ParamStore, ParamVisit, TransformerModel};
//! use hyflex_tensor::rng::Rng;
//!
//! let mut rng = Rng::seed_from(1);
//! let model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
//! let store = ParamStore::of(&model);
//! let vb = store.root();
//! let q = vb.pp("blocks.0.attn").get("q_proj").unwrap();
//! assert_eq!(q.value().rows(), 32);
//! assert_eq!(store.parameter_count(), model.parameter_count());
//! ```

use crate::error::ModelError;
use crate::Result;
use hyflex_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the AdamW optimizer (paper Table 1 uses AdamW for all
/// fine-tuning runs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamWConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay rate for the first moment.
    pub beta1: f32,
    /// Exponential decay rate for the second moment.
    pub beta2: f32,
    /// Numerical stability constant.
    pub epsilon: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl AdamWConfig {
    /// The paper's encoder fine-tuning setting (BERT-Base: lr 2e-5).
    pub fn with_learning_rate(learning_rate: f32) -> Self {
        AdamWConfig {
            learning_rate,
            ..AdamWConfig::default()
        }
    }
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            learning_rate: 2e-5,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.01,
        }
    }
}

/// A trainable parameter tensor with gradient and AdamW state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    value: Matrix,
    grad: Matrix,
    moment1: Matrix,
    moment2: Matrix,
    /// Number of AdamW steps applied (for bias correction).
    steps: u64,
    /// Frozen parameters accumulate gradients but are not updated.
    frozen: bool,
}

impl Param {
    /// Wraps a value matrix as a trainable parameter.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Matrix::zeros(r, c),
            moment1: Matrix::zeros(r, c),
            moment2: Matrix::zeros(r, c),
            steps: 0,
            frozen: false,
        }
    }

    /// The current parameter value.
    pub fn value(&self) -> &Matrix {
        &self.value
    }

    /// Mutable access to the value (used when injecting hardware noise).
    pub fn value_mut(&mut self) -> &mut Matrix {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Matrix {
        &self.grad
    }

    /// Mutable access to the accumulated gradient (used by layers that update
    /// sparse slices, such as embedding tables).
    pub fn grad_mut(&mut self) -> &mut Matrix {
        &mut self.grad
    }

    /// Whether the parameter is excluded from optimizer updates.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Freezes or unfreezes the parameter.
    pub fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// Adds a gradient contribution (e.g. from one sample of a batch).
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the parameter shape.
    pub fn accumulate_grad(&mut self, grad: &Matrix) {
        self.grad
            .add_assign(grad)
            .expect("gradient shape must match parameter shape");
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Applies one AdamW update using the accumulated gradient divided by
    /// `batch_size`.
    pub fn adamw_step(&mut self, config: &AdamWConfig, batch_size: usize) {
        if self.frozen {
            return;
        }
        self.steps += 1;
        let scale = 1.0 / batch_size.max(1) as f32;
        let t = self.steps as i32;
        let bias1 = 1.0 - config.beta1.powi(t);
        let bias2 = 1.0 - config.beta2.powi(t);
        let n = self.value.len();
        let value = self.value.as_mut_slice();
        let grad = self.grad.as_slice();
        let m = self.moment1.as_mut_slice();
        let v = self.moment2.as_mut_slice();
        for i in 0..n {
            let g = grad[i] * scale;
            m[i] = config.beta1 * m[i] + (1.0 - config.beta1) * g;
            v[i] = config.beta2 * v[i] + (1.0 - config.beta2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            let update = m_hat / (v_hat.sqrt() + config.epsilon);
            value[i] -= config.learning_rate * (update + config.weight_decay * value[i]);
        }
    }

    /// Mean absolute accumulated gradient, a scalar importance signal.
    pub fn mean_abs_grad(&self) -> f64 {
        let n = self.grad.len() as f64;
        self.grad
            .as_slice()
            .iter()
            .map(|g| g.abs() as f64)
            .sum::<f64>()
            / n
    }
}

/// Dotted-path builder threaded through [`ParamVisit`] walks.
///
/// Modules enter child scopes with [`ParamPath::scope`] and name leaf
/// parameters with [`ParamPath::leaf`]; the buffer is restored on scope exit,
/// so one allocation-light builder serves the whole recursive walk.
#[derive(Debug, Default)]
pub struct ParamPath {
    buf: String,
}

impl ParamPath {
    /// A path at the root scope (empty prefix).
    pub fn root() -> Self {
        ParamPath { buf: String::new() }
    }

    /// Runs `f` with `segment` appended to the path, restoring it afterwards.
    pub fn scope<R>(&mut self, segment: &str, f: impl FnOnce(&mut ParamPath) -> R) -> R {
        let saved = self.buf.len();
        if !self.buf.is_empty() {
            self.buf.push('.');
        }
        self.buf.push_str(segment);
        let out = f(self);
        self.buf.truncate(saved);
        out
    }

    /// The full dotted name of a leaf parameter under the current scope.
    pub fn leaf(&self, name: &str) -> String {
        if self.buf.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.buf)
        }
    }

    /// The current scope prefix.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Named, ordered parameter visitation — the single enumeration path every
/// parameter-holding module implements.
///
/// Implementations must visit each owned [`Param`] exactly once, in stable
/// declaration order, and must produce identical names from the `&self` and
/// `&mut self` walks. Everything else — optimizer stepping, gradient
/// clearing, parameter counting, [`ParamStore`] snapshots — is derived from
/// this one walk via the provided methods.
pub trait ParamVisit {
    /// Visits every parameter with its dotted name.
    fn visit_params<'a>(&'a self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'a Param));

    /// Mutable counterpart of [`ParamVisit::visit_params`]; must yield the
    /// same names in the same order.
    fn visit_params_mut<'a>(
        &'a mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &'a mut Param),
    );

    /// Total number of scalar parameter values.
    fn parameter_count(&self) -> usize {
        let mut count = 0;
        self.visit_params(&mut ParamPath::root(), &mut |_, p| count += p.value().len());
        count
    }

    /// Clears every accumulated gradient.
    fn zero_grad(&mut self) {
        self.visit_params_mut(&mut ParamPath::root(), &mut |_, p| p.zero_grad());
    }

    /// Applies one AdamW step to every (non-frozen) parameter.
    ///
    /// AdamW is element-wise per parameter, so routing the optimizer through
    /// the visitation walk is bit-identical to the per-field `step` methods
    /// it replaced.
    fn step(&mut self, config: &AdamWConfig, batch_size: usize) {
        self.visit_params_mut(&mut ParamPath::root(), &mut |_, p| {
            p.adamw_step(config, batch_size)
        });
    }
}

/// A snapshot of one [`ParamVisit`] walk: dotted name → parameter reference,
/// in visitation order.
#[derive(Debug)]
pub struct ParamStore<'a> {
    entries: Vec<(String, &'a Param)>,
}

impl<'a> ParamStore<'a> {
    /// Snapshots the parameters of `root`.
    pub fn of<M: ParamVisit + ?Sized>(root: &'a M) -> Self {
        let mut entries = Vec::new();
        root.visit_params(&mut ParamPath::root(), &mut |name, p| {
            entries.push((name.to_string(), p));
        });
        ParamStore { entries }
    }

    /// Number of named parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The dotted names, in visitation order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// `(name, param)` pairs in visitation order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &'a Param)> + '_ {
        self.entries.iter().map(|(n, p)| (n.as_str(), *p))
    }

    /// Looks up a parameter by its full dotted name.
    pub fn get(&self, name: &str) -> Option<&'a Param> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
    }

    /// Total number of scalar parameter values.
    pub fn parameter_count(&self) -> usize {
        self.entries.iter().map(|(_, p)| p.value().len()).sum()
    }

    /// A [`VarBuilder`] rooted at the empty prefix.
    pub fn root(&self) -> VarBuilder<'_, 'a> {
        VarBuilder {
            store: self,
            prefix: String::new(),
        }
    }
}

/// Candle-style scoped accessor over a [`ParamStore`].
///
/// [`VarBuilder::pp`] ("push prefix") descends into a scope;
/// [`VarBuilder::get`] resolves a name under the current prefix. A name that
/// resolves to a whole linear layer (e.g. `q_proj`) falls back to that
/// layer's primary `weight` parameter, so
/// `vb.pp("blocks.3.attn").get("q_proj")` works for dense layers.
#[derive(Debug, Clone)]
pub struct VarBuilder<'s, 'a> {
    store: &'s ParamStore<'a>,
    prefix: String,
}

impl<'s, 'a> VarBuilder<'s, 'a> {
    /// Descends into `segment` (push prefix).
    pub fn pp(&self, segment: &str) -> VarBuilder<'s, 'a> {
        let prefix = if self.prefix.is_empty() {
            segment.to_string()
        } else {
            format!("{}.{segment}", self.prefix)
        };
        VarBuilder {
            store: self.store,
            prefix,
        }
    }

    /// The current dotted prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Resolves `name` under the current prefix; falls back to
    /// `<name>.weight` for dense linear layers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when neither name exists.
    pub fn get(&self, name: &str) -> Result<&'a Param> {
        let full = if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        };
        self.store
            .get(&full)
            .or_else(|| self.store.get(&format!("{full}.weight")))
            .ok_or_else(|| ModelError::InvalidInput(format!("no parameter named {full}")))
    }

    /// Names available under the current prefix, in visitation order.
    pub fn names(&self) -> Vec<String> {
        if self.prefix.is_empty() {
            return self.store.names().map(str::to_string).collect();
        }
        let scoped = format!("{}.", self.prefix);
        self.store
            .names()
            .filter_map(|n| n.strip_prefix(&scoped))
            .map(str::to_string)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_tensor::rng::Rng;

    #[test]
    fn adamw_minimizes_a_quadratic() {
        // Minimize f(w) = 0.5 * ||w - target||^2 with gradient (w - target).
        let mut rng = Rng::seed_from(1);
        let target = Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng);
        let mut param = Param::new(Matrix::zeros(4, 4));
        let config = AdamWConfig {
            learning_rate: 0.05,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        for _ in 0..500 {
            param.zero_grad();
            let grad = param.value().sub(&target).unwrap();
            param.accumulate_grad(&grad);
            param.adamw_step(&config, 1);
        }
        let err = param.value().sub(&target).unwrap().max_abs();
        assert!(err < 0.05, "AdamW failed to converge, err {err}");
    }

    #[test]
    fn gradients_accumulate_and_reset() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        let g = Matrix::filled(2, 2, 1.0);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad().at(0, 0), 2.0);
        assert!((p.mean_abs_grad() - 2.0).abs() < 1e-9);
        p.zero_grad();
        assert_eq!(p.grad().max_abs(), 0.0);
    }

    #[test]
    fn frozen_parameters_do_not_update() {
        let mut p = Param::new(Matrix::filled(2, 2, 1.0));
        p.set_frozen(true);
        p.accumulate_grad(&Matrix::filled(2, 2, 10.0));
        p.adamw_step(&AdamWConfig::default(), 1);
        assert!(p.value().approx_eq(&Matrix::filled(2, 2, 1.0), 0.0));
        assert!(p.is_frozen());
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let mut p = Param::new(Matrix::filled(2, 2, 1.0));
        let config = AdamWConfig {
            learning_rate: 0.1,
            weight_decay: 0.5,
            ..AdamWConfig::default()
        };
        p.adamw_step(&config, 1);
        assert!(p.value().at(0, 0) < 1.0);
    }

    #[test]
    fn batch_size_scales_the_gradient() {
        let config = AdamWConfig {
            learning_rate: 0.1,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        let mut a = Param::new(Matrix::zeros(1, 1));
        a.accumulate_grad(&Matrix::filled(1, 1, 4.0));
        a.adamw_step(&config, 4);

        let mut b = Param::new(Matrix::zeros(1, 1));
        b.accumulate_grad(&Matrix::filled(1, 1, 1.0));
        b.adamw_step(&config, 1);

        assert!((a.value().at(0, 0) - b.value().at(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn default_config_matches_paper_style_settings() {
        let c = AdamWConfig::default();
        assert!((c.learning_rate - 2e-5).abs() < 1e-12);
        assert!(c.beta1 > c.weight_decay);
        let c2 = AdamWConfig::with_learning_rate(5e-6);
        assert!((c2.learning_rate - 5e-6).abs() < 1e-12);
        assert_eq!(c2.beta2, c.beta2);
    }
}
