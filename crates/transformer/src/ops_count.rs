//! Per-stage operation counting (paper Figure 2).
//!
//! Figure 2 plots the number of computations in each transformer stage as a
//! function of sequence length, motivating the design choice to accelerate
//! the static-weight linear layers (token generation, projection, FFN1, FFN2)
//! on analog PIM: for short and moderate sequences they dominate, while only
//! at very long sequences do the quadratic attention products take over.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// A computation stage of the transformer pipeline, in Figure 2's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Q/K/V generation (fully connected, static weights).
    TokenGenerationFc,
    /// Attention score computation `Q·Kᵀ` (dynamic operands).
    ScoreQKt,
    /// Softmax over the score matrix.
    Softmax,
    /// Context computation `P·V` (dynamic operands).
    ProbV,
    /// Output projection (fully connected, static weights).
    ProjectionFc,
    /// First feed-forward layer (static weights).
    Ffn1,
    /// Second feed-forward layer (static weights).
    Ffn2,
}

impl Stage {
    /// All stages in the paper's plotting order.
    pub fn all() -> [Stage; 7] {
        [
            Stage::TokenGenerationFc,
            Stage::ScoreQKt,
            Stage::Softmax,
            Stage::ProbV,
            Stage::ProjectionFc,
            Stage::Ffn1,
            Stage::Ffn2,
        ]
    }

    /// Whether the stage uses static (pre-loadable) weights — i.e. whether
    /// HyFlexPIM maps it onto analog PIM (Figure 9).
    pub fn is_static_weight(&self) -> bool {
        matches!(
            self,
            Stage::TokenGenerationFc | Stage::ProjectionFc | Stage::Ffn1 | Stage::Ffn2
        )
    }

    /// Display label matching the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::TokenGenerationFc => "Token Generation (FC)",
            Stage::ScoreQKt => "Q*K^T = Score",
            Stage::Softmax => "Softmax (S) = P",
            Stage::ProbV => "P*V = O",
            Stage::ProjectionFc => "Proj (FC)",
            Stage::Ffn1 => "FFN1",
            Stage::Ffn2 => "FFN2",
        }
    }
}

/// Operation count for one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageOps {
    /// The stage.
    pub stage: Stage,
    /// Number of scalar operations (MACs for matrix products, element
    /// operations for softmax).
    pub ops: u64,
}

/// Operation counts per stage for a single transformer layer at sequence
/// length `seq_len`.
pub fn per_layer_ops(config: &ModelConfig, seq_len: usize) -> Vec<StageOps> {
    let n = seq_len as u64;
    let dh = config.hidden_dim as u64;
    let dff = config.ffn_dim as u64;
    let heads = config.num_heads as u64;
    Stage::all()
        .iter()
        .map(|&stage| {
            let ops = match stage {
                Stage::TokenGenerationFc => 3 * n * dh * dh,
                Stage::ScoreQKt => n * n * dh,
                Stage::Softmax => n * n * heads,
                Stage::ProbV => n * n * dh,
                Stage::ProjectionFc => n * dh * dh,
                Stage::Ffn1 => n * dh * dff,
                Stage::Ffn2 => n * dff * dh,
            };
            StageOps { stage, ops }
        })
        .collect()
}

/// Operation counts per stage for the whole model (all layers).
pub fn model_ops(config: &ModelConfig, seq_len: usize) -> Vec<StageOps> {
    per_layer_ops(config, seq_len)
        .into_iter()
        .map(|s| StageOps {
            stage: s.stage,
            ops: s.ops * config.num_layers as u64,
        })
        .collect()
}

/// Total operations across all stages and layers.
pub fn total_ops(config: &ModelConfig, seq_len: usize) -> u64 {
    model_ops(config, seq_len).iter().map(|s| s.ops).sum()
}

/// Fraction of total operations that use static weights (the portion
/// HyFlexPIM can pre-load into analog PIM). The paper quotes >70 % for
/// typical configurations.
pub fn static_weight_fraction(config: &ModelConfig, seq_len: usize) -> f64 {
    let all = model_ops(config, seq_len);
    let total: u64 = all.iter().map(|s| s.ops).sum();
    let static_ops: u64 = all
        .iter()
        .filter(|s| s.stage.is_static_weight())
        .map(|s| s.ops)
        .sum();
    if total == 0 {
        return 0.0;
    }
    static_ops as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_enumeration_and_labels() {
        assert_eq!(Stage::all().len(), 7);
        assert!(Stage::Ffn1.is_static_weight());
        assert!(!Stage::ScoreQKt.is_static_weight());
        assert!(Stage::ScoreQKt.label().contains("Score"));
    }

    #[test]
    fn per_layer_counts_match_closed_forms() {
        let c = ModelConfig::bert_base();
        let ops = per_layer_ops(&c, 128);
        let by_stage = |s: Stage| ops.iter().find(|o| o.stage == s).unwrap().ops;
        assert_eq!(by_stage(Stage::TokenGenerationFc), 3 * 128 * 768 * 768);
        assert_eq!(by_stage(Stage::ScoreQKt), 128 * 128 * 768);
        assert_eq!(by_stage(Stage::Ffn1), 128 * 768 * 3072);
        assert_eq!(by_stage(Stage::Ffn2), by_stage(Stage::Ffn1));
    }

    #[test]
    fn model_ops_scale_with_layers() {
        let c = ModelConfig::bert_base();
        let layer = per_layer_ops(&c, 128);
        let model = model_ops(&c, 128);
        for (l, m) in layer.iter().zip(model.iter()) {
            assert_eq!(m.ops, l.ops * 12);
        }
        assert_eq!(total_ops(&c, 128), model.iter().map(|s| s.ops).sum::<u64>());
    }

    #[test]
    fn static_weights_dominate_at_short_sequences() {
        let c = ModelConfig::bert_base();
        // Paper Section 2.1: >70% of computation comes from static weights.
        assert!(static_weight_fraction(&c, 128) > 0.7);
        assert!(static_weight_fraction(&c, 512) > 0.7);
    }

    #[test]
    fn attention_grows_quadratically_and_eventually_dominates() {
        let c = ModelConfig::bert_base();
        let frac_short = static_weight_fraction(&c, 128);
        let frac_long = static_weight_fraction(&c, 8192);
        assert!(frac_long < frac_short);
        // At 8k tokens the quadratic attention terms are a major share.
        assert!(frac_long < 0.6);
    }

    #[test]
    fn figure2_sequence_sweep_is_monotone_per_stage() {
        let c = ModelConfig::bert_base();
        let lengths = [128usize, 512, 1024, 2048, 3072];
        for stage in Stage::all() {
            let mut prev = 0u64;
            for &n in &lengths {
                let ops = model_ops(&c, n)
                    .into_iter()
                    .find(|s| s.stage == stage)
                    .unwrap()
                    .ops;
                assert!(ops > prev);
                prev = ops;
            }
        }
    }
}
