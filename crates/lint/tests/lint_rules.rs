//! Fixture-based tests for the rule engine, plus the workspace self-check.
//!
//! Every file under `tests/fixtures/` holds exactly one known violation (or
//! one allow-directive scenario). The `fixtures` directory is excluded from
//! workspace scans, so these sources only reach the engine through
//! [`lint_source`] with synthetic workspace-relative paths — which is also
//! what lets one fixture be replayed against several crate tiers.

use std::path::{Path, PathBuf};
use std::process::Command;

use hyflex_lint::rules::{RuleId, Severity};
use hyflex_lint::{lint_source, lint_workspace, Finding};

/// Asserts a fixture produced exactly one finding with the expected
/// rule, severity, and 1-based line.
fn assert_single(findings: &[Finding], rule: RuleId, severity: Severity, line: usize) {
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one finding, got {findings:#?}"
    );
    let f = &findings[0];
    assert_eq!(
        (f.rule, f.severity, f.line),
        (rule, severity, line),
        "unexpected finding coordinates: {f:#?}"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn d1_hash_map_fixture() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/d1_hash_map.rs"),
    );
    assert_single(&findings, RuleId::D1, Severity::Deny, 2);
}

#[test]
fn d2_wall_clock_fixture() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/d2_wall_clock.rs"),
    );
    assert_single(&findings, RuleId::D2, Severity::Deny, 3);
}

#[test]
fn d3_thread_spawn_fixture() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/d3_thread_spawn.rs"),
    );
    assert_single(&findings, RuleId::D3, Severity::Deny, 3);
}

#[test]
fn d3_is_exempt_inside_the_parallel_crate() {
    let findings = lint_source(
        "crates/parallel/src/fixture.rs",
        include_str!("fixtures/d3_thread_spawn.rs"),
    );
    assert!(
        findings.is_empty(),
        "hyflex-parallel owns std::thread: {findings:#?}"
    );
}

#[test]
fn d4_unsafe_fixture() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/d4_unsafe.rs"),
    );
    assert_single(&findings, RuleId::D4, Severity::Deny, 3);
}

#[test]
fn d5_missing_forbid_attr_fixture() {
    // D5 only applies to crate roots, so the fixture is replayed as lib.rs.
    let findings = lint_source(
        "crates/runtime/src/lib.rs",
        include_str!("fixtures/d5_missing_forbid.rs"),
    );
    assert_single(&findings, RuleId::D5, Severity::Deny, 1);
}

#[test]
fn e1_unwrap_fixture() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/e1_unwrap.rs"),
    );
    assert_single(&findings, RuleId::E1, Severity::Deny, 3);
}

#[test]
fn e1_severity_follows_the_crate_tier() {
    let src = include_str!("fixtures/e1_unwrap.rs");
    // core/runtime/rram are deny-tier…
    let deny = lint_source("crates/core/src/fixture.rs", src);
    assert_single(&deny, RuleId::E1, Severity::Deny, 3);
    // …the remaining library crates are warn-tier…
    let warn = lint_source("crates/tensor/src/fixture.rs", src);
    assert_single(&warn, RuleId::E1, Severity::Warn, 3);
    // …and test code is exempt outright.
    let test = lint_source("crates/runtime/tests/fixture.rs", src);
    assert!(test.is_empty(), "tests may panic: {test:#?}");
}

#[test]
fn allow_with_reason_suppresses_the_finding() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/allow_justified.rs"),
    );
    assert!(
        findings.is_empty(),
        "justified allow should suppress D1: {findings:#?}"
    );
}

#[test]
fn allow_without_reason_is_malformed_and_suppresses_nothing() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/allow_missing_reason.rs"),
    );
    assert_eq!(findings.len(), 2, "want A1 + the D1 it failed to suppress");
    assert_eq!(
        (findings[0].rule, findings[0].severity, findings[0].line),
        (RuleId::A1, Severity::Deny, 2),
        "{:#?}",
        findings[0]
    );
    assert_eq!(
        (findings[1].rule, findings[1].severity, findings[1].line),
        (RuleId::D1, Severity::Deny, 3),
        "{:#?}",
        findings[1]
    );
}

#[test]
fn unused_allow_is_flagged() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/allow_unused.rs"),
    );
    assert_single(&findings, RuleId::A2, Severity::Warn, 2);
}

/// The self-check: the lint must pass on the workspace that ships it.
#[test]
fn workspace_self_check_has_no_deny_findings() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    let denies: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .collect();
    assert!(
        denies.is_empty(),
        "deny findings on the actual workspace: {denies:#?}"
    );
}

/// Same self-check through the CLI: `hyflex-lint --check` exits 0.
#[test]
fn cli_check_passes_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_hyflex-lint"))
        .args(["--check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run hyflex-lint");
    assert!(
        out.status.success(),
        "exit {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A violation makes the CLI exit non-zero and report the rule id and line.
#[test]
fn cli_fails_on_a_violation_with_rule_id_and_line() {
    let ws = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-cli-fixture");
    let src_dir = ws.join("crates/runtime/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir mini workspace");
    std::fs::write(ws.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        include_str!("fixtures/d1_hash_map.rs"),
    )
    .expect("write fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_hyflex-lint"))
        .args(["--check", "--root"])
        .arg(&ws)
        .output()
        .expect("run hyflex-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("crates/runtime/src/lib.rs:2:"), "{text}");
    assert!(text.contains("D1"), "{text}");

    let json = Command::new(env!("CARGO_BIN_EXE_hyflex-lint"))
        .args(["--json", "--root"])
        .arg(&ws)
        .output()
        .expect("run hyflex-lint --json");
    assert_eq!(json.status.code(), Some(1));
    let body = String::from_utf8_lossy(&json.stdout);
    assert!(body.contains("\"rule\": \"D1\""), "{body}");
    assert!(body.contains("\"line\": 2"), "{body}");
    assert!(body.contains("\"deny\": 1"), "{body}");
}
