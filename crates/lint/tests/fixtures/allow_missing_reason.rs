#![forbid(unsafe_code)]
// hyflex-lint: allow(D1)
pub fn entry_count(map: &std::collections::HashMap<u32, u32>) -> usize {
    map.len()
}
