#![forbid(unsafe_code)]
pub fn entry_count(map: &std::collections::HashMap<u32, u32>) -> usize {
    map.len()
}
