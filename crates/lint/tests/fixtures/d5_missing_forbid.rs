pub fn no_attribute_here() {}
