#![forbid(unsafe_code)]
pub fn stamp_ns() -> u64 {
    let _started = std::time::Instant::now();
    0
}
