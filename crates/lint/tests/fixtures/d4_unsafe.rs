#![forbid(unsafe_code)]
pub fn first_unchecked(values: &[u8]) -> u8 {
    unsafe { *values.get_unchecked(0) }
}
