#![forbid(unsafe_code)]
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
