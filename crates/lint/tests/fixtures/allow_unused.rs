#![forbid(unsafe_code)]
// hyflex-lint: allow(D4) — fixture: nothing unsafe is left in this file
pub fn noop() {}
