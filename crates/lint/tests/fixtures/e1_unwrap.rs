#![forbid(unsafe_code)]
pub fn first(values: &[u8]) -> u8 {
    *values.first().unwrap()
}
