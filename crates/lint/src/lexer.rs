//! A minimal Rust lexer: splits a source file into per-line *code* and
//! *comment* channels so the rules can match tokens without being fooled by
//! string literals or comment text.
//!
//! This is deliberately not a full parser (the workspace builds offline, so
//! `syn` is unavailable). It understands exactly the constructs that would
//! otherwise produce false positives or negatives at the token level:
//!
//! * line comments (`//`, `///`, `//!`) — routed to the comment channel;
//! * block comments (`/* … */`), including nesting and multi-line spans;
//! * string literals (`"…"` with escapes), byte strings (`b"…"`), and raw
//!   strings (`r"…"`, `r#"…"#`, any hash count) — contents blanked;
//! * char literals (`'x'`, `'\n'`, `'\u{1F600}'`) versus lifetimes (`'a`).
//!
//! Everything else passes through verbatim on the code channel, preserving
//! line structure so findings carry exact line numbers.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceLine {
    /// The line with comments removed and string/char literal *contents*
    /// blanked to spaces (the delimiting quotes remain, so the token
    /// structure around a literal is preserved).
    pub code: String,
    /// The concatenated text of every comment that touches this line.
    pub comment: String,
}

/// Lexer state carried across characters (and, for block comments and
/// multi-line strings, across lines).
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(u32),
    /// Inside a `"…"` (or `b"…"`) literal.
    Str,
    /// Inside a raw string; the payload is the hash count of the opener.
    RawStr(usize),
}

/// Splits `source` into per-line code/comment channels.
pub fn lex(source: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = SourceLine::default();
    let mut state = State::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment = state {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    line.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    // A quote ends a raw-string opener if the code emitted so
                    // far ends with `r`, `r#…#`, `br`, or `br#…#` (and the
                    // `r` is not the tail of an identifier).
                    match raw_string_hashes(&line.code) {
                        Some(hashes) => state = State::RawStr(hashes),
                        None => state = State::Str,
                    }
                    line.code.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Char literal or lifetime? `'\…'` and `'x'` are
                    // literals; `'ident` (no closing quote right after one
                    // char) is a lifetime and stays on the code channel.
                    if chars.get(i + 1) == Some(&'\\') {
                        line.code.push('\'');
                        i += 2; // consume the backslash
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            line.code.push(' ');
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        line.code.push_str("' '");
                        i += 3;
                    } else {
                        line.code.push('\'');
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        line.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    line.code.push('"');
                    // Blank the closing hashes too (they are delimiters).
                    for _ in 0..hashes {
                        line.code.push(' ');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Flush a final line without a trailing newline.
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// If the code emitted so far ends with a raw-string opener prefix
/// (`r`/`br` plus zero or more `#`), returns the hash count.
fn raw_string_hashes(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut k = bytes.len();
    let mut hashes = 0usize;
    while k > 0 && bytes[k - 1] == b'#' {
        hashes += 1;
        k -= 1;
    }
    if k == 0 || bytes[k - 1] != b'r' {
        return None;
    }
    k -= 1;
    // Optional byte-string prefix.
    if k > 0 && bytes[k - 1] == b'b' {
        k -= 1;
    }
    // The `r` must start the prefix, not end an identifier like `var`.
    let prev_is_ident = k > 0 && (bytes[k - 1].is_ascii_alphanumeric() || bytes[k - 1] == b'_');
    if prev_is_ident {
        // `r#raw_ident` is a raw identifier, not a raw string — but that
        // case has `#` right before the quote only when an identifier char
        // precedes the `r`, which this branch rejects.
        None
    } else {
        Some(hashes)
    }
}

/// Whether the quote at `chars[i]` is followed by exactly enough hashes to
/// close a raw string opened with `hashes` hashes.
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Finds `word` in `code` with non-identifier characters (or line edges) on
/// both sides. Returns the byte offset of the first such match.
pub fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || code[..at]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = at + word.len();
        let after_ok = code[after..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(source: &str) -> Vec<String> {
        lex(source).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_and_captured() {
        let lines = lex("let x = 1; // trailing HashMap\n// full line\nlet y = 2;\n");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert!(lines[0].comment.contains("HashMap"));
        assert_eq!(lines[1].code.trim(), "");
        assert!(lines[1].comment.contains("full line"));
        assert_eq!(lines[2].code.trim_end(), "let y = 2;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = code_of("a /* one /* two */ still */ b\nc /* open\nHashMap\n*/ d\n");
        assert!(lines[0].contains('a') && lines[0].contains('b'));
        assert!(!lines[0].contains("still"));
        assert!(!lines[2].contains("HashMap"));
        assert!(lines[3].contains('d'));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = code_of("let s = \"HashMap::new() // not a comment\"; let t = 1;\n");
        assert!(!lines[0].contains("HashMap"));
        assert!(lines[0].contains("let t = 1;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lines = code_of("let s = \"a\\\"HashMap\"; let u = 2;\n");
        assert!(!lines[0].contains("HashMap"));
        assert!(lines[0].contains("let u = 2;"));
    }

    #[test]
    fn raw_strings_are_blanked_respecting_hashes() {
        let lines = code_of("let s = r#\"has \"quotes\" and HashMap\"#; let v = 3;\n");
        assert!(!lines[0].contains("HashMap"));
        assert!(lines[0].contains("let v = 3;"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let lines = code_of("fn f<'a>(x: &'a str) -> char { 'x' }\nlet q = '\\'';\n");
        assert!(lines[0].contains("'a"));
        assert!(!lines[0].contains('x') || lines[0].contains("x:"));
        assert!(lines[1].contains("let q ="));
    }

    #[test]
    fn multi_line_strings_stay_blanked() {
        let lines = code_of("let s = \"line one\nHashMap line two\";\nlet w = 4;\n");
        assert!(!lines[1].contains("HashMap"));
        assert!(lines[2].contains("let w = 4;"));
    }

    #[test]
    fn find_word_respects_identifier_boundaries() {
        assert!(find_word("use std::collections::HashMap;", "HashMap").is_some());
        assert!(find_word("type MyHashMap = ();", "HashMap").is_none());
        assert!(find_word("HashMapLike", "HashMap").is_none());
        assert!(find_word("HashMap::new()", "HashMap").is_some());
    }
}
