#![forbid(unsafe_code)]
//! CLI entry point for the workspace static-analysis pass.
//!
//! ```text
//! hyflex-lint [--check] [--json] [--warnings] [--list-rules] [--root PATH]
//! ```
//!
//! Exit codes: `0` clean (warn findings do not gate), `1` at least one
//! deny-severity finding, `2` usage or I/O error.

use hyflex_lint::rules::RuleId;
use hyflex_lint::{lint_workspace, render_json, render_text};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hyflex-lint [--check] [--json] [--warnings] [--list-rules] \
                     [--root PATH]\n\
                     \n\
                     Scans the workspace for determinism & safety invariant violations.\n\
                     \n\
                     --check       gate mode (the default): exit 1 on any deny finding\n\
                     --json        machine-readable report on stdout\n\
                     --warnings    list warn-severity findings individually\n\
                     --list-rules  print the rule set and exit\n\
                     --root PATH   workspace root (default: nearest ancestor with a\n\
                     \u{20}             [workspace] Cargo.toml, else the current directory)";

fn main() -> ExitCode {
    let mut json = false;
    let mut warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --check is the default behavior; accepted for explicitness.
            "--check" => {}
            "--json" => json = true,
            "--warnings" => warnings = true,
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{} {:<20} {}", rule.id(), rule.name(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(path) => path,
        None => match discover_root() {
            Some(path) => path,
            None => PathBuf::from("."),
        },
    };
    match lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", render_json(&report));
            } else {
                print!("{}", render_text(&report, warnings));
            }
            if report.deny_count() > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(error) => {
            eprintln!("hyflex-lint: failed to scan {}: {error}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]` section.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
