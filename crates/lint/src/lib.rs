#![forbid(unsafe_code)]
//! # hyflex-lint
//!
//! A dependency-free, token-level static-analysis pass over the workspace
//! that enforces the invariants every recorded number rests on: **same
//! seed, same bytes, under any thread count** — plus the safety policy
//! (no `unsafe`, no panic paths in the serving crates).
//!
//! The dynamic determinism suite (CI's multi-thread-count jobs, the golden
//! fixtures) proves these invariants hold *today*; this pass rejects the
//! violation at review time, before it can turn into a flaky CI diff. See
//! [`rules::RuleId`] for the rule set and the README's "Static analysis &
//! invariants" section for the rationale per rule.
//!
//! ## Allow directives
//!
//! A finding can be suppressed with a justified comment:
//!
//! ```text
//! // hyflex-lint: allow(D1) — iteration order never escapes: values are summed
//! let cache: HashMap<Key, f64> = HashMap::new();
//! ```
//!
//! The directive applies to its own line, or — when it stands on a
//! comment-only line — to the next line of code. `allow-file(RULE) —
//! reason` suppresses a rule for the whole file. A directive without a
//! reason is itself a deny-level finding ([`rules::RuleId::A1`]), and one
//! that suppresses nothing is flagged as unused ([`rules::RuleId::A2`]).

pub mod lexer;
pub mod rules;

use lexer::{find_word, lex, SourceLine};
use rules::{severity_for, FileKind, RuleId, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation (or directive-hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

/// The outcome of a workspace (or single-file) scan.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of deny-severity findings (the gate for `--check`).
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }
}

/// Which crate and target kind a file belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCtx {
    /// Directory name under `crates/` (`runtime`, `core`, …) or `hyflex`
    /// for the workspace-root facade crate.
    pub crate_name: String,
    pub kind: FileKind,
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`)
    /// and must carry `#![forbid(unsafe_code)]` (rule D5).
    pub is_crate_root: bool,
}

/// Classifies a workspace-relative `/`-separated path. Returns `None` for
/// files outside the lint's scope (vendored code, non-Rust files).
pub fn classify(rel_path: &str) -> Option<FileCtx> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let (crate_name, rest) = match rel_path.strip_prefix("crates/") {
        Some(tail) => {
            let (name, rest) = tail.split_once('/')?;
            (name.to_string(), rest)
        }
        None => ("hyflex".to_string(), rel_path),
    };
    let kind = if rest.starts_with("tests/")
        || rest.starts_with("benches/")
        || rest.starts_with("examples/")
    {
        FileKind::Test
    } else if rest.starts_with("src/bin/") || rest == "src/main.rs" || rest == "build.rs" {
        FileKind::Bin
    } else if rest.starts_with("src/") {
        FileKind::Lib
    } else {
        return None;
    };
    let is_crate_root = rest == "src/lib.rs" || rest == "src/main.rs";
    Some(FileCtx {
        crate_name,
        kind,
        is_crate_root,
    })
}

/// A parsed `hyflex-lint:` comment directive.
#[derive(Debug, Clone)]
struct AllowDirective {
    rules: Vec<RuleId>,
    /// 0-based line the directive sits on.
    at: usize,
    /// Whole-file scope (`allow-file`) vs line scope (`allow`).
    whole_file: bool,
    used: bool,
}

/// Scans one file's source text. `rel_path` decides crate and kind; fixture
/// tests call this directly with synthetic paths.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let Some(ctx) = classify(rel_path) else {
        return Vec::new();
    };
    let lines = lex(source);
    let mut findings = Vec::new();
    let mut directives = parse_directives(rel_path, &lines, &mut findings);

    // Map each line-scoped directive to the lines it covers: its own line
    // if that line has code (a trailing comment), else the statement that
    // starts at the next code line — rustfmt wraps long statements, so the
    // scope runs until a line ends in `;`, `{`, or `}`.
    let mut line_allows: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, d) in directives.iter().enumerate() {
        if d.whole_file {
            continue;
        }
        if line_has_code(&lines[d.at]) {
            line_allows.entry(d.at).or_default().push(idx);
            continue;
        }
        let Some(start) = (d.at + 1..lines.len()).find(|&k| line_has_code(&lines[k])) else {
            continue;
        };
        for (k, line) in lines.iter().enumerate().skip(start) {
            line_allows.entry(k).or_default().push(idx);
            let code = line.code.trim_end();
            if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
                break;
            }
        }
    }

    let test_lines = test_region_lines(&lines);
    for (i, line) in lines.iter().enumerate() {
        let kind = if test_lines.contains(&i) {
            FileKind::Test
        } else {
            ctx.kind
        };
        for rule in [RuleId::D1, RuleId::D2, RuleId::D3, RuleId::D4, RuleId::E1] {
            let Some(severity) = severity_for(rule, &ctx.crate_name, kind) else {
                continue;
            };
            let Some(message) = detect(rule, &line.code) else {
                continue;
            };
            if suppressed(rule, i, &line_allows, &mut directives) {
                continue;
            }
            findings.push(Finding {
                rule,
                severity,
                file: rel_path.to_string(),
                line: i + 1,
                message,
            });
        }
    }

    // D5: crate roots must forbid unsafe code at the attribute level too,
    // so even code the token scan cannot see (macro expansions) is covered
    // by rustc itself.
    if ctx.is_crate_root
        && !lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"))
        && !suppressed(RuleId::D5, 0, &line_allows, &mut directives)
    {
        findings.push(Finding {
            rule: RuleId::D5,
            severity: Severity::Deny,
            file: rel_path.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    // A2: a directive that suppressed nothing is stale and should go.
    for d in &directives {
        if !d.used {
            if let Some(severity) = severity_for(RuleId::A2, &ctx.crate_name, ctx.kind) {
                let listed = d
                    .rules
                    .iter()
                    .map(|r| r.id())
                    .collect::<Vec<_>>()
                    .join(", ");
                findings.push(Finding {
                    rule: RuleId::A2,
                    severity,
                    file: rel_path.to_string(),
                    line: d.at + 1,
                    message: format!("allow({listed}) suppressed no finding; remove it"),
                });
            }
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

fn line_has_code(line: &SourceLine) -> bool {
    !line.code.trim().is_empty()
}

/// Checks the line-scoped and file-scoped allows for `rule` at `line`,
/// marking the matching directive used.
fn suppressed(
    rule: RuleId,
    line: usize,
    line_allows: &BTreeMap<usize, Vec<usize>>,
    directives: &mut [AllowDirective],
) -> bool {
    if let Some(indices) = line_allows.get(&line) {
        for &idx in indices {
            if directives[idx].rules.contains(&rule) {
                directives[idx].used = true;
                return true;
            }
        }
    }
    for d in directives.iter_mut() {
        if d.whole_file && d.rules.contains(&rule) {
            d.used = true;
            return true;
        }
    }
    false
}

/// Extracts every `hyflex-lint:` directive from the comment channel,
/// reporting malformed ones (A1) into `findings`.
fn parse_directives(
    rel_path: &str,
    lines: &[SourceLine],
    findings: &mut Vec<Finding>,
) -> Vec<AllowDirective> {
    let mut directives = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // A directive must be the whole comment: `// hyflex-lint: …`. Doc
        // comments (`///`, `//!` — their text starts with `/` or `!`) and
        // prose that merely mentions the syntax never parse as directives.
        let trimmed = line.comment.trim_start();
        let Some(text) = trimmed.strip_prefix("hyflex-lint:") else {
            continue;
        };
        let text = text.trim_start();
        match parse_one_directive(text, i) {
            Ok(directive) => directives.push(directive),
            Err(why) => findings.push(Finding {
                rule: RuleId::A1,
                severity: Severity::Deny,
                file: rel_path.to_string(),
                line: i + 1,
                message: why,
            }),
        }
    }
    directives
}

/// Parses `allow(RULE[, RULE…]) — reason` / `allow-file(…) — reason`.
fn parse_one_directive(text: &str, at: usize) -> Result<AllowDirective, String> {
    let (whole_file, rest) = if let Some(rest) = text.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = text.strip_prefix("allow") {
        (false, rest)
    } else {
        return Err(format!(
            "unknown directive `hyflex-lint: {}`; expected `allow(…)` or `allow-file(…)`",
            text.split_whitespace().next().unwrap_or("")
        ));
    };
    let rest = rest.trim_start();
    let Some(inner_and_tail) = rest.strip_prefix('(') else {
        return Err("allow directive is missing its `(RULE)` list".to_string());
    };
    let Some(close) = inner_and_tail.find(')') else {
        return Err("allow directive is missing the closing `)`".to_string());
    };
    let mut rule_ids = Vec::new();
    for token in inner_and_tail[..close].split(',') {
        let token = token.trim();
        match RuleId::parse(token) {
            Some(rule) => rule_ids.push(rule),
            None => {
                return Err(format!(
                    "unknown rule id `{token}` in allow directive (known: D1–D5, E1)"
                ))
            }
        }
    }
    if rule_ids.is_empty() {
        return Err("allow directive names no rules".to_string());
    }
    // The justification is whatever follows the rule list, minus separator
    // punctuation. An allow without a *why* is unreviewable.
    let reason = inner_and_tail[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
        .trim();
    if reason.is_empty() {
        return Err(
            "allow directive has no justification; write `allow(RULE) — reason`".to_string(),
        );
    }
    Ok(AllowDirective {
        rules: rule_ids,
        at,
        whole_file,
        used: false,
    })
}

/// Returns the 0-based line numbers that sit inside a `#[cfg(test)]` (or
/// `#[test]`) item's block. Tracked by brace depth on the code channel: the
/// attribute arms the tracker, the next `{` opens the region, and the
/// matching `}` closes it.
fn test_region_lines(lines: &[SourceLine]) -> BTreeSet<usize> {
    let mut in_test = BTreeSet::new();
    let mut depth = 0i64;
    let mut region_close_depth: Option<i64> = None;
    let mut armed = false;
    for (i, line) in lines.iter().enumerate() {
        let mut line_touches_region = region_close_depth.is_some();
        let attr_pos = ["#[cfg(test)", "#[cfg(all(test", "#[test]"]
            .iter()
            .filter_map(|a| line.code.find(a))
            .min();
        for (k, c) in line.code.char_indices() {
            if armed || attr_pos.is_some_and(|p| k > p) {
                armed = true;
            }
            match c {
                '{' => {
                    if armed {
                        // The armed attribute's item starts here. If a test
                        // region is already open this item is inside it, so
                        // only the outermost attribute opens a region.
                        if region_close_depth.is_none() {
                            region_close_depth = Some(depth);
                            line_touches_region = true;
                        }
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close_depth == Some(depth) {
                        region_close_depth = None;
                    }
                }
                _ => {}
            }
        }
        if line_touches_region || region_close_depth.is_some() {
            in_test.insert(i);
        }
    }
    in_test
}

/// Runs `rule`'s token check against one code line; returns the finding
/// message on a hit.
fn detect(rule: RuleId, code: &str) -> Option<String> {
    match rule {
        RuleId::D1 => ["HashMap", "HashSet", "hash_map", "hash_set", "RandomState"]
            .into_iter()
            .find(|w| find_word(code, w).is_some())
            .map(|w| {
                format!(
                    "`{w}` is iteration-order nondeterministic; use BTreeMap/BTreeSet \
                     (or justify with `hyflex-lint: allow(D1)`)"
                )
            }),
        RuleId::D2 => [
            "Instant",
            "SystemTime",
            "thread_rng",
            "from_entropy",
            "getrandom",
        ]
        .into_iter()
        .find(|w| find_word(code, w).is_some())
        .map(|w| {
            format!(
                "`{w}` reads the host clock or OS entropy; library code runs on \
                     simulated time and seeded RNGs only"
            )
        }),
        RuleId::D3 => (code.contains("std::thread") || code.contains("thread::spawn")).then(|| {
            "raw `std::thread` use outside hyflex-parallel; route parallelism through \
             `JobPool` so the determinism proofs cover it"
                .to_string()
        }),
        RuleId::D4 => find_word(code, "unsafe").map(|_| {
            "`unsafe` is banned workspace-wide (crate roots carry \
             `#![forbid(unsafe_code)]`)"
                .to_string()
        }),
        RuleId::D5 => None, // whole-file check, handled in lint_source
        RuleId::E1 => {
            let hit = if code.contains(".unwrap()") {
                Some(".unwrap()")
            } else if code.contains(".expect(") {
                Some(".expect(…)")
            } else {
                ["panic", "unreachable", "todo", "unimplemented"]
                    .into_iter()
                    .find(|w| {
                        find_word(code, w).is_some_and(|at| code[at + w.len()..].starts_with('!'))
                    })
                    .map(|w| match w {
                        "panic" => "panic!",
                        "unreachable" => "unreachable!",
                        "todo" => "todo!",
                        _ => "unimplemented!",
                    })
            };
            hit.map(|h| {
                format!(
                    "`{h}` in library code aborts the process; return a typed error \
                     (PimError/RuntimeError/…) or justify with `hyflex-lint: allow(E1)`"
                )
            })
        }
        RuleId::A1 | RuleId::A2 => None, // directive hygiene, handled elsewhere
    }
}

/// Recursively collects workspace `.rs` files, sorted for deterministic
/// reports. Skips build output, vendored stand-ins, VCS metadata, and
/// fixture data directories (the lint's own fixtures contain deliberate
/// violations).
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((rel, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans the whole workspace under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for (rel, abs) in collect_files(root)? {
        if classify(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(&abs)?;
        report.findings.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Renders the human-readable report. Deny findings are always listed;
/// warn findings are listed when `show_warns` and summarized per rule
/// otherwise.
pub fn render_text(report: &Report, show_warns: bool) -> String {
    let mut out = String::new();
    let mut warn_tally: BTreeMap<RuleId, usize> = BTreeMap::new();
    for f in &report.findings {
        if f.severity == Severity::Deny || show_warns {
            let _ = writeln!(
                out,
                "{}:{}: [{} {}/{}] {}",
                f.file,
                f.line,
                f.severity,
                f.rule,
                f.rule.name(),
                f.message
            );
        }
        if f.severity == Severity::Warn {
            *warn_tally.entry(f.rule).or_default() += 1;
        }
    }
    if !show_warns {
        for (rule, count) in &warn_tally {
            let _ = writeln!(
                out,
                "warn: [{} {}] {} finding(s) (re-run with --warnings for details)",
                rule,
                rule.name(),
                count
            );
        }
    }
    let _ = writeln!(
        out,
        "hyflex-lint: {} deny, {} warn across {} files",
        report.deny_count(),
        report.warn_count(),
        report.files_scanned
    );
    out
}

/// Renders the report as a machine-readable JSON document.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"rule\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \
             \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.rule,
            f.rule.name(),
            f.severity,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"deny\": {},\n  \"warn\": {},\n  \"files_scanned\": {}\n}}\n",
        report.deny_count(),
        report.warn_count(),
        report.files_scanned
    );
    out
}

fn json_escape(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\t' => escaped.push_str("\\t"),
            '\r' => escaped.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(escaped, "\\u{:04x}", c as u32);
            }
            c => escaped.push(c),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_crates_and_kinds() {
        let ctx = classify("crates/runtime/src/cluster.rs").unwrap();
        assert_eq!(ctx.crate_name, "runtime");
        assert_eq!(ctx.kind, FileKind::Lib);
        assert!(!ctx.is_crate_root);
        let ctx = classify("crates/bench/src/bin/fig11.rs").unwrap();
        assert_eq!(ctx.kind, FileKind::Bin);
        let ctx = classify("crates/tensor/src/lib.rs").unwrap();
        assert!(ctx.is_crate_root);
        let ctx = classify("tests/backend_api.rs").unwrap();
        assert_eq!(ctx.crate_name, "hyflex");
        assert_eq!(ctx.kind, FileKind::Test);
        let ctx = classify("src/lib.rs").unwrap();
        assert_eq!(ctx.kind, FileKind::Lib);
        assert!(ctx.is_crate_root);
        assert!(classify("crates/runtime/Cargo.toml").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn cfg_test_regions_exempt_e1_but_not_d1() {
        let source = "#![forbid(unsafe_code)]\n\
                      pub fn lib_code() {}\n\
                      #[cfg(test)]\n\
                      mod tests {\n\
                          use std::collections::HashMap;\n\
                          #[test]\n\
                          fn t() { let x: Option<u8> = None; x.unwrap(); }\n\
                      }\n";
        let findings = lint_source("crates/runtime/src/demo.rs", source);
        assert!(
            findings.iter().any(|f| f.rule == RuleId::D1 && f.line == 5),
            "D1 applies inside test modules: {findings:?}"
        );
        assert!(
            !findings.iter().any(|f| f.rule == RuleId::E1),
            "E1 must not fire inside #[cfg(test)]: {findings:?}"
        );
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let source = "#![forbid(unsafe_code)]\n\
                      // HashMap unsafe panic! std::thread::spawn Instant\n\
                      pub const DOC: &str = \"HashMap unsafe panic!()\";\n";
        let findings = lint_source("crates/core/src/demo.rs", source);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_on_preceding_comment_line_covers_next_code_line() {
        let source = "pub fn f() {\n\
                      // hyflex-lint: allow(E1) — arrival times are validated non-NaN upstream\n\
                      let v = [1.0f64].iter().copied().next().unwrap();\n\
                      let _ = v;\n}\n";
        let findings = lint_source("crates/runtime/src/demo.rs", source);
        assert!(
            !findings.iter().any(|f| f.rule == RuleId::E1),
            "{findings:?}"
        );
        assert!(
            !findings.iter().any(|f| f.rule == RuleId::A2),
            "the allow was used: {findings:?}"
        );
    }

    #[test]
    fn unused_allow_is_flagged() {
        let source = "// hyflex-lint: allow(D1) — nothing here uses a map at all\n\
                      pub fn f() {}\n";
        let findings = lint_source("crates/runtime/src/demo.rs", source);
        assert!(
            findings.iter().any(|f| f.rule == RuleId::A2 && f.line == 1),
            "{findings:?}"
        );
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let source = "// hyflex-lint: allow(D1)\n\
                      use std::collections::HashMap;\n";
        let findings = lint_source("crates/runtime/src/demo.rs", source);
        assert!(
            findings.iter().any(|f| f.rule == RuleId::A1),
            "{findings:?}"
        );
        // The malformed allow must not suppress the finding it points at.
        assert!(
            findings.iter().any(|f| f.rule == RuleId::D1),
            "{findings:?}"
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
