//! The rule set: what each invariant is, where it applies, and how a
//! violation is detected on the lexed code channel.
//!
//! Severity is decided per (rule, crate, file-kind) by [`severity_for`]; the
//! detection logic itself lives in [`crate::lint_source`].

use std::fmt;

/// How bad a finding is. `Deny` findings fail the build (`--check` exits
/// non-zero); `Warn` findings are reported but do not gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Stable rule identifiers (`D*` = determinism/safety, `E*` = error
/// handling, `A*` = allow-directive hygiene).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `HashMap`/`HashSet` (iteration order is seeded per-process and
    /// breaks bit-identity the moment an iteration escapes).
    D1,
    /// No wall-clock or OS entropy in library code (sim time only).
    D2,
    /// No `std::thread` outside `hyflex-parallel` (all parallelism goes
    /// through `JobPool` so the determinism proofs cover it).
    D3,
    /// No `unsafe` anywhere.
    D4,
    /// Every crate root carries `#![forbid(unsafe_code)]`.
    D5,
    /// No `unwrap`/`expect`/`panic!` family in non-test library code.
    E1,
    /// A `hyflex-lint:` directive that is malformed or lacks a reason.
    A1,
    /// An allow directive that suppressed nothing.
    A2,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 8] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::E1,
        RuleId::A1,
        RuleId::A2,
    ];

    /// The stable id used in reports and allow directives.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::E1 => "E1",
            RuleId::A1 => "A1",
            RuleId::A2 => "A2",
        }
    }

    /// Human-readable rule slug.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "no-hash-collections",
            RuleId::D2 => "no-wall-clock",
            RuleId::D3 => "no-raw-thread-spawn",
            RuleId::D4 => "no-unsafe",
            RuleId::D5 => "forbid-unsafe-attr",
            RuleId::E1 => "no-panic-paths",
            RuleId::A1 => "malformed-allow",
            RuleId::A2 => "unused-allow",
        }
    }

    /// One-line rationale shown by `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "HashMap/HashSet iteration order is per-process random; use \
                 BTreeMap/BTreeSet so same seed means same bytes"
            }
            RuleId::D2 => {
                "Instant/SystemTime/OS entropy make results depend on the \
                 host clock; library code runs on simulated time only"
            }
            RuleId::D3 => {
                "raw std::thread use bypasses JobPool, so the bit-identity \
                 proofs for pooled paths no longer cover it"
            }
            RuleId::D4 => "no unsafe blocks anywhere in the workspace",
            RuleId::D5 => "every crate root must carry #![forbid(unsafe_code)]",
            RuleId::E1 => {
                "unwrap/expect/panic in library code turns recoverable \
                 conditions into aborts; return typed errors instead"
            }
            RuleId::A1 => "hyflex-lint allow directives must name a rule and give a reason",
            RuleId::A2 => "an allow directive that suppresses nothing should be removed",
        }
    }

    /// Parses a rule id as written inside an allow directive.
    pub fn parse(text: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.id() == text)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// What kind of target a file belongs to; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` of a crate, excluding `src/bin/`).
    Lib,
    /// Binary targets (`src/bin/`, `src/main.rs`).
    Bin,
    /// Tests, benches, and examples.
    Test,
}

/// Crates whose non-test library code must be panic-free (E1 at deny).
/// Everything else gets E1 at warn. core/runtime/rram carry the serving
/// numbers and the figure pipeline end to end, and parallel is the worker
/// pool under all of them, so a panic in any of these is an availability
/// bug, not a debugging aid.
pub const E1_DENY_CRATES: [&str; 4] = ["core", "runtime", "rram", "parallel"];

/// The crate allowed to touch `std::thread` (it *is* the pool).
pub const D3_EXEMPT_CRATE: &str = "parallel";

/// Decides whether `rule` applies to code in (`crate_name`, `kind`) and at
/// what severity. `None` means the rule does not apply there at all.
pub fn severity_for(rule: RuleId, crate_name: &str, kind: FileKind) -> Option<Severity> {
    match rule {
        // Hash-ordered collections are banned in every first-party target:
        // test helpers feed golden fixtures, and bins print the recorded
        // figures, so nondeterministic iteration anywhere can reach bytes.
        RuleId::D1 => Some(Severity::Deny),
        // Wall-clock reads are banned in lib and bin targets (figures must
        // be replayable); tests may time themselves if they ever need to.
        RuleId::D2 => match kind {
            FileKind::Lib | FileKind::Bin => Some(Severity::Deny),
            FileKind::Test => None,
        },
        RuleId::D3 => {
            if crate_name == D3_EXEMPT_CRATE {
                None
            } else {
                Some(Severity::Deny)
            }
        }
        RuleId::D4 | RuleId::D5 | RuleId::A1 => Some(Severity::Deny),
        RuleId::E1 => match kind {
            FileKind::Lib => {
                if E1_DENY_CRATES.contains(&crate_name) {
                    Some(Severity::Deny)
                } else {
                    Some(Severity::Warn)
                }
            }
            // Panics are the right failure mode in tests, and bins may
            // unwrap at top level after printing context.
            FileKind::Bin | FileKind::Test => None,
        },
        RuleId::A2 => Some(Severity::Warn),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_parse() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.id()), Some(rule));
        }
        assert_eq!(RuleId::parse("D9"), None);
        assert_eq!(RuleId::parse("d1"), None);
    }

    #[test]
    fn e1_tiers_match_the_policy() {
        assert_eq!(
            severity_for(RuleId::E1, "runtime", FileKind::Lib),
            Some(Severity::Deny)
        );
        assert_eq!(
            severity_for(RuleId::E1, "parallel", FileKind::Lib),
            Some(Severity::Deny)
        );
        assert_eq!(
            severity_for(RuleId::E1, "tensor", FileKind::Lib),
            Some(Severity::Warn)
        );
        assert_eq!(severity_for(RuleId::E1, "runtime", FileKind::Test), None);
        assert_eq!(severity_for(RuleId::E1, "bench", FileKind::Bin), None);
    }

    #[test]
    fn d3_exempts_only_the_pool_crate() {
        assert_eq!(severity_for(RuleId::D3, "parallel", FileKind::Lib), None);
        assert_eq!(
            severity_for(RuleId::D3, "runtime", FileKind::Lib),
            Some(Severity::Deny)
        );
    }
}
