#![forbid(unsafe_code)]
//! # hyflex-parallel
//!
//! A scoped `std::thread` worker pool with a shared job queue.
//!
//! This is the foundation crate of the workspace's parallel kernel layer: it
//! sits *below* `hyflex-tensor` and `hyflex-rram` so that the numeric hot
//! paths (blocked GEMM kernels, the tiled crossbar GEMV) and the evaluation
//! surfaces (noise-injected accuracy sweeps, the figure binaries, the
//! analytical performance model in `hyflex-runtime`) all share one
//! dependency-free parallel driver:
//!
//! * [`JobPool::scope`] collects arbitrary jobs and drains them with scoped
//!   worker threads pulling from one shared queue (work-stealing style: an
//!   idle worker takes the next pending job, so long and short jobs balance
//!   without static partitioning).
//! * [`JobPool::par_map`] maps a function over a slice in dynamically claimed
//!   chunks and returns the results **in input order**, so the output is
//!   bit-identical to the serial `iter().map().collect()` regardless of how
//!   the chunks were scheduled.
//!
//! Determinism is the contract: jobs must not share mutable state, and every
//! per-job RNG must be seeded from the job's own input (as
//! `NoiseSimulator::evaluate` already does), never from a shared stream.
//!
//! `hyflex-runtime` re-exports [`JobPool`] and [`PoolScope`] (they lived
//! there before the kernel layer needed them), so existing
//! `hyflex_runtime::JobPool` / `hyflex_runtime::pool::JobPool` imports keep
//! working.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

/// A fixed-width pool of scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPool {
    workers: usize,
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::with_default_parallelism()
    }
}

impl JobPool {
    /// A pool with exactly `workers` worker threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
        }
    }

    /// A single-worker pool that runs every job inline on the calling thread
    /// without spawning. This is the zero-overhead default for library entry
    /// points that accept a pool but are usually called serially.
    pub fn serial() -> Self {
        JobPool::new(1)
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn with_default_parallelism() -> Self {
        JobPool::new(thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Number of worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` with a [`PoolScope`], then drains every spawned job on the
    /// pool's workers before returning. Borrows in jobs only need to outlive
    /// the `scope` call, mirroring `std::thread::scope`.
    pub fn scope<'env, T>(&self, f: impl FnOnce(&mut PoolScope<'env>) -> T) -> T {
        let mut scope = PoolScope { jobs: Vec::new() };
        let out = f(&mut scope);
        self.run_jobs(scope.jobs);
        out
    }

    /// Applies `f` to every element of `items` in parallel and returns the
    /// results in input order (bit-identical to the serial map).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        // Chunked dynamic claiming: small enough chunks that uneven job costs
        // rebalance, large enough that the atomic claim is not the hot path.
        let chunk = items.len().div_ceil(self.workers * 4).max(1);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();
        let f = &f;
        let next = &next;
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        thread::scope(|s| {
            for _ in 0..self.workers.min(items.len()) {
                let tx = tx.clone();
                s.spawn(move || loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    let results: Vec<R> = items[start..end].iter().map(f).collect();
                    if tx.send((start, results)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (start, results) in rx {
                for (offset, value) in results.into_iter().enumerate() {
                    slots[start + offset] = Some(value);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every par_map slot is filled by exactly one chunk"))
            .collect()
    }

    fn run_jobs<'env>(&self, jobs: Vec<Job<'env>>) {
        if self.workers == 1 || jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let worker_count = self.workers.min(jobs.len());
        let queue: Mutex<VecDeque<Job<'env>>> = Mutex::new(jobs.into());
        thread::scope(|s| {
            for _ in 0..worker_count {
                s.spawn(|| loop {
                    let job = queue.lock().expect("job queue poisoned").pop_front();
                    match job {
                        Some(job) => job(),
                        None => break,
                    }
                });
            }
        });
    }
}

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Collects jobs spawned inside [`JobPool::scope`].
pub struct PoolScope<'env> {
    jobs: Vec<Job<'env>>,
}

impl<'env> PoolScope<'env> {
    /// Queues `job` for execution when the scope closure returns.
    pub fn spawn(&mut self, job: impl FnOnce() + Send + 'env) {
        self.jobs.push(Box::new(job));
    }

    /// Number of jobs queued so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job has been queued yet.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_serial_order_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = JobPool::new(workers);
            let got = pool.par_map(&items, |x| x.wrapping_mul(2654435761));
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let pool = JobPool::new(4);
        assert_eq!(pool.par_map(&[] as &[i32], |x| *x), Vec::<i32>::new());
        assert_eq!(pool.par_map(&[41], |x| x + 1), vec![42]);
    }

    #[test]
    fn scope_runs_every_spawned_job() {
        let pool = JobPool::new(4);
        let counter = AtomicU64::new(0);
        let total = pool.scope(|s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
            s.len()
        });
        assert_eq!(total, 100);
        assert_eq!(counter.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn scope_jobs_may_borrow_from_the_environment() {
        let pool = JobPool::new(2);
        let inputs = [1usize, 2, 3, 4];
        let results: Vec<Mutex<usize>> = inputs.iter().map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (input, slot) in inputs.iter().zip(&results) {
                s.spawn(move || {
                    *slot.lock().unwrap() = input * input;
                });
            }
        });
        let values: Vec<usize> = results.iter().map(|m| *m.lock().unwrap()).collect();
        assert_eq!(values, vec![1, 4, 9, 16]);
    }

    #[test]
    fn pool_reports_workers_and_clamps_zero() {
        assert_eq!(JobPool::new(0).workers(), 1);
        assert_eq!(JobPool::serial().workers(), 1);
        assert!(JobPool::with_default_parallelism().workers() >= 1);
        assert!(JobPool::default().workers() >= 1);
    }
}
