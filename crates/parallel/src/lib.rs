#![forbid(unsafe_code)]
// Unit tests panic by design; the clippy panic-path lints mirror
// hyflex-lint rule E1, which exempts test code the same way.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]
//! # hyflex-parallel
//!
//! A persistent work-stealing worker pool plus scoped work-stealing
//! sessions, behind one small deterministic API.
//!
//! This is the foundation crate of the workspace's parallel kernel layer: it
//! sits *below* `hyflex-tensor` and `hyflex-rram` so that the numeric hot
//! paths (packed GEMM kernels, the tiled crossbar GEMV, the pooled
//! gradient-redistribution factorization) and the evaluation surfaces (noise
//! sweeps, figure binaries, the serving sims) all share one dependency-free
//! parallel driver.
//!
//! ## Two execution engines, one scheduling discipline
//!
//! Both engines use the same work-stealing discipline: a global FIFO
//! *injector* queue, per-worker deques (locked `VecDeque`s — no `unsafe`,
//! per invariant D4), LIFO pop on the owner's side for cache locality, FIFO
//! steal from the opposite end by everyone else.
//!
//! * **The persistent core** ([`JobPool::par_map_owned`]) keeps long-lived
//!   OS workers parked on a condvar between calls, one core per worker
//!   count, shared process-wide. Submitting work wakes them; going idle
//!   parks them again. Jobs must be `'static` (they own their inputs), so
//!   there is **zero thread spawning** on this path after first use —
//!   this is what the pooled [`GradientRedistribution::apply`] layer
//!   factorization rides on.
//! * **Scoped sessions** ([`JobPool::scope`], [`JobPool::par_map`]) accept
//!   jobs that *borrow* the caller's environment. Safe Rust cannot hand a
//!   non-`'static` closure to an already-running thread — the completion
//!   guarantee that makes such a borrow sound is exactly what
//!   [`std::thread::scope`] provides *at spawn time*, and reproducing it
//!   for persistent workers requires `unsafe` lifetime erasure (what rayon
//!   does), which invariant D4 forbids. So borrowed entry points spawn
//!   scoped workers per call, but the **calling thread participates as
//!   worker 0**: a `workers = 2` pool spawns one helper thread per call,
//!   not two, and single-worker pools spawn nothing at all.
//!
//! Nested calls never over-subscribe: a job already running on any pool
//! worker that re-enters `scope`/`par_map`/`par_map_owned` executes inline
//! and serially on that worker (tracked by a thread-local), so a
//! `par_map` of jobs that each `scope` internally costs exactly one level
//! of parallelism, never `W²` threads.
//!
//! ## Determinism contract
//!
//! [`JobPool::par_map`] and [`JobPool::par_map_owned`] return results **in
//! input order**, so their output is bit-identical to the serial
//! `iter().map().collect()` for every worker count and any steal schedule.
//! Jobs must not share mutable state, and every per-job RNG must be seeded
//! from the job's own input (as `NoiseSimulator::evaluate` and the
//! per-layer-name SVD seeds do), never from a shared stream.
//!
//! `hyflex-runtime` re-exports [`JobPool`] and [`PoolScope`] (they lived
//! there before the kernel layer needed them), so existing
//! `hyflex_runtime::JobPool` / `hyflex_runtime::pool::JobPool` imports keep
//! working.
//!
//! [`GradientRedistribution::apply`]: https://docs.rs/hyflex-pim

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

/// A job that borrows from the caller's environment (scoped sessions).
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A job that owns its inputs (persistent core).
type StaticJob = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True while this thread is executing jobs for any pool (persistent
    /// worker or scoped-session worker, including the participating
    /// caller). Nested parallel entry points run inline when set.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Every queue this crate locks stays structurally valid across a panic
/// (pushes and pops are single `VecDeque` operations), so poison recovery
/// is safe and keeps the pool panic-free itself.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-width pool handle.
///
/// The handle itself is a plain `Copy` value (the worker count); the
/// persistent workers behind [`JobPool::par_map_owned`] are shared
/// process-wide per worker count and created lazily on first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPool {
    workers: usize,
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::with_default_parallelism()
    }
}

impl JobPool {
    /// A pool with exactly `workers` worker threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
        }
    }

    /// A single-worker pool that runs every job inline on the calling thread
    /// without spawning. This is the zero-overhead default for library entry
    /// points that accept a pool but are usually called serially.
    pub fn serial() -> Self {
        JobPool::new(1)
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn with_default_parallelism() -> Self {
        JobPool::new(thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Number of worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` with a [`PoolScope`], then drains every spawned job on a
    /// scoped work-stealing session (caller participates as worker 0)
    /// before returning. Borrows in jobs only need to outlive the `scope`
    /// call, mirroring `std::thread::scope`.
    pub fn scope<'env, T>(&self, f: impl FnOnce(&mut PoolScope<'env>) -> T) -> T {
        let mut scope = PoolScope { jobs: Vec::new() };
        let out = f(&mut scope);
        self.run_jobs(scope.jobs);
        out
    }

    /// Applies `f` to every element of `items` in parallel and returns the
    /// results in input order (bit-identical to the serial map).
    ///
    /// The work is split into chunks claimed dynamically by the session
    /// workers, so long and short jobs rebalance; the calling thread claims
    /// chunks too, so a `workers = N` pool spawns only `N − 1` scoped
    /// helpers per call.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.workers == 1 || items.len() <= 1 || IN_POOL.with(Cell::get) {
            return items.iter().map(f).collect();
        }
        // Chunked dynamic claiming: small enough chunks that uneven job costs
        // rebalance, large enough that the atomic claim is not the hot path.
        let chunk = items.len().div_ceil(self.workers * 4).max(1);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();
        let f = &f;
        let next = &next;
        let claim_chunks = |sink: &mpsc::Sender<(usize, Vec<R>)>| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            let end = (start + chunk).min(items.len());
            let results: Vec<R> = items[start..end].iter().map(f).collect();
            if sink.send((start, results)).is_err() {
                break;
            }
        };
        let helpers = self.workers.min(items.len()) - 1;
        let mut pieces: Vec<(usize, Vec<R>)> = Vec::with_capacity(self.workers * 4 + 1);
        thread::scope(|s| {
            for _ in 0..helpers {
                let tx = tx.clone();
                s.spawn(move || {
                    let was = IN_POOL.with(|c| c.replace(true));
                    claim_chunks(&tx);
                    IN_POOL.with(|c| c.set(was));
                });
            }
            // The caller is worker 0: claim chunks until the range is
            // exhausted, then drain what the helpers produced.
            let was = IN_POOL.with(|c| c.replace(true));
            claim_chunks(&tx);
            IN_POOL.with(|c| c.set(was));
            drop(tx);
            for piece in rx {
                pieces.push(piece);
            }
        });
        assemble_in_order(pieces, items.len()).unwrap_or_else(|| items.iter().map(f).collect())
    }

    /// Applies `f` to every element of `items` on the **persistent**
    /// work-stealing core and returns the results in input order
    /// (bit-identical to the serial map for every worker count).
    ///
    /// Unlike [`JobPool::par_map`], the inputs are owned and the closure is
    /// `'static`, so the chunks run on long-lived workers that were parked
    /// between calls — no threads are spawned. Use this on hot paths that
    /// can hand over (or cheaply clone) their inputs; the pooled
    /// gradient-redistribution factorization is the canonical caller.
    ///
    /// If a chunk's closure panics, the panic is re-raised on the caller
    /// (matching [`std::thread::scope`] semantics) and the affected worker
    /// survives for subsequent calls.
    pub fn par_map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        if self.workers == 1 || items.len() <= 1 || IN_POOL.with(Cell::get) {
            return items.into_iter().map(f).collect();
        }
        let Some(core) = PoolCore::for_workers(self.workers) else {
            // Worker spawning failed (resource exhaustion): degrade serially.
            return items.into_iter().map(f).collect();
        };
        let total = items.len();
        let chunk = total.div_ceil(self.workers * 4).max(1);
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();
        let mut submitted = 0usize;
        let mut start = 0usize;
        let mut rest = items;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let tail = rest.split_off(take);
            let head = rest;
            rest = tail;
            let f = Arc::clone(&f);
            let tx = tx.clone();
            core.submit(Box::new(move || {
                let out: Vec<R> = head.into_iter().map(|t| f(t)).collect();
                let _ = tx.send((start, out));
            }));
            start += take;
            submitted += 1;
        }
        drop(tx);
        let mut pieces: Vec<(usize, Vec<R>)> = Vec::with_capacity(submitted);
        for piece in rx {
            pieces.push(piece);
        }
        match assemble_in_order(pieces, total) {
            Some(out) => out,
            // A missing piece means a chunk closure panicked on a worker;
            // surface it to the caller like a scoped join would.
            None => resume_unwind(Box::new("par_map_owned job panicked")),
        }
    }

    /// Drains `jobs` on a scoped work-stealing session.
    ///
    /// Jobs are dealt round-robin into per-worker deques; each worker pops
    /// its own deque LIFO and steals FIFO from the others when empty, so
    /// uneven job costs rebalance without a single contended queue. The
    /// calling thread participates as worker 0.
    fn run_jobs<'env>(&self, jobs: Vec<Job<'env>>) {
        if self.workers == 1 || jobs.len() <= 1 || IN_POOL.with(Cell::get) {
            for job in jobs {
                job();
            }
            return;
        }
        let worker_count = self.workers.min(jobs.len());
        let deques: Vec<Mutex<VecDeque<Job<'env>>>> = (0..worker_count)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        for (i, job) in jobs.into_iter().enumerate() {
            lock(&deques[i % worker_count]).push_back(job);
        }
        let deques = &deques;
        let work = move |me: usize| {
            let was = IN_POOL.with(|c| c.replace(true));
            loop {
                // LIFO on the owner's side: the most recently dealt job is
                // the one most likely to be cache-hot.
                let mine = lock(&deques[me]).pop_back();
                let job = mine.or_else(|| {
                    // FIFO steal from the opposite end of the victims.
                    (1..worker_count)
                        .find_map(|offset| lock(&deques[(me + offset) % worker_count]).pop_front())
                });
                match job {
                    Some(job) => job(),
                    None => break,
                }
            }
            IN_POOL.with(|c| c.set(was));
        };
        thread::scope(|s| {
            for me in 1..worker_count {
                s.spawn(move || work(me));
            }
            work(0);
        });
    }
}

/// Reassembles order-tagged chunks into a single in-order vector.
///
/// Returns `None` when the pieces do not cover every input element (a chunk
/// was lost to a panic) so the caller can decide how to recover — this path
/// is infallible by itself, replacing the old per-slot
/// `expect("every par_map slot is filled")`.
fn assemble_in_order<R>(mut pieces: Vec<(usize, Vec<R>)>, expected: usize) -> Option<Vec<R>> {
    pieces.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(expected);
    for (start, piece) in pieces {
        if start != out.len() {
            return None;
        }
        out.extend(piece);
    }
    (out.len() == expected).then_some(out)
}

/// Collects jobs spawned inside [`JobPool::scope`].
pub struct PoolScope<'env> {
    jobs: Vec<Job<'env>>,
}

impl<'env> PoolScope<'env> {
    /// Queues `job` for execution when the scope closure returns.
    pub fn spawn(&mut self, job: impl FnOnce() + Send + 'env) {
        self.jobs.push(Box::new(job));
    }

    /// Number of jobs queued so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job has been queued yet.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Shared state of one persistent work-stealing core.
struct CoreState {
    /// Global FIFO injector: submissions land here.
    injector: Mutex<VecDeque<StaticJob>>,
    /// Per-worker deques: owner pops LIFO, thieves steal FIFO.
    deques: Vec<Mutex<VecDeque<StaticJob>>>,
    /// Wake generation: bumped (under the lock) on every submission so a
    /// parked worker that raced a push never sleeps through it.
    generation: Mutex<u64>,
    /// Parked workers wait here; submissions notify it.
    wake: Condvar,
}

impl CoreState {
    /// One scheduling round for worker `me`: own deque LIFO, then the
    /// injector, then a FIFO steal sweep over the other workers.
    fn find_job(&self, me: usize) -> Option<StaticJob> {
        if let Some(job) = lock(&self.deques[me]).pop_back() {
            return Some(job);
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        (1..n).find_map(|offset| lock(&self.deques[(me + offset) % n]).pop_front())
    }
}

/// A persistent pool of parked worker threads for `'static` jobs.
///
/// One core exists per worker count, created lazily and shared
/// process-wide; idle workers block on [`CoreState::wake`] and cost
/// nothing until the next submission.
struct PoolCore {
    state: Arc<CoreState>,
}

impl PoolCore {
    /// Returns the shared core for `workers` threads, spawning them on
    /// first use. `None` if the OS refused to spawn the workers (the
    /// caller degrades to serial execution).
    fn for_workers(workers: usize) -> Option<Arc<PoolCore>> {
        static CORES: OnceLock<Mutex<BTreeMap<usize, Option<Arc<PoolCore>>>>> = OnceLock::new();
        let registry = CORES.get_or_init(|| Mutex::new(BTreeMap::new()));
        lock(registry)
            .entry(workers)
            .or_insert_with(|| PoolCore::spawn(workers))
            .clone()
    }

    /// Spawns `workers` persistent threads around a fresh [`CoreState`].
    fn spawn(workers: usize) -> Option<Arc<PoolCore>> {
        let state = Arc::new(CoreState {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            generation: Mutex::new(0),
            wake: Condvar::new(),
        });
        for me in 0..workers {
            let state = Arc::clone(&state);
            let spawned = thread::Builder::new()
                .name(format!("hyflex-pool-{workers}-{me}"))
                .spawn(move || worker_loop(&state, me));
            if spawned.is_err() {
                // Give up on the whole core: a partially-spawned pool would
                // silently run narrower than requested.
                return None;
            }
        }
        Some(Arc::new(PoolCore { state }))
    }

    /// Enqueues one job on the injector and wakes a parked worker.
    fn submit(&self, job: StaticJob) {
        lock(&self.state.injector).push_back(job);
        *lock(&self.state.generation) += 1;
        self.state.wake.notify_all();
    }
}

/// The persistent worker loop: run everything findable, then park.
fn worker_loop(state: &CoreState, me: usize) {
    IN_POOL.with(|c| c.set(true));
    loop {
        // Snapshot the wake generation *before* scanning, so a submission
        // that lands between a failed scan and parking is never missed.
        let seen = *lock(&state.generation);
        if let Some(job) = state.find_job(me) {
            // A panicking job must not kill the persistent worker; the
            // submitting call detects the lost chunk and re-raises.
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }
        let mut generation = lock(&state.generation);
        while *generation == seen {
            generation = state
                .wake
                .wait(generation)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_serial_order_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = JobPool::new(workers);
            let got = pool.par_map(&items, |x| x.wrapping_mul(2654435761));
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_owned_matches_serial_order_for_every_worker_count() {
        let expected: Vec<u64> = (0..257u64).map(|x| x.wrapping_mul(2654435761)).collect();
        for workers in [1, 2, 3, 8] {
            let pool = JobPool::new(workers);
            let items: Vec<u64> = (0..257).collect();
            let got = pool.par_map_owned(items, |x| x.wrapping_mul(2654435761));
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_owned_reuses_persistent_workers_across_calls() {
        let pool = JobPool::new(2);
        for round in 0..50u64 {
            let items: Vec<u64> = (0..64).collect();
            let expected: Vec<u64> = items.iter().map(|x| x + round).collect();
            assert_eq!(pool.par_map_owned(items, move |x| x + round), expected);
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let pool = JobPool::new(4);
        assert_eq!(pool.par_map(&[] as &[i32], |x| *x), Vec::<i32>::new());
        assert_eq!(pool.par_map(&[41], |x| x + 1), vec![42]);
        assert_eq!(
            pool.par_map_owned(Vec::<i32>::new(), |x| x),
            Vec::<i32>::new()
        );
        assert_eq!(pool.par_map_owned(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn scope_runs_every_spawned_job() {
        let pool = JobPool::new(4);
        let counter = AtomicU64::new(0);
        let total = pool.scope(|s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
            s.len()
        });
        assert_eq!(total, 100);
        assert_eq!(counter.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn scope_jobs_may_borrow_from_the_environment() {
        let pool = JobPool::new(2);
        let inputs = [1usize, 2, 3, 4];
        let results: Vec<Mutex<usize>> = inputs.iter().map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (input, slot) in inputs.iter().zip(&results) {
                s.spawn(move || {
                    *lock(slot) = input * input;
                });
            }
        });
        let values: Vec<usize> = results.iter().map(|m| *lock(m)).collect();
        assert_eq!(values, vec![1, 4, 9, 16]);
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_thread_explosion() {
        let pool = JobPool::new(4);
        let items: Vec<u64> = (0..40).collect();
        // Each outer job runs a nested par_map and a nested scope; the
        // nested calls execute inline on the session worker.
        let expected: Vec<u64> = items.iter().map(|x| 3 * x + 1).collect();
        let got = pool.par_map(&items, |&x| {
            let inner = pool.par_map(&[x, x, x], |y| *y);
            let sum = AtomicU64::new(1);
            pool.scope(|s| {
                for y in &inner {
                    let sum = &sum;
                    s.spawn(move || {
                        sum.fetch_add(*y, Ordering::Relaxed);
                    });
                }
            });
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn assemble_in_order_detects_missing_chunks() {
        assert_eq!(
            assemble_in_order(vec![(2, vec![3, 4]), (0, vec![1, 2])], 4),
            Some(vec![1, 2, 3, 4])
        );
        assert_eq!(assemble_in_order(vec![(1, vec![2])], 2), None::<Vec<i32>>);
        assert_eq!(assemble_in_order(vec![(0, vec![1])], 2), None::<Vec<i32>>);
        assert_eq!(
            assemble_in_order(Vec::<(usize, Vec<i32>)>::new(), 0),
            Some(vec![])
        );
    }

    #[test]
    fn pool_reports_workers_and_clamps_zero() {
        assert_eq!(JobPool::new(0).workers(), 1);
        assert_eq!(JobPool::serial().workers(), 1);
        assert!(JobPool::with_default_parallelism().workers() >= 1);
        assert!(JobPool::default().workers() >= 1);
    }
}
