// Integration tests panic by design (mirrors hyflex-lint rule E1's
// test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Determinism contract of the parallel runtime: the worker pool must
//! produce bit-identical results to the serial reference regardless of
//! worker count or OS scheduling. CI runs this suite with
//! `RUST_TEST_THREADS` at both 1 and the default so scheduling races have
//! two distinct chances to surface.

use hyflex_pim::gradient_redistribution::{GradientRedistribution, LayerGradientProfile};
use hyflex_pim::noise_sim::SweepPoint;
use hyflex_pim::{HybridMappingSpec, NoiseSimulator};
use hyflex_runtime::{par_noise_sweep, JobPool};
use hyflex_tensor::rng::Rng;
use hyflex_transformer::trainer::Sample;
use hyflex_transformer::{AdamWConfig, ModelConfig, Trainer, TransformerModel};
use hyflex_workloads::glue::{self, GlueConfig, GlueTask};
use proptest::prelude::*;

fn trained_fixture() -> (TransformerModel, Vec<LayerGradientProfile>, Vec<Sample>) {
    let mut rng = Rng::seed_from(1234);
    let mut model = TransformerModel::new(ModelConfig::tiny_encoder(2), &mut rng).unwrap();
    let dataset = glue::generate(GlueTask::Sst2, &GlueConfig::default(), 60);
    let trainer = Trainer::new(
        AdamWConfig {
            learning_rate: 3e-3,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        },
        16,
    );
    trainer.train(&mut model, &dataset.train, 2).unwrap();
    let pipeline = GradientRedistribution {
        finetune_epochs: 1,
        ..GradientRedistribution::new(trainer)
    };
    let report = pipeline
        .apply(&mut model, &dataset.train, &dataset.eval)
        .unwrap();
    (model, report.layer_profiles, dataset.eval)
}

#[test]
fn determinism_parallel_noise_sweep_is_bit_identical_to_serial() {
    let (model, profiles, eval) = trained_fixture();
    let simulator = NoiseSimulator::paper_default();
    let base = HybridMappingSpec::gradient_based(0.0);
    let points = SweepPoint::grid(&[0.0, 0.1, 0.5, 1.0], 3, 900);
    let serial = simulator
        .evaluate_sweep(&model, &profiles, &base, &eval, &points)
        .unwrap();
    for workers in [1, 2, 4, 7] {
        let pool = JobPool::new(workers);
        let parallel =
            par_noise_sweep(&pool, &simulator, &model, &profiles, &base, &eval, &points).unwrap();
        assert_eq!(
            serial, parallel,
            "parallel sweep with {workers} workers diverged from serial"
        );
    }
    // The machine-sized default pool must agree too.
    let parallel = par_noise_sweep(
        &JobPool::default(),
        &simulator,
        &model,
        &profiles,
        &base,
        &eval,
        &points,
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn determinism_generic_backend_eval_is_bit_identical_to_the_perf_model() {
    // The backend-generic parallel driver must reproduce the serial
    // HyFlexPIM reference bit for bit, for any worker count.
    use hyflex_pim::backend::HyFlexPim;
    use hyflex_pim::perf::EvaluationPoint;
    use hyflex_pim::{InferenceRequest, PerformanceModel};
    use hyflex_runtime::par_backend_eval;

    let slc = 0.07;
    let backend = HyFlexPim::paper(ModelConfig::bert_large(), slc).unwrap();
    let perf = PerformanceModel::paper_default();
    let requests: Vec<InferenceRequest> = [64usize, 128, 256, 512, 1024, 2048]
        .iter()
        .enumerate()
        .map(|(id, &seq_len)| InferenceRequest::of_len(id as u64, seq_len))
        .collect();
    let points: Vec<EvaluationPoint> = requests
        .iter()
        .map(|r| EvaluationPoint {
            model: ModelConfig::bert_large(),
            seq_len: r.seq_len,
            slc_rank_fraction: slc,
        })
        .collect();
    let serial = perf.evaluate_many(&points).unwrap();
    for workers in [1, 2, 4, 7] {
        let pool = JobPool::new(workers);
        let parallel = par_backend_eval(&pool, &backend, &requests).unwrap();
        assert_eq!(
            serial, parallel,
            "generic backend eval with {workers} workers diverged from the perf model"
        );
    }
}

#[test]
fn determinism_generic_serving_is_bit_identical_to_the_legacy_path() {
    use hyflex_pim::backend::HyFlexPim;
    use hyflex_pim::PerformanceModel;
    use hyflex_runtime::{ServingConfig, ServingSim};

    let config = ServingConfig {
        qps: 1500.0,
        num_requests: 300,
        seq_len: 128,
        slc_rank_fraction: 0.05,
        seed: 42,
        ..ServingConfig::default()
    };
    let legacy = ServingSim::new(
        PerformanceModel::paper_default(),
        ModelConfig::bert_large(),
        config.clone(),
    )
    .unwrap()
    .run()
    .unwrap();
    let backend = HyFlexPim::paper(ModelConfig::bert_large(), config.slc_rank_fraction).unwrap();
    let generic = ServingSim::with_backend(backend, config)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(legacy, generic);
}

#[test]
fn determinism_policy_serving_is_reproducible_and_fcfs_default_unchanged() {
    // The policy-aware scheduler and the heterogeneous mix must be exact
    // functions of the seed, and the explicit-FCFS configuration must be
    // byte-identical to the default (policy is additive, not perturbing).
    use hyflex_pim::backend::HyFlexPim;
    use hyflex_runtime::{
        RequestClass, SchedulerConfig, SchedulingPolicy, ServingConfig, ServingSim,
    };

    let base = ServingConfig {
        qps: 4000.0,
        num_requests: 260,
        classes: vec![
            RequestClass::new(64, 2.0).with_slo_ns(4e6).with_priority(0),
            RequestClass::new(256, 1.0).with_priority(1),
        ],
        slc_rank_fraction: 0.05,
        seed: 21,
        ..ServingConfig::default()
    };
    let run = |policy: SchedulingPolicy| {
        let config = ServingConfig {
            scheduler: SchedulerConfig {
                policy,
                ..SchedulerConfig::default()
            },
            ..base.clone()
        };
        ServingSim::with_backend(
            HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap(),
            config,
        )
        .unwrap()
        .run()
        .unwrap()
    };
    for policy in SchedulingPolicy::ALL {
        assert_eq!(run(policy), run(policy), "{policy} run not reproducible");
    }
    let default = ServingSim::with_backend(
        HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap(),
        base.clone(),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(run(SchedulingPolicy::Fcfs), default);
}

#[test]
fn determinism_cluster_serving_is_reproducible_and_one_chip_matches_single() {
    use hyflex_pim::backend::HyFlexPim;
    use hyflex_runtime::{ClusterConfig, ClusterSim, DispatchPolicy, ServingConfig, ServingSim};

    let serving = ServingConfig {
        qps: 6000.0,
        num_requests: 240,
        seq_len: 128,
        slc_rank_fraction: 0.05,
        seed: 33,
        ..ServingConfig::default()
    };
    let cluster = |chips: usize, dispatch: DispatchPolicy| {
        ClusterSim::with_backend(
            HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap(),
            ClusterConfig {
                chips,
                dispatch,
                serving: serving.clone(),
            },
        )
        .unwrap()
        .run()
        .unwrap()
    };
    for dispatch in DispatchPolicy::ALL {
        for chips in [1usize, 3] {
            assert_eq!(
                cluster(chips, dispatch),
                cluster(chips, dispatch),
                "{chips}-chip {dispatch} cluster run not reproducible"
            );
        }
    }
    // One replica behind either dispatcher is the single-device simulator.
    let single = ServingSim::with_backend(
        HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap(),
        serving.clone(),
    )
    .unwrap()
    .run()
    .unwrap();
    for dispatch in DispatchPolicy::ALL {
        let report = cluster(1, dispatch);
        assert_eq!(report.latency, single.latency);
        assert_eq!(report.batches, single.batches);
        assert_eq!(report.sim_seconds, single.sim_seconds);
        assert_eq!(report.mean_queue_ms, single.mean_queue_ms);
    }
}

#[test]
fn determinism_overload_runs_conserve_requests_and_reproduce() {
    // The open-loop overload engine is an exact function of its seed, and
    // every offered request is accounted for exactly once after the final
    // drain: offered = admitted + rejected, admitted = completed + shed +
    // preempted. CI runs this under RUST_TEST_THREADS at both 1 and the
    // default, so the engine cannot hide scheduling dependence.
    use hyflex_pim::backend::HyFlexPim;
    use hyflex_runtime::{
        AdmissionPolicy, ArrivalProcess, MmppState, OverloadConfig, OverloadSim, RequestClass,
        RequestTrace, SchedulerConfig, SchedulingPolicy, TrafficConfig,
    };

    let run = || {
        let trace = RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Mmpp {
                states: vec![
                    MmppState::new("burst", 60_000.0, 0.01),
                    MmppState::new("trough", 12_000.0, 0.02),
                ],
            },
            num_requests: 4000,
            classes: vec![
                RequestClass::new(64, 3.0).with_slo_ns(3e6),
                RequestClass::new(256, 1.0).with_priority(1),
            ],
            seed: 97,
            ..TrafficConfig::default()
        })
        .unwrap();
        OverloadSim::with_backend(
            HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap(),
            OverloadConfig {
                scheduler: SchedulerConfig {
                    policy: SchedulingPolicy::Edf,
                    ..SchedulerConfig::default()
                },
                admission: AdmissionPolicy::QueueDepth {
                    max_outstanding: 96,
                },
                shed: true,
                preempt: true,
                ..OverloadConfig::new(trace)
            },
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let report = run();
    assert_eq!(report.offered, 4000);
    assert_eq!(report.offered, report.admitted + report.rejected);
    assert_eq!(
        report.admitted,
        report.completed + report.shed + report.preempted
    );
    assert!(report.shed > 0 && report.rejected > 0);
    assert_eq!(
        report,
        run(),
        "overload run is not a pure function of the seed"
    );
}

proptest! {
    #[test]
    fn determinism_mmpp_traces_are_bit_identical_for_a_seed(
        seed in any::<u64>(),
        burst_qps in 1e3f64..1e5,
        dwell_ms in 1.0f64..50.0,
        n in 50usize..400,
    ) {
        use hyflex_runtime::{ArrivalProcess, MmppState, RequestTrace, TrafficConfig};
        let make = || RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Mmpp {
                states: vec![
                    MmppState::new("burst", burst_qps, dwell_ms * 1e-3),
                    MmppState::new("trough", burst_qps * 0.2, dwell_ms * 2e-3),
                ],
            },
            num_requests: n,
            seed,
            ..TrafficConfig::default()
        }).unwrap();
        let a: Vec<_> = make().stream().collect();
        let b: Vec<_> = make().stream().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn determinism_gamma_traces_are_bit_identical_for_a_seed(
        seed in any::<u64>(),
        qps in 1e2f64..1e5,
        shape in 0.1f64..8.0,
        n in 50usize..400,
    ) {
        use hyflex_runtime::{ArrivalProcess, RatePhase, RequestTrace, TrafficConfig};
        let make = || RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::GammaBurst { qps, shape },
            rate_curve: vec![
                RatePhase::new("am", 0.02, 0.6),
                RatePhase::new("pm", 0.03, 1.4),
            ],
            num_requests: n,
            seed,
            ..TrafficConfig::default()
        }).unwrap();
        let a: Vec<_> = make().stream().collect();
        let b: Vec<_> = make().stream().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn determinism_par_map_equals_serial_map(
        values in proptest::collection::vec(any::<u64>(), 1..200usize),
        workers in 1usize..9,
    ) {
        let pool = JobPool::new(workers);
        let f = |x: &u64| x.rotate_left(7) ^ 0x9e37_79b9_7f4a_7c15;
        let serial: Vec<u64> = values.iter().map(f).collect();
        let parallel = pool.par_map(&values, f);
        prop_assert_eq!(serial, parallel);
    }
}
