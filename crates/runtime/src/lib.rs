#![forbid(unsafe_code)]
// Unit tests panic by design; the clippy panic-path lints mirror
// hyflex-lint rule E1, which exempts test code the same way.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]
//! # hyflex-runtime
//!
//! The parallel batched-inference runtime of the HyFlexPIM reproduction.
//! Where `hyflex-pim` models one inference at a time, this crate models and
//! drives **production-shaped** execution:
//!
//! * [`pool`] — [`JobPool`]: a scoped `std::thread` worker
//!   pool with a shared job queue and an order-preserving `par_map`, used by
//!   the noise-accuracy sweeps and the figure binaries to parallelize
//!   seed × SLC-rate × evaluation-point grids without changing results. The
//!   implementation lives in the foundation crate `hyflex-parallel` (so the
//!   kernel layers in `hyflex-tensor`/`hyflex-rram` can use it too); this
//!   crate re-exports it for back-compat.
//! * [`sweep`] — parallel drivers for `NoiseSimulator` and
//!   `PerformanceModel` sweeps, bit-identical to the serial entry points in
//!   `hyflex-pim`.
//! * [`batch`] — [`BatchScheduler`]: batching of
//!   [`InferenceRequest`]s bounded by the tile
//!   capacity the serving backend reports, admitted in
//!   [`policy`] order (FCFS, earliest-deadline-first, or strict priority).
//! * [`serving`] — [`ServingSim`]: a closed-loop
//!   serving simulator with Poisson arrivals — homogeneous or a weighted
//!   [`RequestClass`] mix with per-class SLOs —
//!   reporting throughput, utilization, p50/p95/p99 latency, and SLO
//!   attainment (see `examples/serving_sim.rs` and the
//!   `fig18_batch_throughput` binary).
//! * [`cluster`] — [`ClusterSim`]: the same engine
//!   over N backend replicas behind a round-robin or join-shortest-queue
//!   dispatcher (`fig20_serving_policies`, `examples/cluster_serving.rs`).
//! * [`traffic`] — [`RequestTrace`]: open-loop arrival generation — seeded
//!   deterministic MMPP and gamma-burst processes under piecewise diurnal
//!   rate curves, streaming to 10⁶–10⁷ requests in O(1) memory.
//! * [`overload`] — [`OverloadSim`]: overload survival over a
//!   chip-heterogeneous fleet — admission control (token-bucket /
//!   queue-depth), deadline-aware shedding, policy-driven preemption, and a
//!   reactive autoscaler — reporting p99.9 tails, goodput under SLO, and
//!   per-phase (burst vs. trough) breakdowns (`fig21_overload_survival`,
//!   `examples/open_loop_traffic.rs`).
//!
//! The whole execution layer is **backend-generic**: the scheduler, the
//! serving simulators, and [`par_backend_eval`]
//! consume any `hyflex_pim::Backend` ([`HyFlexPim`] or the baselines from
//! `hyflex-baselines`), so one workload drives interchangeable device models
//! (`fig19_backend_serving`). The HyFlexPIM path stays bit-identical to the
//! pre-generic implementation (CI-enforced determinism suite).

pub mod batch;
pub mod cluster;
pub mod decode;
pub mod error;
pub mod overload;
pub mod policy;
pub mod pool;
pub mod serving;
pub mod sweep;
pub mod traffic;

pub use batch::{Batch, BatchScheduler, InferenceRequest, SchedulerConfig};
pub use cluster::{BatchTrace, ClusterConfig, ClusterReport, ClusterSim, DispatchPolicy};
pub use decode::{DecodeConfig, DecodeReport, DecodeSim, KvPlacementPolicy};
pub use error::RuntimeError;
pub use hyflex_pim::backend::{Backend, HyFlexPim};
pub use overload::{
    AdmissionPolicy, AutoscaleEvent, AutoscalerConfig, OverloadConfig, OverloadReport, OverloadSim,
    PhaseReport,
};
pub use policy::SchedulingPolicy;
pub use pool::{JobPool, PoolScope};
pub use serving::{LatencySummary, RequestClass, ServingConfig, ServingReport, ServingSim};
pub use sweep::{par_backend_eval, par_noise_sweep, par_perf_eval};
pub use traffic::{
    ArrivalProcess, MmppState, RatePhase, RequestTrace, TrafficConfig, TrafficStream,
};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;
