//! Parallel drivers for the embarrassingly parallel evaluation surfaces:
//! noise-accuracy sweeps (`NoiseSimulator`) and analytical performance
//! sweeps (`PerformanceModel`).
//!
//! Both drivers fan the per-point entry points of `hyflex-pim` out over a
//! [`JobPool`] and return results **in input order**. Because every sweep
//! point seeds its own RNG from the point itself, the parallel result is
//! bit-identical to the serial reference (`NoiseSimulator::evaluate_sweep`,
//! `PerformanceModel::evaluate_many`) — a property the determinism tests in
//! this crate and CI (with `RUST_TEST_THREADS` 1 and default) enforce.

use crate::pool::JobPool;
use hyflex_pim::backend::{Backend, InferenceRequest};
use hyflex_pim::gradient_redistribution::LayerGradientProfile;
use hyflex_pim::noise_sim::{HybridMappingSpec, SweepOutcome, SweepPoint};
use hyflex_pim::perf::{EvaluationPoint, PerfSummary};
use hyflex_pim::{NoiseSimulator, PerformanceModel};
use hyflex_transformer::trainer::Sample;
use hyflex_transformer::TransformerModel;

/// Evaluates a noise sweep in parallel over `pool`.
///
/// Results are returned in `points` order and are bit-identical to
/// [`NoiseSimulator::evaluate_sweep`] on the same inputs.
///
/// # Errors
///
/// Propagates the first failing point's error (points are still all
/// evaluated; failure of one point does not depend on scheduling).
pub fn par_noise_sweep(
    pool: &JobPool,
    simulator: &NoiseSimulator,
    model: &TransformerModel,
    profiles: &[LayerGradientProfile],
    base: &HybridMappingSpec,
    eval: &[Sample],
    points: &[SweepPoint],
) -> hyflex_pim::Result<Vec<SweepOutcome>> {
    pool.par_map(points, |&point| {
        simulator.evaluate_point(model, profiles, base, eval, point)
    })
    .into_iter()
    .collect()
}

/// Evaluates performance-model points in parallel over `pool`.
///
/// Results are returned in `points` order and are bit-identical to
/// [`PerformanceModel::evaluate_many`].
///
/// # Errors
///
/// Propagates the first failing point's error.
pub fn par_perf_eval(
    pool: &JobPool,
    model: &PerformanceModel,
    points: &[EvaluationPoint],
) -> hyflex_pim::Result<Vec<PerfSummary>> {
    pool.par_map(points, |point| model.evaluate(point))
        .into_iter()
        .collect()
}

/// Evaluates requests against any [`Backend`] in parallel over `pool` — the
/// backend-generic successor of [`par_perf_eval`].
///
/// Results are returned in `requests` order and are bit-identical to calling
/// [`Backend::evaluate`] serially (for the HyFlexPIM backend, to
/// [`PerformanceModel::evaluate_many`] on the equivalent points — the
/// determinism suite enforces this).
///
/// # Errors
///
/// Propagates the first failing request's error.
pub fn par_backend_eval<B: Backend>(
    pool: &JobPool,
    backend: &B,
    requests: &[InferenceRequest],
) -> hyflex_pim::Result<Vec<PerfSummary>> {
    pool.par_map(requests, |request| backend.evaluate(request))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_transformer::ModelConfig;

    #[test]
    fn parallel_perf_eval_is_bit_identical_to_serial() {
        let model = PerformanceModel::paper_default();
        let points: Vec<EvaluationPoint> = [128usize, 512, 1024]
            .iter()
            .flat_map(|&seq_len| {
                [0.05, 0.3, 1.0].iter().map(move |&slc| EvaluationPoint {
                    model: ModelConfig::bert_large(),
                    seq_len,
                    slc_rank_fraction: slc,
                })
            })
            .collect();
        let serial = model.evaluate_many(&points).unwrap();
        for workers in [1, 2, 8] {
            let pool = JobPool::new(workers);
            let parallel = par_perf_eval(&pool, &model, &points).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }
}
