//! Back-compat re-export of the foundation worker pool.
//!
//! [`JobPool`] started life in this module (PR 2) driving the noise sweeps
//! and figure binaries. The parallel kernel layer then needed it *below*
//! `hyflex-tensor` and `hyflex-rram` — for the blocked GEMM kernels and the
//! tiled crossbar GEMV — so the implementation moved to the dependency-free
//! foundation crate `hyflex-parallel`. This module keeps every existing
//! `hyflex_runtime::pool::JobPool` import working.

pub use hyflex_parallel::{JobPool, PoolScope};
