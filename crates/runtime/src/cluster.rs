//! Multi-chip serving: N backend replicas behind a dispatcher.
//!
//! [`ClusterSim`] extends the single-device [`ServingSim`]
//! to a fleet of identical chips. One Poisson arrival stream (with the same
//! heterogeneous request mix and SLO semantics as the single-chip run) is
//! routed to chips by a [`DispatchPolicy`] — round-robin or
//! join-shortest-queue — and every chip runs its own
//! [`BatchScheduler`] with the configured
//! batching window and [`SchedulingPolicy`](crate::policy::SchedulingPolicy).
//!
//! Both simulators share one discrete-event engine (`run_engine`), so the
//! batching-window semantics are identical everywhere:
//!
//! * the window deadline is anchored at the **oldest queued arrival**
//!   (`max(ready, oldest + max_wait)`), so a request that already waited out
//!   the window while the device was busy launches the moment the device
//!   frees — a saturated chip never adds window delay;
//! * the window is **non-clairvoyant**: a batch's launch time is decided
//!   only from arrivals at or before "now" (`min(deadline, max(ready,
//!   fill_time))`), never by peeking at future arrivals — the run's final
//!   batch waits out its window exactly like a mid-run one;
//! * "full" is judged from the queue's actual contents
//!   ([`BatchScheduler::fill_time_ns`](crate::batch::BatchScheduler::fill_time_ns)),
//!   so heterogeneous sequence lengths move the fill target with the padded
//!   execution shape.
//!
//! Dispatch is decided at arrival time from information available at
//! arrival time (join-shortest-queue counts each chip's queued plus
//! in-flight requests), which keeps the whole cluster run deterministic for
//! a seed.

use crate::batch::{Batch, BatchScheduler, InferenceRequest, SchedulerConfig};
use crate::error::RuntimeError;
use crate::serving::{latency_summary, ServingConfig, ServingSim};
use crate::Result;
use hyflex_pim::backend::{Backend, HyFlexPim};
use hyflex_pim::perf::BatchPerfSummary;
use serde::{Deserialize, Serialize};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the cluster routes an arriving request to a chip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle through chips in index order, one request each.
    #[default]
    RoundRobin,
    /// Send each request to the chip with the fewest outstanding requests
    /// (queued plus launched-but-incomplete) at its arrival time; ties go
    /// to the lowest chip index.
    JoinShortestQueue,
}

impl DispatchPolicy {
    /// Every dispatch policy, in display order.
    pub const ALL: [DispatchPolicy; 2] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
    ];

    /// Stable name (accepted back by [`DispatchPolicy::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::JoinShortestQueue => "jsq",
        }
    }

    /// Parses a policy name as accepted by the binaries' `--dispatch` flag.
    pub fn parse(name: &str) -> Option<DispatchPolicy> {
        match name.to_ascii_lowercase().as_str() {
            "round-robin" | "rr" => Some(DispatchPolicy::RoundRobin),
            "jsq" | "shortest-queue" | "join-shortest-queue" => {
                Some(DispatchPolicy::JoinShortestQueue)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cluster topology and workload of one multi-chip run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of identical backend replicas.
    pub chips: usize,
    /// Request routing policy.
    pub dispatch: DispatchPolicy,
    /// Workload and per-chip batching policy (the single-chip config; its
    /// `qps` is the load offered to the whole cluster).
    pub serving: ServingConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            chips: 2,
            dispatch: DispatchPolicy::RoundRobin,
            serving: ServingConfig::default(),
        }
    }
}

/// One launched batch, as observed by the engine (returned by the
/// `*_traced` entry points for tests and trace analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchTrace {
    /// Index of the chip that executed the batch (always 0 single-chip).
    pub chip: usize,
    /// Time the batch launched, ns.
    pub launch_ns: f64,
    /// Modeled makespan of the batch, ns.
    pub makespan_ns: f64,
    /// The formed batch (requests, padded shape, cells used).
    pub batch: Batch,
}

/// Outcome of one cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Number of chips simulated.
    pub chips: usize,
    /// Dispatch policy of the run.
    pub dispatch: DispatchPolicy,
    /// Requests completed across the cluster (the loop is closed, so this
    /// always equals the number of offered requests).
    pub completed: usize,
    /// Batches executed across all chips.
    pub batches: usize,
    /// Wall-clock span from first arrival to last completion, seconds.
    pub sim_seconds: f64,
    /// Configured offered load (whole cluster), requests per second.
    pub offered_qps: f64,
    /// Completed requests per simulated second.
    pub achieved_qps: f64,
    /// Goodput under SLO: *useful* completions per simulated second, where
    /// a completion is useful if it met its deadline or carried no SLO.
    /// Equals `achieved_qps` when no request carries an SLO.
    pub goodput_qps: f64,
    /// End-to-end request latency distribution.
    pub latency: crate::serving::LatencySummary,
    /// Fraction of deadline-carrying requests that completed by their
    /// deadline (1.0 when no request carries an SLO).
    pub slo_attainment: f64,
    /// Mean formed batch size across the cluster.
    pub mean_batch_size: f64,
    /// Mean time a request waited before its batch launched, milliseconds.
    pub mean_queue_ms: f64,
    /// Per-chip completed-request counts (sums to `completed`).
    pub per_chip_completed: Vec<usize>,
    /// Per-chip busy fraction over the chip's active span.
    pub per_chip_utilization: Vec<f64>,
    /// Mean of `per_chip_utilization`.
    pub mean_chip_utilization: f64,
}

/// Memoized batch evaluations, shared across a run's chips (replicas are
/// identical, so a (shape, size) pair evaluates once). A `BTreeMap` rather
/// than a hash map: lookups here are key-exact so iteration order never
/// matters today, but the determinism policy (lint rule D1) bans
/// hash-ordered containers in runtime code outright so a future iteration
/// can never silently order-depend.
type ShapeCache = BTreeMap<(usize, usize), BatchPerfSummary>;

/// Per-chip accounting the engine reports back.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChipStats {
    pub completed: usize,
    pub batches: usize,
    pub busy_ns: f64,
    pub device_free_ns: f64,
}

/// Everything a simulation run produces before report assembly.
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineOutcome {
    pub latencies_ns: Vec<f64>,
    pub queue_ns_sum: f64,
    pub slo_tracked: usize,
    pub slo_met: usize,
    pub last_completion_ns: f64,
    pub traces: Vec<BatchTrace>,
    pub chips: Vec<ChipStats>,
}

impl EngineOutcome {
    /// Fraction of deadline-carrying requests that met their deadline.
    pub fn slo_attainment(&self) -> f64 {
        if self.slo_tracked > 0 {
            self.slo_met as f64 / self.slo_tracked as f64
        } else {
            1.0
        }
    }
}

/// One chip of the simulated cluster: a scheduler queue plus device timing.
struct ChipState {
    index: usize,
    scheduler: BatchScheduler,
    backend: Arc<dyn Backend>,
    device_free: f64,
    busy_ns: f64,
    batches: usize,
    completed: usize,
    /// Completion times of launched requests (for join-shortest-queue's
    /// outstanding count); pruned lazily.
    inflight: Vec<f64>,
}

impl ChipState {
    fn new(index: usize, backend: Arc<dyn Backend>, config: SchedulerConfig) -> Result<Self> {
        Ok(ChipState {
            index,
            scheduler: BatchScheduler::for_backend(Arc::clone(&backend), config)?,
            backend,
            device_free: 0.0,
            busy_ns: 0.0,
            batches: 0,
            completed: 0,
            inflight: Vec::new(),
        })
    }

    /// Requests dispatched to this chip that have not completed by `now`.
    fn outstanding(&mut self, now: f64) -> usize {
        self.inflight.retain(|&completion| completion > now);
        self.scheduler.queue_len() + self.inflight.len()
    }

    /// Commits every batch whose launch time is at or before `now`.
    ///
    /// Launch times are decided purely from the queue (whose members all
    /// arrived in the past), so a launch at `t <= now` can never be changed
    /// by an arrival after `now` — this is what makes the lazy event loop
    /// exact. The window semantics live here; see the module docs.
    fn advance(&mut self, now: f64, cache: &mut ShapeCache, out: &mut EngineOutcome) -> Result<()> {
        while self.scheduler.queue_len() > 0 {
            let Some(oldest) = self.scheduler.oldest_arrival_ns() else {
                break;
            };
            let ready = self.device_free.max(oldest);
            let max_wait = self.scheduler.config().max_wait_ns;
            let launch = if max_wait == 0.0 {
                ready
            } else {
                // Window deadline anchored at the oldest queued arrival,
                // clamped to ready; a full queue launches at its fill time
                // (or ready, whichever is later), a non-full one waits out
                // the window.
                let deadline = ready.max(oldest + max_wait);
                match self.scheduler.fill_time_ns() {
                    Some(fill) => deadline.min(ready.max(fill)),
                    None => deadline,
                }
            };
            if launch > now {
                break;
            }
            let Some(batch) = self.scheduler.next_batch() else {
                break;
            };
            let key = (batch.max_seq_len, batch.len());
            let summary = match cache.entry(key) {
                Entry::Occupied(entry) => entry.into_mut(),
                Entry::Vacant(entry) => entry.insert(
                    self.backend
                        .evaluate_batched(batch.max_seq_len, batch.len())?,
                ),
            };
            for (k, request) in batch.requests.iter().enumerate() {
                let completion = launch + summary.completion_ns(k);
                out.latencies_ns.push(completion - request.arrival_ns);
                out.queue_ns_sum += launch - request.arrival_ns;
                out.last_completion_ns = out.last_completion_ns.max(completion);
                if request.has_deadline() {
                    out.slo_tracked += 1;
                    if completion <= request.deadline_ns {
                        out.slo_met += 1;
                    }
                }
                self.inflight.push(completion);
            }
            self.device_free = launch + summary.makespan_ns;
            self.busy_ns += summary.makespan_ns;
            self.batches += 1;
            self.completed += batch.len();
            out.traces.push(BatchTrace {
                chip: self.index,
                launch_ns: launch,
                makespan_ns: summary.makespan_ns,
                batch,
            });
        }
        Ok(())
    }

    fn stats(&self) -> ChipStats {
        ChipStats {
            completed: self.completed,
            batches: self.batches,
            busy_ns: self.busy_ns,
            device_free_ns: self.device_free,
        }
    }
}

/// Runs the shared discrete-event serving engine: `arrivals` (sorted by
/// arrival time) dispatched over `chips` replicas of `backend`.
///
/// Chips advance in index order at every arrival, so the whole run is a
/// deterministic function of its inputs.
pub(crate) fn run_engine(
    backend: Arc<dyn Backend>,
    chips: usize,
    dispatch: DispatchPolicy,
    scheduler: SchedulerConfig,
    arrivals: &[InferenceRequest],
) -> Result<EngineOutcome> {
    if chips == 0 {
        return Err(RuntimeError::InvalidConfig(
            "a cluster needs at least one chip".to_string(),
        ));
    }
    if arrivals.is_empty() {
        return Err(RuntimeError::InvalidConfig(
            "the arrival stream is empty".to_string(),
        ));
    }
    // NaN arrival times compare as unordered and are rejected here too.
    if arrivals.windows(2).any(|pair| {
        pair[0]
            .arrival_ns
            .partial_cmp(&pair[1].arrival_ns)
            .is_none_or(|order| order == std::cmp::Ordering::Greater)
    }) {
        return Err(RuntimeError::InvalidConfig(
            "arrivals must be sorted by non-decreasing arrival_ns".to_string(),
        ));
    }
    let mut states = (0..chips)
        .map(|index| ChipState::new(index, Arc::clone(&backend), scheduler))
        .collect::<Result<Vec<_>>>()?;
    let mut cache = ShapeCache::new();
    let mut out = EngineOutcome {
        latencies_ns: Vec::with_capacity(arrivals.len()),
        ..EngineOutcome::default()
    };
    let mut round_robin = 0usize;
    for request in arrivals {
        let now = request.arrival_ns;
        for chip in &mut states {
            chip.advance(now, &mut cache, &mut out)?;
        }
        let target = match dispatch {
            DispatchPolicy::RoundRobin => {
                let index = round_robin % chips;
                round_robin += 1;
                index
            }
            DispatchPolicy::JoinShortestQueue => {
                let mut best = 0usize;
                let mut best_load = usize::MAX;
                for (index, chip) in states.iter_mut().enumerate() {
                    let load = chip.outstanding(now);
                    if load < best_load {
                        best = index;
                        best_load = load;
                    }
                }
                best
            }
        };
        states[target].scheduler.submit(*request)?;
    }
    for chip in &mut states {
        chip.advance(f64::INFINITY, &mut cache, &mut out)?;
    }
    out.chips = states.iter().map(ChipState::stats).collect();
    Ok(out)
}

/// The multi-chip serving simulator, generic over the replicated device.
pub struct ClusterSim<B: Backend = HyFlexPim> {
    sim: ServingSim<B>,
    chips: usize,
    dispatch: DispatchPolicy,
}

impl<B: Backend> Clone for ClusterSim<B> {
    fn clone(&self) -> Self {
        ClusterSim {
            sim: self.sim.clone(),
            chips: self.chips,
            dispatch: self.dispatch,
        }
    }
}

impl<B: Backend> std::fmt::Debug for ClusterSim<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("sim", &self.sim)
            .field("chips", &self.chips)
            .field("dispatch", &self.dispatch)
            .finish()
    }
}

impl<B: Backend + 'static> ClusterSim<B> {
    /// Builds a cluster of `config.chips` replicas of `backend`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for a zero-chip cluster and
    /// propagates every [`ServingSim::with_backend`] validation error.
    pub fn with_backend(backend: B, config: ClusterConfig) -> Result<Self> {
        if config.chips == 0 {
            return Err(RuntimeError::InvalidConfig(
                "a cluster needs at least one chip".to_string(),
            ));
        }
        Ok(ClusterSim {
            sim: ServingSim::with_backend(backend, config.serving)?,
            chips: config.chips,
            dispatch: config.dispatch,
        })
    }

    /// The per-chip workload/scheduler configuration.
    pub fn serving_config(&self) -> &ServingConfig {
        self.sim.config()
    }

    /// Number of chips in the cluster.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// The dispatch policy.
    pub fn dispatch(&self) -> DispatchPolicy {
        self.dispatch
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and device-model errors.
    pub fn run(&self) -> Result<ClusterReport> {
        Ok(self.run_traced()?.0)
    }

    /// Runs the simulation and also returns every launched batch.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and device-model errors.
    pub fn run_traced(&self) -> Result<(ClusterReport, Vec<BatchTrace>)> {
        let arrivals = self.sim.generate_arrivals();
        self.replay_traced(&arrivals)
    }

    /// Replays an explicit arrival stream (sorted by `arrival_ns`) through
    /// the cluster instead of sampling the configured Poisson process.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for an empty or unsorted
    /// stream and propagates scheduler and device-model errors.
    pub fn replay_traced(
        &self,
        arrivals: &[InferenceRequest],
    ) -> Result<(ClusterReport, Vec<BatchTrace>)> {
        let mut outcome = run_engine(
            self.sim.backend_dyn(),
            self.chips,
            self.dispatch,
            self.sim.config().scheduler,
            arrivals,
        )?;
        let span_start = arrivals.first().map_or(0.0, |a| a.arrival_ns);
        let completed = outcome.latencies_ns.len();
        let sim_seconds = (outcome.last_completion_ns - span_start).max(0.0) * 1e-9;
        let batches: usize = outcome.chips.iter().map(|c| c.batches).sum();
        let per_chip_completed: Vec<usize> = outcome.chips.iter().map(|c| c.completed).collect();
        let per_chip_utilization: Vec<f64> = outcome
            .chips
            .iter()
            .map(|c| {
                if c.device_free_ns > span_start {
                    c.busy_ns / (c.device_free_ns - span_start)
                } else {
                    0.0
                }
            })
            .collect();
        let mean_chip_utilization = per_chip_utilization.iter().sum::<f64>() / self.chips as f64;
        // A completion is useful unless it carried a deadline and missed it.
        let useful = completed - (outcome.slo_tracked - outcome.slo_met);
        let report = ClusterReport {
            chips: self.chips,
            dispatch: self.dispatch,
            completed,
            batches,
            sim_seconds,
            offered_qps: self.sim.config().qps,
            achieved_qps: if sim_seconds > 0.0 {
                completed as f64 / sim_seconds
            } else {
                0.0
            },
            goodput_qps: if sim_seconds > 0.0 {
                useful as f64 / sim_seconds
            } else {
                0.0
            },
            latency: latency_summary(std::mem::take(&mut outcome.latencies_ns)),
            slo_attainment: outcome.slo_attainment(),
            mean_batch_size: completed as f64 / batches.max(1) as f64,
            mean_queue_ms: outcome.queue_ns_sum / completed.max(1) as f64 / 1e6,
            per_chip_completed,
            per_chip_utilization,
            mean_chip_utilization,
        };
        Ok((report, outcome.traces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_pim::PerformanceModel;
    use hyflex_transformer::ModelConfig;

    fn cluster(chips: usize, dispatch: DispatchPolicy, qps: f64) -> ClusterSim {
        let backend = HyFlexPim::new(
            PerformanceModel::paper_default(),
            ModelConfig::bert_base(),
            0.05,
        )
        .unwrap();
        ClusterSim::with_backend(
            backend,
            ClusterConfig {
                chips,
                dispatch,
                serving: ServingConfig {
                    qps,
                    num_requests: 240,
                    ..ServingConfig::default()
                },
            },
        )
        .unwrap()
    }

    #[test]
    fn dispatch_names_round_trip_and_reject_unknowns() {
        for policy in DispatchPolicy::ALL {
            assert_eq!(DispatchPolicy::parse(policy.name()), Some(policy));
            assert_eq!(policy.to_string(), policy.name());
        }
        assert_eq!(
            DispatchPolicy::parse("rr"),
            Some(DispatchPolicy::RoundRobin)
        );
        assert_eq!(
            DispatchPolicy::parse("shortest-queue"),
            Some(DispatchPolicy::JoinShortestQueue)
        );
        assert_eq!(DispatchPolicy::parse("random"), None);
    }

    #[test]
    fn construction_rejects_zero_chips() {
        let backend = HyFlexPim::new(
            PerformanceModel::paper_default(),
            ModelConfig::bert_base(),
            0.05,
        )
        .unwrap();
        let config = ClusterConfig {
            chips: 0,
            ..ClusterConfig::default()
        };
        assert!(ClusterSim::with_backend(backend, config).is_err());
    }

    #[test]
    fn every_chip_serves_and_the_cluster_conserves_requests() {
        for dispatch in DispatchPolicy::ALL {
            let report = cluster(3, dispatch, 6000.0).run().unwrap();
            assert_eq!(report.completed, 240, "{dispatch}");
            assert_eq!(report.per_chip_completed.iter().sum::<usize>(), 240);
            assert_eq!(report.per_chip_completed.len(), 3);
            assert_eq!(report.per_chip_utilization.len(), 3);
            assert!(
                report.per_chip_completed.iter().all(|&c| c > 0),
                "{dispatch}: every chip should serve part of the stream, got \
                 {:?}",
                report.per_chip_completed
            );
            assert!(report.latency.p50_ms > 0.0);
            assert!(report.latency.p50_ms <= report.latency.p99_ms);
            assert!(report.mean_chip_utilization > 0.0 && report.mean_chip_utilization <= 1.0);
        }
    }

    #[test]
    fn cluster_runs_are_deterministic_for_a_seed() {
        for dispatch in DispatchPolicy::ALL {
            let a = cluster(2, dispatch, 5000.0).run().unwrap();
            let b = cluster(2, dispatch, 5000.0).run().unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn a_one_chip_cluster_matches_the_single_device_simulator() {
        // Same engine, one replica: the cluster's aggregate numbers must be
        // byte-identical to ServingSim on the same backend and workload.
        let cluster = cluster(1, DispatchPolicy::JoinShortestQueue, 4000.0);
        let cluster_report = cluster.run().unwrap();
        let single = ServingSim::with_backend(
            HyFlexPim::new(
                PerformanceModel::paper_default(),
                ModelConfig::bert_base(),
                0.05,
            )
            .unwrap(),
            cluster.serving_config().clone(),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(cluster_report.completed, single.completed);
        assert_eq!(cluster_report.batches, single.batches);
        assert_eq!(cluster_report.latency, single.latency);
        assert_eq!(cluster_report.goodput_qps, single.goodput_qps);
        assert_eq!(cluster_report.sim_seconds, single.sim_seconds);
        assert_eq!(cluster_report.mean_batch_size, single.mean_batch_size);
        assert_eq!(cluster_report.mean_queue_ms, single.mean_queue_ms);
        assert_eq!(
            cluster_report.per_chip_utilization[0],
            single.device_utilization
        );
    }

    #[test]
    fn more_chips_drain_an_overload_faster() {
        // Offered load far beyond one chip's service rate: doubling the
        // fleet must raise sustained throughput and cut tail latency.
        let one = cluster(1, DispatchPolicy::RoundRobin, 12_000.0)
            .run()
            .unwrap();
        let four = cluster(4, DispatchPolicy::RoundRobin, 12_000.0)
            .run()
            .unwrap();
        assert!(
            four.achieved_qps > one.achieved_qps,
            "4 chips {} <= 1 chip {}",
            four.achieved_qps,
            one.achieved_qps
        );
        assert!(four.latency.p99_ms < one.latency.p99_ms);
    }

    #[test]
    fn jsq_balances_at_least_as_evenly_as_round_robin_under_skew() {
        // With a heterogeneous mix, round-robin ignores how much work each
        // request carries; join-shortest-queue reacts to it. Both must
        // still conserve the stream.
        let make = |dispatch| {
            let backend = HyFlexPim::new(
                PerformanceModel::paper_default(),
                ModelConfig::bert_base(),
                0.05,
            )
            .unwrap();
            ClusterSim::with_backend(
                backend,
                ClusterConfig {
                    chips: 3,
                    dispatch,
                    serving: ServingConfig {
                        qps: 9000.0,
                        num_requests: 300,
                        classes: vec![
                            crate::serving::RequestClass::new(64, 2.0),
                            crate::serving::RequestClass::new(384, 1.0),
                        ],
                        ..ServingConfig::default()
                    },
                },
            )
            .unwrap()
        };
        let rr = make(DispatchPolicy::RoundRobin).run().unwrap();
        let jsq = make(DispatchPolicy::JoinShortestQueue).run().unwrap();
        assert_eq!(rr.completed, 300);
        assert_eq!(jsq.completed, 300);
        assert_eq!(jsq.per_chip_completed.iter().sum::<usize>(), 300);
    }
}
