//! Error types for the batched-inference runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by the runtime subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A request cannot fit the configured tile capacity even alone.
    CapacityExceeded(String),
    /// An internal engine invariant was violated. This is a bug in the
    /// runtime, never a user error; it exists so library code can surface
    /// broken invariants as typed errors instead of panicking (the
    /// serving crates are panic-free by policy — lint rule E1).
    Internal(String),
    /// An error bubbled up from the accelerator model.
    Pim(hyflex_pim::PimError),
    /// An error bubbled up from the transformer substrate.
    Model(hyflex_transformer::ModelError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RuntimeError::CapacityExceeded(msg) => write!(f, "capacity exceeded: {msg}"),
            RuntimeError::Internal(msg) => {
                write!(f, "internal runtime invariant violated (bug): {msg}")
            }
            RuntimeError::Pim(e) => write!(f, "accelerator model error: {e}"),
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Pim(e) => Some(e),
            RuntimeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hyflex_pim::PimError> for RuntimeError {
    fn from(e: hyflex_pim::PimError) -> Self {
        RuntimeError::Pim(e)
    }
}

impl From<hyflex_transformer::ModelError> for RuntimeError {
    fn from(e: hyflex_transformer::ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::InvalidConfig("qps".into());
        assert!(e.to_string().contains("qps"));
        assert!(Error::source(&e).is_none());
        let e: RuntimeError = hyflex_pim::PimError::CapacityExceeded("x".into()).into();
        assert!(Error::source(&e).is_some());
        let e: RuntimeError = hyflex_transformer::ModelError::InvalidInput("y".into()).into();
        assert!(e.to_string().contains("model error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
