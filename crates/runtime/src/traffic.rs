//! Open-loop arrival generation: bursty, diurnal, replayable request
//! traces that stream to millions of requests.
//!
//! The closed-loop [`ServingSim`](crate::serving::ServingSim) samples plain
//! Poisson arrivals and materializes the whole stream up front. Production
//! traffic is neither: it is **open-loop** (arrivals do not wait for
//! completions), **bursty** (arrival-rate variance far above Poisson), and
//! **diurnal** (the mean rate itself drifts over the day). This module
//! models all three with three deterministic seeded processes behind one
//! [`ArrivalProcess`] surface:
//!
//! * [`ArrivalProcess::Poisson`] — the historical memoryless stream. With
//!   the same seed, rate, and request mix, the generated stream is
//!   **bit-identical** to [`ServingSim`](crate::serving::ServingSim)'s
//!   internal generator, so a Poisson [`RequestTrace`] replayed through the
//!   closed-loop simulators reproduces their reports byte for byte.
//! * [`ArrivalProcess::Mmpp`] — a Markov-modulated Poisson process: the
//!   stream cycles through [`MmppState`]s (e.g. *burst* → *trough*), each
//!   holding a Poisson rate for an exponentially distributed dwell time.
//!   Because the exponential is memoryless, re-sampling the inter-arrival
//!   draw at every rate boundary is exact, not an approximation.
//! * [`ArrivalProcess::GammaBurst`] — i.i.d. Gamma inter-arrival times at a
//!   mean rate with a shape parameter: `shape < 1` clumps arrivals into
//!   bursts (coefficient of variation `1/√shape > 1`), `shape > 1` smooths
//!   them toward a paced stream.
//!
//! A piecewise [`RatePhase`] curve multiplies the instantaneous rate on top
//! of any process, cycling to model diurnal load shape. Every request is
//! tagged with the *phase* it arrived in (the MMPP state or the curve
//! segment) via `InferenceRequest::phase`, which is what lets the overload
//! engine ([`crate::overload`]) break tail latency and goodput out per
//! burst/trough phase.
//!
//! [`RequestTrace`] is the replayable trace format: a validated
//! configuration whose [`stream`](RequestTrace::stream) yields arrivals one
//! at a time in O(1) memory — the trace *is* the (config, seed) pair, so a
//! 10⁷-request trace costs nothing to store and re-streams bit-identically
//! on every machine and thread count.

use crate::error::RuntimeError;
use crate::serving::RequestClass;
use crate::Result;
use hyflex_pim::backend::InferenceRequest;
use hyflex_tensor::rng::Rng;
use serde::{Deserialize, Serialize};

/// One state of a Markov-modulated Poisson process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmppState {
    /// Display label used in per-phase report rows (e.g. `"burst"`).
    pub label: String,
    /// Poisson arrival rate while the process holds this state, requests
    /// per second (before any rate-curve multiplier).
    pub qps: f64,
    /// Mean dwell time in this state, seconds (the actual dwell of each
    /// visit is exponentially distributed around this mean).
    pub mean_dwell_s: f64,
}

impl MmppState {
    /// A state with the given label, rate, and mean dwell.
    pub fn new(label: &str, qps: f64, mean_dwell_s: f64) -> Self {
        MmppState {
            label: label.to_string(),
            qps,
            mean_dwell_s,
        }
    }
}

/// One segment of a piecewise time-varying rate curve (cycled for diurnal
/// shape): for `duration_s` the process's instantaneous rate is multiplied
/// by `multiplier`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePhase {
    /// Display label used in per-phase report rows (e.g. `"peak"`).
    pub label: String,
    /// Segment length, seconds.
    pub duration_s: f64,
    /// Rate multiplier applied while the curve is in this segment.
    pub multiplier: f64,
}

impl RatePhase {
    /// A curve segment with the given label, duration, and multiplier.
    pub fn new(label: &str, duration_s: f64, multiplier: f64) -> Self {
        RatePhase {
            label: label.to_string(),
            duration_s,
            multiplier,
        }
    }
}

/// The stochastic arrival process of an open-loop trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals at a constant mean rate. Bit-identical
    /// to the closed-loop simulators' generator for the same seed and mix.
    Poisson {
        /// Mean arrival rate, requests per second.
        qps: f64,
    },
    /// Markov-modulated Poisson: the process cycles through `states` in
    /// order, holding each state's rate for an exponentially distributed
    /// dwell. Two states give the classic burst/trough on-off shape.
    Mmpp {
        /// The dwell states, visited cyclically (state 0 first).
        states: Vec<MmppState>,
    },
    /// Renewal process with Gamma-distributed inter-arrival times: mean
    /// rate `qps`, burstiness set by `shape` (CV = `1/√shape`; `shape < 1`
    /// is burstier than Poisson, `shape > 1` smoother).
    GammaBurst {
        /// Mean arrival rate, requests per second.
        qps: f64,
        /// Gamma shape parameter `k > 0`.
        shape: f64,
    },
}

/// Workload description of one open-loop trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Piecewise rate multipliers cycled over time (empty = flat). Applied
    /// exactly (per-segment re-sampling) to the memoryless processes; for
    /// [`ArrivalProcess::GammaBurst`] each sampled inter-arrival is scaled
    /// by the multiplier in force when it is drawn (an approximation,
    /// since the Gamma renewal process is not memoryless).
    pub rate_curve: Vec<RatePhase>,
    /// Number of requests the trace yields.
    pub num_requests: usize,
    /// Sequence length of every request when `classes` is empty.
    pub seq_len: usize,
    /// Relative SLO applied to every request when `classes` is empty;
    /// `f64::INFINITY` tracks no deadline.
    pub slo_ns: f64,
    /// Heterogeneous request mix, sampled by weight exactly as in
    /// [`ServingConfig::classes`](crate::serving::ServingConfig::classes).
    pub classes: Vec<RequestClass>,
    /// Seed of the whole trace (dwells, inter-arrivals, and mix draws).
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            process: ArrivalProcess::Poisson { qps: 1000.0 },
            rate_curve: Vec::new(),
            num_requests: 10_000,
            seq_len: 128,
            slo_ns: f64::INFINITY,
            classes: Vec::new(),
            seed: 7,
        }
    }
}

/// A validated, replayable request trace: the (configuration, seed) pair
/// that deterministically re-streams the same arrivals on demand.
///
/// The trace never materializes its requests — [`RequestTrace::stream`]
/// yields them one at a time in O(1) memory, so traces scale to 10⁶–10⁷
/// requests. [`RequestTrace::collect`] materializes small traces for replay
/// through the closed-loop simulators' `replay` entry points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    config: TrafficConfig,
}

impl RequestTrace {
    /// Validates and wraps a traffic configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for non-positive rates,
    /// shapes, dwells, curve durations or multipliers, an empty run, an
    /// empty MMPP state list, more than 256 phases (the per-request phase
    /// tag is a `u8`), or a degenerate request mix (non-positive weight or
    /// SLO), mirroring the closed-loop simulator's validation.
    pub fn new(config: TrafficConfig) -> Result<Self> {
        if config.num_requests == 0 {
            return Err(RuntimeError::InvalidConfig(
                "num_requests must be at least 1".to_string(),
            ));
        }
        match &config.process {
            ArrivalProcess::Poisson { qps } => {
                if !(qps.is_finite() && *qps > 0.0) {
                    return Err(RuntimeError::InvalidConfig(format!(
                        "Poisson qps {qps} must be positive and finite"
                    )));
                }
            }
            ArrivalProcess::Mmpp { states } => {
                if states.is_empty() {
                    return Err(RuntimeError::InvalidConfig(
                        "an MMPP needs at least one state".to_string(),
                    ));
                }
                if states.len() > 256 {
                    return Err(RuntimeError::InvalidConfig(format!(
                        "{} MMPP states exceed the 256-phase tag space",
                        states.len()
                    )));
                }
                for (index, state) in states.iter().enumerate() {
                    if !(state.qps.is_finite() && state.qps > 0.0) {
                        return Err(RuntimeError::InvalidConfig(format!(
                            "MMPP state {index} ({}) has non-positive qps {}",
                            state.label, state.qps
                        )));
                    }
                    if !(state.mean_dwell_s.is_finite() && state.mean_dwell_s > 0.0) {
                        return Err(RuntimeError::InvalidConfig(format!(
                            "MMPP state {index} ({}) has non-positive dwell {}",
                            state.label, state.mean_dwell_s
                        )));
                    }
                }
            }
            ArrivalProcess::GammaBurst { qps, shape } => {
                if !(qps.is_finite() && *qps > 0.0) {
                    return Err(RuntimeError::InvalidConfig(format!(
                        "GammaBurst qps {qps} must be positive and finite"
                    )));
                }
                if !(shape.is_finite() && *shape > 0.0) {
                    return Err(RuntimeError::InvalidConfig(format!(
                        "GammaBurst shape {shape} must be positive and finite"
                    )));
                }
            }
        }
        if config.rate_curve.len() > 256 {
            return Err(RuntimeError::InvalidConfig(format!(
                "{} rate-curve segments exceed the 256-phase tag space",
                config.rate_curve.len()
            )));
        }
        for (index, phase) in config.rate_curve.iter().enumerate() {
            if !(phase.duration_s.is_finite() && phase.duration_s > 0.0) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "rate-curve segment {index} ({}) has non-positive duration {}",
                    phase.label, phase.duration_s
                )));
            }
            if !(phase.multiplier.is_finite() && phase.multiplier > 0.0) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "rate-curve segment {index} ({}) has non-positive multiplier {}",
                    phase.label, phase.multiplier
                )));
            }
        }
        if config.slo_ns.is_nan() || config.slo_ns <= 0.0 {
            return Err(RuntimeError::InvalidConfig(format!(
                "slo_ns {} must be positive (f64::INFINITY for no SLO)",
                config.slo_ns
            )));
        }
        for (index, class) in config.classes.iter().enumerate() {
            if !(class.weight > 0.0 && class.weight.is_finite()) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "request class {index} has non-positive weight {}",
                    class.weight
                )));
            }
            if class.slo_ns.is_nan() || class.slo_ns <= 0.0 {
                return Err(RuntimeError::InvalidConfig(format!(
                    "request class {index} has non-positive slo_ns {}",
                    class.slo_ns
                )));
            }
        }
        Ok(RequestTrace { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Long-run mean offered rate, requests per second: the process mean
    /// (dwell-weighted over MMPP states) times the time-weighted mean
    /// rate-curve multiplier over one curve cycle.
    pub fn mean_qps(&self) -> f64 {
        let process_qps = match &self.config.process {
            ArrivalProcess::Poisson { qps } | ArrivalProcess::GammaBurst { qps, .. } => *qps,
            ArrivalProcess::Mmpp { states } => {
                let dwell: f64 = states.iter().map(|s| s.mean_dwell_s).sum();
                states.iter().map(|s| s.qps * s.mean_dwell_s).sum::<f64>() / dwell
            }
        };
        let curve_factor = if self.config.rate_curve.is_empty() {
            1.0
        } else {
            let span: f64 = self.config.rate_curve.iter().map(|p| p.duration_s).sum();
            self.config
                .rate_curve
                .iter()
                .map(|p| p.multiplier * p.duration_s)
                .sum::<f64>()
                / span
        };
        process_qps * curve_factor
    }

    /// Display labels of the trace's phases, indexed by the per-request
    /// `phase` tag: the MMPP state labels, else the rate-curve segment
    /// labels, else a single `"steady"` phase.
    pub fn phase_labels(&self) -> Vec<String> {
        match &self.config.process {
            ArrivalProcess::Mmpp { states } => states.iter().map(|s| s.label.clone()).collect(),
            _ if !self.config.rate_curve.is_empty() => self
                .config
                .rate_curve
                .iter()
                .map(|p| p.label.clone())
                .collect(),
            _ => vec!["steady".to_string()],
        }
    }

    /// Loads a trace from a plain-text workload file (see
    /// [`RequestTrace::parse`] for the format).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for an unreadable file or a
    /// malformed workload description.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            RuntimeError::InvalidConfig(format!("cannot read trace file {}: {e}", path.display()))
        })?;
        RequestTrace::parse(&text)
    }

    /// Parses a plain-text workload description into a validated trace.
    ///
    /// One `key = value` directive per line; `#` starts a comment. Keys:
    ///
    /// ```text
    /// process      = poisson qps=3000
    ///              | mmpp                      (states follow)
    ///              | gamma qps=3000 shape=0.25
    /// state        = burst qps=20000 dwell_s=0.02     (MMPP states, in order)
    /// phase        = peak duration_s=0.05 multiplier=3.0   (rate curve)
    /// num_requests = 500
    /// seq_len      = 128
    /// slo_ns       = 2e6 | inf
    /// class        = seq_len=64 weight=3 slo_ns=2e6 priority=1
    /// seed         = 42
    /// ```
    ///
    /// Unset keys keep the [`TrafficConfig::default`] values; `class` lines
    /// build the heterogeneous request mix (`slo_ns` and `priority` are
    /// optional per class). The format is hand-parsed — traces stay
    /// loadable without any serialization dependency.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] naming the offending line
    /// for unknown keys, malformed numbers, `state` lines outside an MMPP
    /// process, or a configuration [`RequestTrace::new`] rejects.
    pub fn parse(text: &str) -> Result<Self> {
        let mut config = TrafficConfig::default();
        let mut states: Vec<MmppState> = Vec::new();
        let mut saw_mmpp = false;
        for (index, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad =
                |msg: String| RuntimeError::InvalidConfig(format!("line {}: {msg}", index + 1));
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "process" => {
                    let mut words = value.split_whitespace();
                    let kind = words
                        .next()
                        .ok_or_else(|| bad("empty process".to_string()))?;
                    let fields = parse_fields(words, index + 1)?;
                    config.process = match kind {
                        "poisson" => ArrivalProcess::Poisson {
                            qps: take_field(&fields, "qps", index + 1)?,
                        },
                        "mmpp" => {
                            saw_mmpp = true;
                            ArrivalProcess::Mmpp { states: Vec::new() }
                        }
                        "gamma" => ArrivalProcess::GammaBurst {
                            qps: take_field(&fields, "qps", index + 1)?,
                            shape: take_field(&fields, "shape", index + 1)?,
                        },
                        other => {
                            return Err(bad(format!(
                                "unknown process `{other}` (poisson, mmpp, gamma)"
                            )))
                        }
                    };
                }
                "state" => {
                    if !saw_mmpp {
                        return Err(bad("`state` requires `process = mmpp` first".to_string()));
                    }
                    let mut words = value.split_whitespace();
                    let label = words
                        .next()
                        .ok_or_else(|| bad("state needs a label".to_string()))?;
                    let fields = parse_fields(words, index + 1)?;
                    states.push(MmppState::new(
                        label,
                        take_field(&fields, "qps", index + 1)?,
                        take_field(&fields, "dwell_s", index + 1)?,
                    ));
                }
                "phase" => {
                    let mut words = value.split_whitespace();
                    let label = words
                        .next()
                        .ok_or_else(|| bad("phase needs a label".to_string()))?;
                    let fields = parse_fields(words, index + 1)?;
                    config.rate_curve.push(RatePhase::new(
                        label,
                        take_field(&fields, "duration_s", index + 1)?,
                        take_field(&fields, "multiplier", index + 1)?,
                    ));
                }
                "class" => {
                    let fields = parse_fields(value.split_whitespace(), index + 1)?;
                    let seq_len = take_field(&fields, "seq_len", index + 1)?;
                    let weight = take_field(&fields, "weight", index + 1)?;
                    let mut class = RequestClass::new(seq_len as usize, weight);
                    if let Some(slo) = find_field(&fields, "slo_ns") {
                        class = class.with_slo_ns(slo);
                    }
                    if let Some(priority) = find_field(&fields, "priority") {
                        class = class.with_priority(priority as u8);
                    }
                    config.classes.push(class);
                }
                "num_requests" => {
                    config.num_requests = value
                        .parse()
                        .map_err(|_| bad(format!("bad num_requests `{value}`")))?;
                }
                "seq_len" => {
                    config.seq_len = value
                        .parse()
                        .map_err(|_| bad(format!("bad seq_len `{value}`")))?;
                }
                "slo_ns" => {
                    config.slo_ns =
                        parse_number(value).ok_or_else(|| bad(format!("bad slo_ns `{value}`")))?;
                }
                "seed" => {
                    config.seed = value
                        .parse()
                        .map_err(|_| bad(format!("bad seed `{value}`")))?;
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        if saw_mmpp {
            config.process = ArrivalProcess::Mmpp { states };
        }
        RequestTrace::new(config)
    }

    /// Opens the trace as a streaming iterator of arrivals (sorted by
    /// arrival time, ids sequential from 0, phases tagged). O(1) memory;
    /// bit-identical on every call for the same trace.
    pub fn stream(&self) -> TrafficStream {
        TrafficStream::new(self.config.clone())
    }

    /// Materializes the whole trace (for replay through
    /// [`ServingSim::replay`](crate::serving::ServingSim::replay) /
    /// [`ClusterSim::replay_traced`](crate::cluster::ClusterSim::replay_traced)
    /// and for tests). Prefer [`RequestTrace::stream`] for large traces.
    pub fn collect(&self) -> Vec<InferenceRequest> {
        self.stream().collect()
    }
}

/// Streaming generator over a [`RequestTrace`]: yields arrivals one at a
/// time without materializing the trace.
#[derive(Debug, Clone)]
pub struct TrafficStream {
    config: TrafficConfig,
    total_class_weight: f64,
    rng: Rng,
    /// Current simulation time, ns.
    t_ns: f64,
    emitted: usize,
    /// Current MMPP state index and the time its dwell ends, ns.
    state: usize,
    state_end_ns: f64,
    /// Current rate-curve segment index (into `rate_curve`, cycling) and
    /// the time it ends, ns.
    segment: usize,
    segment_end_ns: f64,
}

impl TrafficStream {
    fn new(config: TrafficConfig) -> Self {
        let total_class_weight = config.classes.iter().map(|c| c.weight).sum();
        let mut stream = TrafficStream {
            config,
            total_class_weight,
            rng: Rng::seed_from(0),
            t_ns: 0.0,
            emitted: 0,
            state: 0,
            state_end_ns: f64::INFINITY,
            segment: 0,
            segment_end_ns: f64::INFINITY,
        };
        stream.rng = Rng::seed_from(stream.config.seed);
        if !stream.config.rate_curve.is_empty() {
            stream.segment_end_ns = stream.config.rate_curve[0].duration_s * 1e9;
        }
        if let ArrivalProcess::Mmpp { states } = &stream.config.process {
            // The initial dwell is sampled up front so the first arrival
            // already lives inside a well-defined state window.
            let dwell = exponential(&mut stream.rng, states[0].mean_dwell_s);
            stream.state_end_ns = dwell * 1e9;
        }
        stream
    }

    /// Rate multiplier of the current curve segment.
    fn multiplier(&self) -> f64 {
        if self.config.rate_curve.is_empty() {
            1.0
        } else {
            self.config.rate_curve[self.segment % self.config.rate_curve.len()].multiplier
        }
    }

    /// Moves to the next rate-curve segment (cycling).
    fn advance_segment(&mut self) {
        let curve = &self.config.rate_curve;
        self.segment += 1;
        self.segment_end_ns += curve[self.segment % curve.len()].duration_s * 1e9;
    }

    /// Advances `t_ns` to the next arrival of a piecewise-constant-rate
    /// Poisson process (plain or Markov-modulated). Exact: the exponential
    /// is memoryless, so discarding a draw that crosses a rate boundary
    /// and re-sampling at the boundary preserves the process law.
    #[allow(clippy::unreachable)]
    fn next_memoryless_arrival(&mut self) {
        loop {
            let (rate_qps, state_end) = match &self.config.process {
                ArrivalProcess::Poisson { qps } => (*qps, f64::INFINITY),
                ArrivalProcess::Mmpp { states } => (states[self.state].qps, self.state_end_ns),
                // hyflex-lint: allow(E1) — dispatch invariant: next() routes
                // GammaBurst to next_gamma_arrival, so reaching this arm is a
                // bug in the stream itself and deserves a loud stop.
                ArrivalProcess::GammaBurst { .. } => unreachable!("gamma is not memoryless"),
            };
            let rate = rate_qps * self.multiplier();
            let boundary = state_end.min(self.segment_end_ns);
            let dt_ns = -(1.0 - self.rng.uniform()).ln() / rate * 1e9;
            if self.t_ns + dt_ns <= boundary {
                self.t_ns += dt_ns;
                return;
            }
            self.t_ns = boundary;
            if state_end <= self.segment_end_ns {
                // The MMPP dwell expired: cycle to the next state.
                if let ArrivalProcess::Mmpp { states } = &self.config.process {
                    self.state = (self.state + 1) % states.len();
                    let dwell = exponential(&mut self.rng, states[self.state].mean_dwell_s);
                    self.state_end_ns += dwell * 1e9;
                }
            } else {
                self.advance_segment();
            }
        }
    }

    /// Advances `t_ns` to the next arrival of the Gamma renewal process.
    fn next_gamma_arrival(&mut self, qps: f64, shape: f64) {
        // Mean inter-arrival 1/(qps · multiplier) seconds: Gamma(shape)
        // has mean `shape`, so scale by 1/(qps · shape).
        let scale_s = 1.0 / (qps * shape * self.multiplier());
        let dt_ns = gamma_sample(&mut self.rng, shape) * scale_s * 1e9;
        self.t_ns += dt_ns;
        while self.t_ns > self.segment_end_ns {
            self.advance_segment();
        }
    }

    /// The phase tag of an arrival at the current time.
    fn phase(&self) -> u8 {
        match &self.config.process {
            ArrivalProcess::Mmpp { .. } => self.state as u8,
            _ if !self.config.rate_curve.is_empty() => {
                (self.segment % self.config.rate_curve.len()) as u8
            }
            _ => 0,
        }
    }
}

impl Iterator for TrafficStream {
    type Item = InferenceRequest;

    fn next(&mut self) -> Option<InferenceRequest> {
        if self.emitted >= self.config.num_requests {
            return None;
        }
        match self.config.process.clone() {
            ArrivalProcess::GammaBurst { qps, shape } => self.next_gamma_arrival(qps, shape),
            _ => self.next_memoryless_arrival(),
        }
        // Class draw identical to the closed-loop generator: one extra
        // uniform per request when a mix is configured.
        let class = match self.config.classes.last() {
            None => RequestClass::new(self.config.seq_len, 1.0).with_slo_ns(self.config.slo_ns),
            Some(&fallback) => {
                let mut pick = self.rng.uniform() * self.total_class_weight;
                let mut chosen = fallback;
                for class in &self.config.classes {
                    if pick < class.weight {
                        chosen = *class;
                        break;
                    }
                    pick -= class.weight;
                }
                chosen
            }
        };
        let deadline_ns = if class.slo_ns.is_finite() {
            self.t_ns + class.slo_ns
        } else {
            f64::INFINITY
        };
        let id = self.emitted as u64;
        self.emitted += 1;
        Some(
            InferenceRequest::new(id, self.t_ns, class.seq_len)
                .with_deadline_ns(deadline_ns)
                .with_priority(class.priority)
                .with_phase(self.phase()),
        )
    }
}

/// Exponential sample with the given mean.
fn exponential(rng: &mut Rng, mean: f64) -> f64 {
    -(1.0 - rng.uniform()).ln() * mean
}

/// Gamma(shape, scale = 1) sample via Marsaglia–Tsang squeeze (with the
/// standard `U^{1/k}` boost for `shape < 1`). Deterministic for the RNG
/// stream, like every sampler in the workspace.
fn gamma_sample(rng: &mut Rng, shape: f64) -> f64 {
    if shape < 1.0 {
        let boost = loop {
            let u = rng.uniform();
            if u > 0.0 {
                break u.powf(1.0 / shape);
            }
        };
        return gamma_sample(rng, shape + 1.0) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (3.0 * d.sqrt());
    loop {
        let x = rng.normal();
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = rng.uniform();
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v3;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Splits `key=value` trace-file words into (key, number) pairs.
fn parse_fields<'a>(
    words: impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<Vec<(&'a str, f64)>> {
    words
        .map(|word| {
            let (key, value) = word.split_once('=').ok_or_else(|| {
                RuntimeError::InvalidConfig(format!(
                    "line {line}: expected `key=value`, got `{word}`"
                ))
            })?;
            let number = parse_number(value).ok_or_else(|| {
                RuntimeError::InvalidConfig(format!(
                    "line {line}: bad number `{value}` for `{key}`"
                ))
            })?;
            Ok((key, number))
        })
        .collect()
}

/// Looks up an optional field parsed by [`parse_fields`].
fn find_field(fields: &[(&str, f64)], key: &str) -> Option<f64> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

/// Looks up a required field parsed by [`parse_fields`].
fn take_field(fields: &[(&str, f64)], key: &str, line: usize) -> Result<f64> {
    find_field(fields, key)
        .ok_or_else(|| RuntimeError::InvalidConfig(format!("line {line}: missing `{key}=`")))
}

/// Parses a number, accepting `inf` for unbounded SLOs.
fn parse_number(value: &str) -> Option<f64> {
    if value == "inf" {
        return Some(f64::INFINITY);
    }
    value.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(process: ArrivalProcess, n: usize) -> RequestTrace {
        RequestTrace::new(TrafficConfig {
            process,
            num_requests: n,
            ..TrafficConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn trace_files_round_trip() {
        let text = "\
# fig21-style burst workload
process = mmpp
state = calm qps=2000 dwell_s=0.08   # trough
state = burst qps=20000 dwell_s=0.02
phase = warm duration_s=0.05 multiplier=1.0
phase = peak duration_s=0.05 multiplier=3.0
num_requests = 500
seq_len = 64
slo_ns = 2e6
class = seq_len=64 weight=3 slo_ns=2e6 priority=1
class = seq_len=256 weight=1
seed = 42
";
        let parsed = RequestTrace::parse(text).unwrap();
        let expected = RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Mmpp {
                states: vec![
                    MmppState::new("calm", 2000.0, 0.08),
                    MmppState::new("burst", 20000.0, 0.02),
                ],
            },
            rate_curve: vec![
                RatePhase::new("warm", 0.05, 1.0),
                RatePhase::new("peak", 0.05, 3.0),
            ],
            num_requests: 500,
            seq_len: 64,
            slo_ns: 2e6,
            classes: vec![
                RequestClass::new(64, 3.0).with_slo_ns(2e6).with_priority(1),
                RequestClass::new(256, 1.0),
            ],
            seed: 42,
        })
        .unwrap();
        assert_eq!(parsed, expected);

        let dir =
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-traces");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.trace");
        std::fs::write(&path, text).unwrap();
        assert_eq!(RequestTrace::from_file(&path).unwrap(), expected);

        // Unset keys keep the defaults.
        let sparse = RequestTrace::parse("process = poisson qps=250\n").unwrap();
        let default_poisson = RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Poisson { qps: 250.0 },
            ..TrafficConfig::default()
        })
        .unwrap();
        assert_eq!(sparse, default_poisson);
        let gamma = RequestTrace::parse("process = gamma qps=500 shape=0.25\n").unwrap();
        assert!((gamma.mean_qps() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn trace_parser_names_the_offending_line() {
        let err = |text: &str| RequestTrace::parse(text).unwrap_err().to_string();
        assert!(
            err("bogus = 1\n").contains("line 1"),
            "{}",
            err("bogus = 1\n")
        );
        assert!(err("bogus = 1\n").contains("bogus"));
        let no_eq = err("seed = 1\nseq_len\n");
        assert!(no_eq.contains("line 2"), "{no_eq}");
        let bad_number = err("seq_len = twelve\n");
        assert!(bad_number.contains("twelve"), "{bad_number}");
        let orphan_state = err("state = burst qps=100 dwell_s=0.1\n");
        assert!(orphan_state.contains("mmpp"), "{orphan_state}");
        let missing = err("process = gamma qps=100\n");
        assert!(missing.contains("shape"), "{missing}");
        let unknown = err("process = weibull qps=100\n");
        assert!(unknown.contains("weibull"), "{unknown}");
        // Validation still runs on parsed configs (mmpp with no states).
        assert!(RequestTrace::parse("process = mmpp\n").is_err());
        // Unreadable paths name the file.
        let gone = RequestTrace::from_file("/nonexistent/x.trace")
            .unwrap_err()
            .to_string();
        assert!(gone.contains("/nonexistent/x.trace"), "{gone}");
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        let bad = |config| RequestTrace::new(config).is_err();
        assert!(bad(TrafficConfig {
            num_requests: 0,
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            process: ArrivalProcess::Poisson { qps: 0.0 },
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            process: ArrivalProcess::Mmpp { states: vec![] },
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            process: ArrivalProcess::Mmpp {
                states: vec![MmppState::new("burst", -1.0, 1.0)],
            },
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            process: ArrivalProcess::Mmpp {
                states: vec![MmppState::new("burst", 100.0, 0.0)],
            },
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            process: ArrivalProcess::GammaBurst {
                qps: 100.0,
                shape: 0.0,
            },
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            rate_curve: vec![RatePhase::new("peak", 0.0, 1.0)],
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            rate_curve: vec![RatePhase::new("peak", 1.0, -0.5)],
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            classes: vec![RequestClass::new(64, 0.0)],
            ..TrafficConfig::default()
        }));
        assert!(bad(TrafficConfig {
            slo_ns: -1.0,
            ..TrafficConfig::default()
        }));
    }

    #[test]
    fn streams_are_sorted_sequential_and_deterministic() {
        let processes = [
            ArrivalProcess::Poisson { qps: 5000.0 },
            ArrivalProcess::Mmpp {
                states: vec![
                    MmppState::new("burst", 20_000.0, 0.02),
                    MmppState::new("trough", 2_000.0, 0.05),
                ],
            },
            ArrivalProcess::GammaBurst {
                qps: 5000.0,
                shape: 0.25,
            },
        ];
        for process in processes {
            let trace = trace(process, 2000);
            let a = trace.collect();
            assert_eq!(a.len(), 2000);
            for (index, request) in a.iter().enumerate() {
                assert_eq!(request.id, index as u64);
                assert!(request.arrival_ns.is_finite() && request.arrival_ns > 0.0);
            }
            assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
            // Bit-identical on re-stream.
            assert_eq!(a, trace.collect());
        }
    }

    #[test]
    fn poisson_trace_matches_the_closed_loop_generator_exactly() {
        // The open-loop Poisson trace and ServingSim's internal generator
        // must produce byte-identical streams (same seed, rate, and mix),
        // so replaying a Poisson trace reproduces closed-loop reports.
        use crate::serving::{ServingConfig, ServingSim};
        use hyflex_pim::backend::HyFlexPim;
        use hyflex_transformer::ModelConfig;

        let classes = vec![
            RequestClass::new(64, 3.0).with_slo_ns(2e6),
            RequestClass::new(256, 1.0).with_priority(1),
        ];
        let sim = ServingSim::with_backend(
            HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap(),
            ServingConfig {
                qps: 3000.0,
                num_requests: 500,
                classes: classes.clone(),
                seed: 99,
                ..ServingConfig::default()
            },
        )
        .unwrap();
        let trace = RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Poisson { qps: 3000.0 },
            num_requests: 500,
            classes,
            seed: 99,
            ..TrafficConfig::default()
        })
        .unwrap();
        assert_eq!(trace.collect(), sim.generate_arrivals());
        assert_eq!(sim.replay(&trace.collect()).unwrap(), sim.run().unwrap());
    }

    #[test]
    fn mmpp_tags_phases_and_bursts_beat_troughs() {
        let trace = trace(
            ArrivalProcess::Mmpp {
                states: vec![
                    MmppState::new("burst", 50_000.0, 0.01),
                    MmppState::new("trough", 1_000.0, 0.01),
                ],
            },
            4000,
        );
        assert_eq!(trace.phase_labels(), vec!["burst", "trough"]);
        let arrivals = trace.collect();
        let burst = arrivals.iter().filter(|r| r.phase == 0).count();
        let trough = arrivals.iter().filter(|r| r.phase == 1).count();
        assert_eq!(burst + trough, 4000);
        // Equal dwell, 50x the rate: the burst phase carries far more.
        assert!(burst > 10 * trough, "burst {burst} vs trough {trough}");
        // Mean rate is the dwell-weighted state mean.
        assert!((trace.mean_qps() - 25_500.0).abs() < 1e-9);
    }

    #[test]
    fn rate_curve_modulates_density_and_tags_segments() {
        let trace = RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Poisson { qps: 10_000.0 },
            rate_curve: vec![
                RatePhase::new("peak", 0.05, 3.0),
                RatePhase::new("off-peak", 0.05, 0.2),
            ],
            num_requests: 3000,
            ..TrafficConfig::default()
        })
        .unwrap();
        assert_eq!(trace.phase_labels(), vec!["peak", "off-peak"]);
        assert!((trace.mean_qps() - 16_000.0).abs() < 1e-9);
        let arrivals = trace.collect();
        let peak = arrivals.iter().filter(|r| r.phase == 0).count();
        let off = arrivals.iter().filter(|r| r.phase == 1).count();
        assert_eq!(peak + off, 3000);
        // 15x the instantaneous rate over equal spans.
        assert!(peak > 5 * off, "peak {peak} vs off-peak {off}");
        // Phase tags agree with the curve segment of the arrival time.
        for request in &arrivals {
            let cycle_s = (request.arrival_ns * 1e-9) % 0.1;
            let expected = if cycle_s < 0.05 { 0 } else { 1 };
            assert_eq!(
                request.phase,
                expected,
                "at {} s",
                request.arrival_ns * 1e-9
            );
        }
    }

    #[test]
    fn gamma_shape_controls_burstiness() {
        // Coefficient of variation of inter-arrival times: shape 0.2 is
        // far burstier than Poisson (CV 1), shape 16 far smoother.
        let cv = |shape: f64| {
            let arrivals = trace(ArrivalProcess::GammaBurst { qps: 1000.0, shape }, 5000).collect();
            let gaps: Vec<f64> = arrivals
                .windows(2)
                .map(|w| w[1].arrival_ns - w[0].arrival_ns)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            (var.sqrt() / mean, mean)
        };
        let (bursty_cv, bursty_mean) = cv(0.2);
        let (smooth_cv, smooth_mean) = cv(16.0);
        assert!(bursty_cv > 1.5, "shape 0.2 CV {bursty_cv}");
        assert!(smooth_cv < 0.5, "shape 16 CV {smooth_cv}");
        // Both hold the configured mean rate (1 ms mean gap) within 10 %.
        for mean in [bursty_mean, smooth_mean] {
            assert!((mean - 1e6).abs() < 1e5, "mean gap {mean} ns");
        }
    }

    #[test]
    fn streaming_is_constant_memory_by_construction() {
        // The stream yields without materializing: walking a million
        // arrivals touches only the iterator's fixed state. (The memory
        // property is structural — this test pins the contract that the
        // walk completes and stays sorted without a Vec.)
        let trace = RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Mmpp {
                states: vec![
                    MmppState::new("burst", 2e6, 0.005),
                    MmppState::new("trough", 4e5, 0.01),
                ],
            },
            num_requests: 1_000_000,
            ..TrafficConfig::default()
        })
        .unwrap();
        let mut last = 0.0f64;
        let mut count = 0usize;
        for request in trace.stream() {
            debug_assert!(request.arrival_ns >= last);
            last = request.arrival_ns;
            count += 1;
        }
        assert_eq!(count, 1_000_000);
        assert!(last > 0.0);
    }
}
