//! Batch-formation scheduling policies.
//!
//! [`BatchScheduler`](crate::batch::BatchScheduler) keeps its queue in
//! submission order and applies the configured [`SchedulingPolicy`] when it
//! *forms* a batch: the policy picks which queued request is admitted next,
//! and admission then proceeds greedily under the batch-size and
//! tile-capacity caps exactly as under FCFS. All three policies are
//! deterministic — ties always break by earlier arrival, then lower request
//! id — so a serving run is reproducible for a seed regardless of policy.
//!
//! * [`Fcfs`](SchedulingPolicy::Fcfs) — strict arrival order; the historical
//!   behavior and the default. The HyFlexPIM bit-identity contract applies
//!   to this policy.
//! * [`Edf`](SchedulingPolicy::Edf) — earliest deadline first against each
//!   request's absolute
//!   [`deadline_ns`](hyflex_pim::backend::InferenceRequest::deadline_ns);
//!   requests without a deadline (`f64::INFINITY`) sort last. Under
//!   overload this trades loose-SLO latency for tight-SLO attainment.
//! * [`Priority`](SchedulingPolicy::Priority) — strict priority classes
//!   (lower [`priority`](hyflex_pim::backend::InferenceRequest::priority)
//!   value first), FCFS within a class.

use hyflex_pim::backend::InferenceRequest;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Order in which queued requests are admitted into the next batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First come, first served (the historical behavior and the default).
    #[default]
    Fcfs,
    /// Earliest (absolute) deadline first; deadline-less requests sort last.
    Edf,
    /// Strict priority classes, lower value first; FCFS within a class.
    Priority,
}

impl SchedulingPolicy {
    /// Every policy, in display order (used by sweep binaries and tests).
    pub const ALL: [SchedulingPolicy; 3] = [
        SchedulingPolicy::Fcfs,
        SchedulingPolicy::Edf,
        SchedulingPolicy::Priority,
    ];

    /// Stable lower-case name (accepted back by [`SchedulingPolicy::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicy::Fcfs => "fcfs",
            SchedulingPolicy::Edf => "edf",
            SchedulingPolicy::Priority => "priority",
        }
    }

    /// Parses a policy name as accepted by the binaries' `--policy` flag.
    pub fn parse(name: &str) -> Option<SchedulingPolicy> {
        match name.to_ascii_lowercase().as_str() {
            "fcfs" => Some(SchedulingPolicy::Fcfs),
            "edf" => Some(SchedulingPolicy::Edf),
            "priority" | "prio" => Some(SchedulingPolicy::Priority),
            _ => None,
        }
    }

    /// Whether `a` is served strictly before `b` under this policy.
    ///
    /// Total and deterministic for any pair of valid requests: the final
    /// tie-breaks are arrival time, then the (unique) request id. Deadlines
    /// are compared as floats, with `f64::INFINITY` (no SLO) sorting last;
    /// NaN deadlines are rejected at submission, so the comparison is total.
    pub(crate) fn before(&self, a: &InferenceRequest, b: &InferenceRequest) -> bool {
        let tiebreak = |a: &InferenceRequest, b: &InferenceRequest| {
            (a.arrival_ns, a.id) < (b.arrival_ns, b.id)
        };
        match self {
            SchedulingPolicy::Fcfs => tiebreak(a, b),
            SchedulingPolicy::Edf => {
                if a.deadline_ns != b.deadline_ns {
                    a.deadline_ns < b.deadline_ns
                } else {
                    tiebreak(a, b)
                }
            }
            SchedulingPolicy::Priority => {
                if a.priority != b.priority {
                    a.priority < b.priority
                } else {
                    tiebreak(a, b)
                }
            }
        }
    }

    /// Index of the queued request this policy ranks *last* — the one every
    /// other queued request would be served before, and therefore the
    /// preemption victim when an admission gate must make room (see
    /// [`BatchScheduler::preempt_for`](crate::batch::BatchScheduler::preempt_for)).
    /// `None` for an empty queue. Deterministic through the same
    /// arrival-then-id tie-breaks as [`SchedulingPolicy::before`].
    pub(crate) fn victim_index(&self, queue: &VecDeque<InferenceRequest>) -> Option<usize> {
        let mut worst: Option<usize> = None;
        for (index, request) in queue.iter().enumerate() {
            if worst.is_none_or(|w| self.before(&queue[w], request)) {
                worst = Some(index);
            }
        }
        worst
    }
}

impl std::fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ns: f64) -> InferenceRequest {
        InferenceRequest::new(id, arrival_ns, 128)
    }

    #[test]
    fn names_round_trip_and_reject_unknowns() {
        for policy in SchedulingPolicy::ALL {
            assert_eq!(SchedulingPolicy::parse(policy.name()), Some(policy));
            assert_eq!(policy.to_string(), policy.name());
        }
        assert_eq!(SchedulingPolicy::parse("EDF"), Some(SchedulingPolicy::Edf));
        assert_eq!(SchedulingPolicy::parse("lifo"), None);
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::Fcfs);
    }

    #[test]
    fn fcfs_orders_by_arrival_then_id() {
        let p = SchedulingPolicy::Fcfs;
        assert!(p.before(&req(0, 1.0), &req(1, 2.0)));
        assert!(!p.before(&req(1, 2.0), &req(0, 1.0)));
        // Same arrival: the unique id breaks the tie.
        assert!(p.before(&req(0, 1.0), &req(1, 1.0)));
        // Deadlines and priorities are ignored.
        assert!(p.before(
            &req(0, 1.0).with_deadline_ns(9e9).with_priority(9),
            &req(1, 2.0).with_deadline_ns(1.0)
        ));
    }

    #[test]
    fn edf_prefers_tight_deadlines_and_sorts_slo_less_last() {
        let p = SchedulingPolicy::Edf;
        let tight = req(5, 10.0).with_deadline_ns(100.0);
        let loose = req(1, 1.0).with_deadline_ns(500.0);
        let none = req(0, 0.0);
        assert!(p.before(&tight, &loose));
        assert!(p.before(&loose, &none));
        assert!(p.before(&tight, &none));
        // Equal deadlines fall back to arrival order.
        let tight2 = req(7, 20.0).with_deadline_ns(100.0);
        assert!(p.before(&tight, &tight2));
    }

    #[test]
    fn victim_index_picks_the_policy_worst_request() {
        let mut queue: VecDeque<InferenceRequest> = VecDeque::new();
        assert_eq!(SchedulingPolicy::Fcfs.victim_index(&queue), None);
        queue.push_back(req(0, 5.0).with_deadline_ns(100.0));
        queue.push_back(req(1, 1.0)); // no deadline
        queue.push_back(req(2, 9.0).with_deadline_ns(50.0).with_priority(3));
        // FCFS: the latest arrival is served last.
        assert_eq!(SchedulingPolicy::Fcfs.victim_index(&queue), Some(2));
        // EDF: the deadline-less request sorts last.
        assert_eq!(SchedulingPolicy::Edf.victim_index(&queue), Some(1));
        // Priority: the highest priority value sorts last.
        assert_eq!(SchedulingPolicy::Priority.victim_index(&queue), Some(2));
    }

    #[test]
    fn priority_is_strict_with_fcfs_within_a_class() {
        let p = SchedulingPolicy::Priority;
        let urgent_late = req(9, 90.0).with_priority(0);
        let casual_early = req(1, 1.0).with_priority(3);
        assert!(p.before(&urgent_late, &casual_early));
        let urgent_early = req(2, 2.0).with_priority(0);
        assert!(p.before(&urgent_early, &urgent_late));
    }
}
