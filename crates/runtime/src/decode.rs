//! Autoregressive decode serving: KV cache on the SLC/MLC hybrid fabric
//! with continuous batching.
//!
//! The closed- and open-loop engines ([`crate::serving`], [`crate::overload`])
//! price a request as **one** batched pass — the encoder/prefill regime of
//! the paper's figures. Generative serving is different: after its prompt is
//! prefetched, a request produces output tokens one *iteration* at a time,
//! and every iteration attends over the request's cached K/V. On HyFlexPIM
//! that cache competes for the same RRAM real estate the weights live in,
//! and the SLC/MLC trade that Section 4 exploits for weights reappears for
//! the cache:
//!
//! * **SLC** takes one programming pulse per append (fast, cheap writes) but
//!   spends 8 cells per INT8 value — half the token capacity.
//! * **MLC2** packs the same value into 4 cells (double capacity) but every
//!   append needs 4 program-and-verify pulses — 4× the write latency on the
//!   decode critical path and 2× the write energy.
//!
//! [`KvPlacementPolicy`] maps the cache onto this fabric. The hybrid policy
//! is the recency analogue of the paper's gradient redistribution: the *hot*
//! tail of each sequence (the newest tokens, the ones every decode step was
//! just written against) stays in SLC, and a background demotion engine
//! migrates older tokens to MLC off the critical path — exactly how
//! `hyflex_pim::GradientRedistribution` keeps gradient-hot singular vectors
//! in SLC and relegates the cold mass to MLC.
//!
//! [`DecodeSim`] drives the system with **continuous (iteration-level)
//! batching**: requests join and leave the running batch at token
//! boundaries ([`BatchScheduler::admit_continuous`]), admission is bounded
//! by KV-cell capacity, and when optimistic admission overcommits the pool
//! (every admitted request grows by one token per iteration) the engine
//! evicts the least-progressed resident. Every request ends in exactly one
//! of three ways — completed, shed before prefill, or evicted mid-decode —
//! and the report's counters satisfy `admitted = completed + shed + evicted`
//! by construction (`tests/decode_property.rs` pins the invariant under
//! randomized traffic).

use crate::batch::{BatchScheduler, SchedulerConfig};
use crate::error::RuntimeError;
use crate::serving::{latency_summary, LatencySummary};
use crate::traffic::RequestTrace;
use crate::Result;
use hyflex_pim::backend::{Backend, InferenceRequest};
use hyflex_pim::perf::PerformanceModel;
use hyflex_pim::{kv_token_cost, HyFlexPimConfig, KvTokenCost};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Where a request's cached K/V rows live on the RRAM fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KvPlacementPolicy {
    /// Every token in SLC: single-pulse appends, half the token capacity.
    SlcOnly,
    /// Every token in MLC: double capacity, 4× append latency and 2× append
    /// energy on the decode critical path.
    MlcOnly,
    /// Appends land in SLC (single-pulse, on the critical path); once a
    /// sequence holds more than `hot_window` SLC tokens, the oldest are
    /// demoted to MLC by a background engine, off the critical path. The
    /// steady-state footprint is `hot_window` tokens at SLC density plus
    /// the cold prefix at MLC density.
    Hybrid {
        /// Newest tokens of each sequence kept at SLC density.
        hot_window: usize,
    },
}

impl KvPlacementPolicy {
    /// Display label used in report tables.
    pub fn label(&self) -> String {
        match self {
            KvPlacementPolicy::SlcOnly => "slc-only".to_string(),
            KvPlacementPolicy::MlcOnly => "mlc-only".to_string(),
            KvPlacementPolicy::Hybrid { hot_window } => format!("hybrid({hot_window})"),
        }
    }
}

/// Workload and placement policy of one decode-serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeConfig {
    /// KV placement policy.
    pub placement: KvPlacementPolicy,
    /// Output tokens every request generates after its prompt.
    pub output_tokens: usize,
    /// Most requests decoding concurrently (the continuous batch's width).
    pub max_batch_size: usize,
    /// Processing units whose analog arrays are provisioned as KV-cache
    /// pool; capacity is `kv_pus × analog_cells_per_pu()` cells.
    pub kv_pus: usize,
    /// Fraction of the KV pool admission may fill, in `(0, 1]`. Admission
    /// is optimistic about *generation* (it charges only the prompt), so
    /// the gap between this watermark and the pool is the headroom that
    /// absorbs decode growth between completions; filling to 1.0 turns
    /// every admission into a near-immediate eviction.
    pub admit_watermark: f64,
    /// Hardware constants the KV cost model reads (cells per value, write
    /// pulses). Defaults to the paper configuration.
    pub hw: HyFlexPimConfig,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        DecodeConfig {
            placement: KvPlacementPolicy::Hybrid { hot_window: 32 },
            output_tokens: 64,
            max_batch_size: 16,
            kv_pus: 8,
            admit_watermark: 0.9,
            hw: HyFlexPimConfig::paper_default(),
        }
    }
}

/// Outcome of one decode-serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeReport {
    /// Backend display name.
    pub backend: String,
    /// Placement policy label.
    pub placement: String,
    /// Requests the trace offered.
    pub offered: usize,
    /// Requests accepted into the engine (offered minus the shed ones whose
    /// prompt alone could never fit the KV pool).
    pub admitted: usize,
    /// Requests that generated every output token.
    pub completed: usize,
    /// Requests dropped before prefill (prompt KV exceeds the whole pool).
    pub shed: usize,
    /// Requests evicted mid-decode when the KV pool overcommitted.
    pub evicted: usize,
    /// Output tokens decoded across the run (completed and evicted work).
    pub decoded_tokens: usize,
    /// Wall-clock span from first arrival to last completion, seconds.
    pub sim_seconds: f64,
    /// Completed requests per simulated second.
    pub goodput_rps: f64,
    /// Decoded tokens per simulated second.
    pub tokens_per_s: f64,
    /// Time-per-output-token distribution over every decoded token
    /// (iteration compute plus the policy's critical-path KV append);
    /// `tpot_ms` carries the mean.
    pub tpot: LatencySummary,
    /// Arrival-to-completion latency distribution over completed requests.
    pub request_latency: LatencySummary,
    /// Total energy, pJ: compute plus KV programming.
    pub total_energy_pj: f64,
    /// KV programming energy, pJ (appends, prefill writes, demotions).
    pub kv_write_pj: f64,
    /// Energy per decoded token, pJ.
    pub energy_per_token_pj: f64,
    /// Tokens written at SLC density (appends and prefill).
    pub slc_tokens_written: usize,
    /// Tokens written at MLC density (direct appends and demotions).
    pub mlc_tokens_written: usize,
    /// Tokens migrated SLC → MLC by the background demotion engine.
    pub demoted_tokens: usize,
    /// Most KV cells resident at once.
    pub peak_kv_cells: usize,
    /// KV pool capacity, cells.
    pub kv_capacity_cells: usize,
}

/// One resident (admitted, still decoding) request.
#[derive(Debug, Clone)]
struct Resident {
    request: InferenceRequest,
    /// Tokens cached at SLC density.
    slc_tokens: usize,
    /// Tokens cached at MLC density.
    mlc_tokens: usize,
    /// Output tokens decoded so far.
    decoded: usize,
}

impl Resident {
    fn context_len(&self) -> usize {
        self.slc_tokens + self.mlc_tokens
    }

    fn cells(&self, kv: &KvTokenCost) -> usize {
        self.slc_tokens * kv.slc_cells + self.mlc_tokens * kv.mlc_cells
    }
}

/// Deterministic continuous-batching decode-serving simulator.
///
/// Virtual-time model: the engine runs one *iteration* at a time. At each
/// token boundary it admits waiting requests (KV-capacity-bounded, policy
/// order), prefills them (batched compute plus prompt KV programming),
/// evicts residents if the pool overcommitted, then prices one decode
/// iteration for the whole batch ([`Backend::evaluate_decode_step`] at the
/// batch's longest context) plus the placement policy's critical-path
/// append. Identical inputs produce bit-identical reports.
#[derive(Debug, Clone)]
pub struct DecodeSim {
    backend: Arc<dyn Backend>,
    trace: RequestTrace,
    config: DecodeConfig,
    kv: KvTokenCost,
    capacity_cells: usize,
}

impl DecodeSim {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for a zero output length,
    /// batch width, KV pool, or hybrid hot window, and propagates hardware
    /// validation errors.
    pub fn new(
        backend: Arc<dyn Backend>,
        trace: RequestTrace,
        config: DecodeConfig,
    ) -> Result<Self> {
        if config.output_tokens == 0 {
            return Err(RuntimeError::InvalidConfig(
                "output_tokens must be at least 1".to_string(),
            ));
        }
        if config.max_batch_size == 0 {
            return Err(RuntimeError::InvalidConfig(
                "max_batch_size must be at least 1".to_string(),
            ));
        }
        if config.kv_pus == 0 {
            return Err(RuntimeError::InvalidConfig(
                "kv_pus must be at least 1".to_string(),
            ));
        }
        if let KvPlacementPolicy::Hybrid { hot_window } = config.placement {
            if hot_window == 0 {
                return Err(RuntimeError::InvalidConfig(
                    "hybrid hot_window must be at least 1".to_string(),
                ));
            }
        }
        if !(config.admit_watermark > 0.0 && config.admit_watermark <= 1.0) {
            return Err(RuntimeError::InvalidConfig(format!(
                "admit_watermark {} must be in (0, 1]",
                config.admit_watermark
            )));
        }
        // The KV cost model shares the perf model's calibrated energy table.
        let perf = PerformanceModel::new(config.hw)?;
        let kv = kv_token_cost(backend.model(), perf.hw(), perf.energy_model())?;
        let capacity_cells = config.kv_pus * config.hw.analog_cells_per_pu();
        Ok(DecodeSim {
            backend,
            trace,
            config,
            kv,
            capacity_cells,
        })
    }

    /// KV pool capacity, cells.
    pub fn capacity_cells(&self) -> usize {
        self.capacity_cells
    }

    /// Cells a prompt of `tokens` occupies at its steady-state placement.
    fn prompt_cells(&self, tokens: usize) -> usize {
        match self.config.placement {
            KvPlacementPolicy::SlcOnly => tokens * self.kv.slc_cells,
            KvPlacementPolicy::MlcOnly => tokens * self.kv.mlc_cells,
            KvPlacementPolicy::Hybrid { hot_window } => {
                let hot = tokens.min(hot_window);
                hot * self.kv.slc_cells + (tokens - hot) * self.kv.mlc_cells
            }
        }
    }

    /// Critical-path latency of appending one token per resident, ns. All
    /// residents program their own arrays concurrently, so the batch pays
    /// one write, not `B`.
    fn append_latency_ns(&self) -> f64 {
        match self.config.placement {
            KvPlacementPolicy::MlcOnly => self.kv.mlc_write_ns,
            _ => self.kv.slc_write_ns,
        }
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates backend evaluation errors.
    pub fn run(&self) -> Result<DecodeReport> {
        let arrivals: Vec<InferenceRequest> = self.trace.collect();
        let offered = arrivals.len();
        let mut queue = BatchScheduler::for_backend(
            Arc::clone(&self.backend),
            SchedulerConfig {
                max_batch_size: self.config.max_batch_size,
                max_wait_ns: 0.0,
                ..SchedulerConfig::default()
            },
        )?;
        let mut residents: Vec<Resident> = Vec::new();
        let mut next_arrival = 0usize;
        let mut now_ns = 0.0f64;
        let mut admitted = 0usize;
        let mut completed = 0usize;
        let mut shed = 0usize;
        let mut evicted = 0usize;
        let mut decoded_tokens = 0usize;
        let mut demoted_tokens = 0usize;
        let mut slc_tokens_written = 0usize;
        let mut mlc_tokens_written = 0usize;
        let mut kv_write_pj = 0.0f64;
        let mut compute_pj = 0.0f64;
        let mut peak_kv_cells = 0usize;
        let mut tpot_ns: Vec<f64> = Vec::new();
        let mut request_latency_ns: Vec<f64> = Vec::new();
        let mut first_arrival_ns = f64::NAN;
        let mut last_completion_ns = 0.0f64;

        while next_arrival < arrivals.len() || queue.queue_len() > 0 || !residents.is_empty() {
            // Idle engine: jump to the next arrival.
            if residents.is_empty() && queue.queue_len() == 0 {
                now_ns = now_ns.max(arrivals[next_arrival].arrival_ns);
            }
            // Feed arrivals at or before the current token boundary; a
            // prompt that could never fit the empty pool is shed outright.
            while next_arrival < arrivals.len() && arrivals[next_arrival].arrival_ns <= now_ns {
                let request = arrivals[next_arrival];
                next_arrival += 1;
                if first_arrival_ns.is_nan() {
                    first_arrival_ns = request.arrival_ns;
                }
                if self.prompt_cells(request.seq_len + self.config.output_tokens)
                    > self.capacity_cells
                {
                    shed += 1;
                    continue;
                }
                admitted += 1;
                queue.submit(request)?;
            }
            // Token boundary: waiting requests join the running batch while
            // batch width and (optimistically: prompt-only) KV capacity
            // allow.
            let mut used: usize = residents.iter().map(|r| r.cells(&self.kv)).sum();
            let slots = self.config.max_batch_size - residents.len();
            let watermark =
                (self.config.admit_watermark * self.capacity_cells as f64).floor() as usize;
            let joined = queue.admit_continuous(slots, |request| {
                let cells = self.prompt_cells(request.seq_len);
                if used + cells <= watermark {
                    used += cells;
                    true
                } else {
                    false
                }
            });
            if !joined.is_empty() {
                now_ns +=
                    self.prefill(&joined, &mut residents, &mut kv_write_pj, &mut compute_pj)?;
                slc_tokens_written += joined
                    .iter()
                    .map(|r| match self.config.placement {
                        KvPlacementPolicy::MlcOnly => 0,
                        _ => r.seq_len,
                    })
                    .sum::<usize>();
                mlc_tokens_written += joined
                    .iter()
                    .map(|r| match self.config.placement {
                        KvPlacementPolicy::SlcOnly => 0,
                        KvPlacementPolicy::MlcOnly => r.seq_len,
                        KvPlacementPolicy::Hybrid { hot_window } => {
                            r.seq_len.saturating_sub(hot_window)
                        }
                    })
                    .sum::<usize>();
                demoted_tokens += joined
                    .iter()
                    .map(|r| match self.config.placement {
                        KvPlacementPolicy::Hybrid { hot_window } => {
                            r.seq_len.saturating_sub(hot_window)
                        }
                        _ => 0,
                    })
                    .sum::<usize>();
            }
            if residents.is_empty() {
                // Nothing joined (capacity-blocked queue drains only as
                // residents leave — impossible with an empty batch — or the
                // queue is empty and the next arrival is in the future).
                continue;
            }
            // Every resident grows one token this iteration: when optimistic
            // admission overcommitted the pool, evict the least-progressed
            // resident (least decoded work lost; ties break toward the
            // youngest arrival) until the pool holds.
            let mut projected: usize = residents
                .iter()
                .map(|r| r.cells(&self.kv) + self.append_cells())
                .sum();
            while projected > self.capacity_cells && !residents.is_empty() {
                let Some(victim) = residents
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| (r.decoded, std::cmp::Reverse(r.request.id)))
                    .map(|(index, _)| index)
                else {
                    break;
                };
                let gone = residents.remove(victim);
                projected -= gone.cells(&self.kv) + self.append_cells();
                evicted += 1;
            }
            // One decode iteration for the whole batch, priced at the
            // longest resident context (the executed shape). The max is
            // `None` exactly when no resident survived eviction.
            let Some(longest) = residents.iter().map(Resident::context_len).max() else {
                continue;
            };
            let context = longest + 1;
            let step = self
                .backend
                .evaluate_decode_step(context, residents.len())?;
            let iteration_ns = step.makespan_ns + self.append_latency_ns();
            now_ns += iteration_ns;
            compute_pj += step.energy_per_request_pj * residents.len() as f64;
            // Append one token per resident and run the demotion engine.
            let (append_pj, append_slc) = match self.config.placement {
                KvPlacementPolicy::MlcOnly => (self.kv.mlc_write_pj, false),
                _ => (self.kv.slc_write_pj, true),
            };
            for resident in &mut residents {
                if append_slc {
                    resident.slc_tokens += 1;
                    slc_tokens_written += 1;
                } else {
                    resident.mlc_tokens += 1;
                    mlc_tokens_written += 1;
                }
                kv_write_pj += append_pj;
                if let KvPlacementPolicy::Hybrid { hot_window } = self.config.placement {
                    while resident.slc_tokens > hot_window {
                        resident.slc_tokens -= 1;
                        resident.mlc_tokens += 1;
                        demoted_tokens += 1;
                        mlc_tokens_written += 1;
                        kv_write_pj += self.kv.mlc_write_pj;
                    }
                }
                resident.decoded += 1;
                decoded_tokens += 1;
                tpot_ns.push(iteration_ns);
            }
            peak_kv_cells =
                peak_kv_cells.max(residents.iter().map(|r| r.cells(&self.kv)).sum::<usize>());
            // Leave at the token boundary.
            residents.retain(|resident| {
                if resident.decoded >= self.config.output_tokens {
                    completed += 1;
                    request_latency_ns.push(now_ns - resident.request.arrival_ns);
                    last_completion_ns = last_completion_ns.max(now_ns);
                    false
                } else {
                    true
                }
            });
        }

        let sim_seconds = if first_arrival_ns.is_nan() {
            0.0
        } else {
            ((last_completion_ns - first_arrival_ns) * 1e-9).max(0.0)
        };
        let mean_tpot_ms = if tpot_ns.is_empty() {
            None
        } else {
            Some(tpot_ns.iter().sum::<f64>() / tpot_ns.len() as f64 / 1e6)
        };
        let mut tpot = latency_summary(tpot_ns);
        tpot.tpot_ms = mean_tpot_ms;
        let request_latency = latency_summary(request_latency_ns);
        let total_energy_pj = compute_pj + kv_write_pj;
        Ok(DecodeReport {
            backend: self.backend.name().to_string(),
            placement: self.config.placement.label(),
            offered,
            admitted,
            completed,
            shed,
            evicted,
            decoded_tokens,
            sim_seconds,
            goodput_rps: if sim_seconds > 0.0 {
                completed as f64 / sim_seconds
            } else {
                0.0
            },
            tokens_per_s: if sim_seconds > 0.0 {
                decoded_tokens as f64 / sim_seconds
            } else {
                0.0
            },
            tpot,
            request_latency,
            total_energy_pj,
            kv_write_pj,
            energy_per_token_pj: if decoded_tokens > 0 {
                total_energy_pj / decoded_tokens as f64
            } else {
                0.0
            },
            slc_tokens_written,
            mlc_tokens_written,
            demoted_tokens,
            peak_kv_cells,
            kv_capacity_cells: self.capacity_cells,
        })
    }

    /// Cells one append adds before any demotion rebalancing.
    fn append_cells(&self) -> usize {
        match self.config.placement {
            KvPlacementPolicy::MlcOnly => self.kv.mlc_cells,
            _ => self.kv.slc_cells,
        }
    }

    /// Prefills newly joined requests: batched compute at the longest
    /// prompt plus prompt KV programming (the SLC-staged portion on the
    /// critical path; hybrid's direct-to-MLC cold prefix is programmed by
    /// the background engine). Returns the critical-path latency and
    /// registers the new residents.
    fn prefill(
        &self,
        joined: &[InferenceRequest],
        residents: &mut Vec<Resident>,
        kv_write_pj: &mut f64,
        compute_pj: &mut f64,
    ) -> Result<f64> {
        let max_prompt = joined.iter().map(|r| r.seq_len).max().ok_or_else(|| {
            RuntimeError::Internal("prefill called with no joined requests".to_string())
        })?;
        let batch = self.backend.evaluate_batched(max_prompt, joined.len())?;
        *compute_pj += batch.energy_per_request_pj * joined.len() as f64;
        let mut critical_write_ns = 0.0f64;
        for request in joined {
            let tokens = request.seq_len;
            let (slc_tokens, mlc_tokens) = match self.config.placement {
                KvPlacementPolicy::SlcOnly => (tokens, 0),
                KvPlacementPolicy::MlcOnly => (0, tokens),
                KvPlacementPolicy::Hybrid { hot_window } => {
                    let hot = tokens.min(hot_window);
                    (hot, tokens - hot)
                }
            };
            *kv_write_pj +=
                slc_tokens as f64 * self.kv.slc_write_pj + mlc_tokens as f64 * self.kv.mlc_write_pj;
            // Prompts program token rows concurrently across requests; the
            // batch pays the slowest request's critical-path writes.
            let request_write_ns = match self.config.placement {
                KvPlacementPolicy::SlcOnly => tokens as f64 * self.kv.slc_write_ns,
                KvPlacementPolicy::MlcOnly => tokens as f64 * self.kv.mlc_write_ns,
                // Hybrid stages the hot tail through SLC on the critical
                // path; the cold prefix goes to MLC in the background.
                KvPlacementPolicy::Hybrid { hot_window } => {
                    tokens.min(hot_window) as f64 * self.kv.slc_write_ns
                }
            };
            critical_write_ns = critical_write_ns.max(request_write_ns);
            residents.push(Resident {
                request: *request,
                slc_tokens,
                mlc_tokens,
                decoded: 0,
            });
        }
        Ok(batch.makespan_ns + critical_write_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{ArrivalProcess, TrafficConfig};
    use hyflex_pim::backend::HyFlexPim;
    use hyflex_transformer::ModelConfig;

    fn backend() -> Arc<dyn Backend> {
        Arc::new(HyFlexPim::paper(ModelConfig::bert_large(), 0.05).unwrap())
    }

    fn trace(qps: f64, n: usize, seq_len: usize) -> RequestTrace {
        RequestTrace::new(TrafficConfig {
            process: ArrivalProcess::Poisson { qps },
            num_requests: n,
            seq_len,
            ..TrafficConfig::default()
        })
        .unwrap()
    }

    fn sim(placement: KvPlacementPolicy, qps: f64, n: usize) -> DecodeSim {
        DecodeSim::new(
            backend(),
            trace(qps, n, 128),
            DecodeConfig {
                placement,
                output_tokens: 32,
                kv_pus: 4,
                ..DecodeConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        let bad = |config: DecodeConfig| {
            DecodeSim::new(backend(), trace(100.0, 10, 128), config).is_err()
        };
        assert!(bad(DecodeConfig {
            output_tokens: 0,
            ..DecodeConfig::default()
        }));
        assert!(bad(DecodeConfig {
            max_batch_size: 0,
            ..DecodeConfig::default()
        }));
        assert!(bad(DecodeConfig {
            kv_pus: 0,
            ..DecodeConfig::default()
        }));
        assert!(bad(DecodeConfig {
            placement: KvPlacementPolicy::Hybrid { hot_window: 0 },
            ..DecodeConfig::default()
        }));
    }

    #[test]
    fn unloaded_run_completes_everything_and_conserves_requests() {
        for placement in [
            KvPlacementPolicy::SlcOnly,
            KvPlacementPolicy::MlcOnly,
            KvPlacementPolicy::Hybrid { hot_window: 32 },
        ] {
            let report = sim(placement, 50.0, 40).run().unwrap();
            assert_eq!(report.offered, 40);
            assert_eq!(report.admitted, 40, "{}", report.placement);
            assert_eq!(report.completed, 40, "{}", report.placement);
            assert_eq!(report.shed, 0);
            assert_eq!(report.evicted, 0);
            assert_eq!(report.decoded_tokens, 40 * 32);
            assert_eq!(
                report.admitted,
                report.completed + report.evicted,
                "conservation"
            );
            assert!(report.tpot.tpot_ms.unwrap() > 0.0);
            assert!(report.peak_kv_cells <= report.kv_capacity_cells);
            assert!(report.total_energy_pj > 0.0);
        }
    }

    #[test]
    fn runs_are_bit_identical_per_seed() {
        let a = sim(KvPlacementPolicy::Hybrid { hot_window: 16 }, 4000.0, 120)
            .run()
            .unwrap();
        let b = sim(KvPlacementPolicy::Hybrid { hot_window: 16 }, 4000.0, 120)
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hybrid_beats_the_extremes_on_their_weak_axes() {
        // Overload the pool so capacity pressure is real.
        let run = |placement| sim(placement, 20_000.0, 150).run().unwrap();
        let slc = run(KvPlacementPolicy::SlcOnly);
        let mlc = run(KvPlacementPolicy::MlcOnly);
        let hybrid = run(KvPlacementPolicy::Hybrid { hot_window: 16 });
        // SLC-only burns capacity: hybrid loses fewer requests to eviction.
        assert!(
            hybrid.evicted < slc.evicted,
            "hybrid {} vs slc-only {}",
            hybrid.evicted,
            slc.evicted
        );
        // MLC-only pays 4 program-and-verify pulses per append on the
        // critical path: hybrid decodes tokens faster.
        assert!(
            hybrid.tpot.tpot_ms.unwrap() < mlc.tpot.tpot_ms.unwrap(),
            "hybrid {:?} vs mlc-only {:?}",
            hybrid.tpot.tpot_ms,
            mlc.tpot.tpot_ms
        );
        // Demotion traffic exists only under the hybrid policy.
        assert!(hybrid.demoted_tokens > 0);
        assert_eq!(slc.demoted_tokens, 0);
        assert_eq!(mlc.demoted_tokens, 0);
        // Conservation under pressure.
        for report in [&slc, &mlc, &hybrid] {
            assert_eq!(
                report.admitted,
                report.completed + report.evicted,
                "{}",
                report.placement
            );
            assert_eq!(report.offered, report.admitted + report.shed);
        }
    }

    #[test]
    fn oversized_prompts_are_shed_not_wedged() {
        let report = DecodeSim::new(
            backend(),
            trace(100.0, 5, 2048),
            DecodeConfig {
                kv_pus: 1,
                output_tokens: 4,
                ..DecodeConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(report.shed, 5);
        assert_eq!(report.admitted, 0);
        assert_eq!(report.completed, 0);
    }
}
