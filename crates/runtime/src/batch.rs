//! Batched-inference scheduling onto a backend's layer tiles.
//!
//! Static weights stay resident in the device (for HyFlexPIM, the analog
//! crossbar banks), so a batch of requests shares one weight read-out
//! schedule; what each extra request consumes is **tile capacity** — the
//! per-layer dynamic data (Q, K, V, attention scores, FFN intermediate) must
//! all be resident in the layer's buffers while the batch is in flight.
//! [`BatchScheduler`] therefore admits requests into a batch until either
//! the configured batch-size cap or the backend's cell capacity would be
//! exceeded. The *order* of admission is the configured
//! [`SchedulingPolicy`] — FCFS (the default), earliest-deadline-first, or
//! strict priority classes — while the caps are policy-independent. The
//! scheduler is generic over the device: any [`Backend`] supplies its
//! per-tile budget ([`Backend::capacity`]) and the per-request footprint
//! ([`Backend::request_cells`]).

use crate::error::RuntimeError;
use crate::policy::SchedulingPolicy;
use crate::Result;
use hyflex_pim::backend::{Backend, HyFlexPim};
use hyflex_pim::perf::PerformanceModel;
use hyflex_pim::HyFlexPimConfig;
use hyflex_transformer::ModelConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

pub use hyflex_pim::backend::InferenceRequest;

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum number of requests per batch.
    pub max_batch_size: usize,
    /// How long a non-full batch may wait for more arrivals before
    /// launching, nanoseconds. `0` disables the window.
    ///
    /// The serving simulators give the window these semantics:
    ///
    /// * **Anchored at the oldest queued arrival.** The window deadline is
    ///   `max(ready, oldest_arrival + max_wait_ns)` where `ready` is when
    ///   the device could launch (`max(device_free, oldest_arrival)`). A
    ///   request that already waited out the window while the device was
    ///   busy launches the moment the device frees — a saturated device
    ///   never adds window delay.
    /// * **Non-clairvoyant.** A non-full batch launches at
    ///   `min(deadline, fill time)` — equivalently it waits
    ///   `min(max_wait_ns, time-to-fill)` past `ready` — judged only from
    ///   arrivals at or before "now". The timer never peeks at future
    ///   arrivals: the final batch of a run waits out its window exactly
    ///   like a mid-run batch whose next arrival lies beyond the deadline.
    /// * **Fill target from queue contents.** "Full" is judged against the
    ///   requests actually queued ([`BatchScheduler::fill_time_ns`]):
    ///   the batch-size cap, or the tile capacity at the queue's padded
    ///   (max-sequence) execution shape, whichever binds first.
    pub max_wait_ns: f64,
    /// Processing units provisioned per layer pipeline stage; scales the
    /// tile capacity available to one batch.
    pub pus_per_layer: usize,
    /// Order in which queued requests are admitted into a batch.
    pub policy: SchedulingPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch_size: 16,
            max_wait_ns: 2e6, // 2 ms batching window
            pus_per_layer: 1,
            policy: SchedulingPolicy::Fcfs,
        }
    }
}

/// A group of requests admitted for one pipelined execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Admitted requests in FCFS order.
    pub requests: Vec<InferenceRequest>,
    /// Tile cells the batch occupies in one layer tile, with every request
    /// padded to the batch's longest sequence (the executed shape).
    pub cells_used: usize,
    /// Longest sequence in the batch (the execution shape).
    pub max_seq_len: usize,
}

impl Batch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Tokens actually present across the batch's requests.
    pub fn actual_token_count(&self) -> usize {
        self.requests.iter().map(|r| r.seq_len).sum()
    }

    /// Tokens the padded execution shape processes: every request padded to
    /// the batch's longest sequence.
    pub fn padded_token_count(&self) -> usize {
        self.len() * self.max_seq_len
    }

    /// Fraction of the padded execution shape that is padding (`0.0` for a
    /// uniform or empty batch). The functional model's packed batching
    /// (`AttentionMask::Packed` in `hyflex-transformer`) executes exactly
    /// [`Batch::actual_token_count`] rows instead, so this is the token
    /// fraction packing recovers.
    pub fn padding_waste(&self) -> f64 {
        let padded = self.padded_token_count();
        if padded == 0 {
            return 0.0;
        }
        1.0 - self.actual_token_count() as f64 / padded as f64
    }
}

/// FCFS batch former bounded by batch size and the backend's tile capacity.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    config: SchedulerConfig,
    backend: Arc<dyn Backend>,
    capacity_cells: usize,
    queue: VecDeque<InferenceRequest>,
}

impl BatchScheduler {
    /// Builds a scheduler for `model` served on the HyFlexPIM hardware `hw`
    /// (the historical constructor, kept as sugar over
    /// [`BatchScheduler::for_backend`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for a zero batch size or zero
    /// PUs per layer, and propagates hardware-configuration errors.
    pub fn new(hw: HyFlexPimConfig, model: ModelConfig, config: SchedulerConfig) -> Result<Self> {
        // Capacity accounting is independent of the SLC rate; bind at 0.
        let backend = HyFlexPim::new(PerformanceModel::new(hw)?, model, 0.0)?;
        BatchScheduler::for_backend(Arc::new(backend), config)
    }

    /// Builds a scheduler admitting requests against `backend`'s tile
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for a zero batch size, zero
    /// PUs per layer, or a negative/NaN batching window.
    pub fn for_backend(backend: Arc<dyn Backend>, config: SchedulerConfig) -> Result<Self> {
        if config.max_batch_size == 0 {
            return Err(RuntimeError::InvalidConfig(
                "max_batch_size must be at least 1".to_string(),
            ));
        }
        if config.pus_per_layer == 0 {
            return Err(RuntimeError::InvalidConfig(
                "pus_per_layer must be at least 1".to_string(),
            ));
        }
        if config.max_wait_ns.is_nan() || config.max_wait_ns < 0.0 {
            return Err(RuntimeError::InvalidConfig(format!(
                "max_wait_ns {} must be non-negative",
                config.max_wait_ns
            )));
        }
        let capacity_cells = config.pus_per_layer * backend.capacity();
        Ok(BatchScheduler {
            config,
            backend,
            capacity_cells,
            queue: VecDeque::new(),
        })
    }

    /// The batching policy.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Tile-cell capacity of one layer tile (the per-batch budget).
    pub fn capacity_cells(&self) -> usize {
        self.capacity_cells
    }

    /// Tile cells one request of length `seq_len` occupies per layer tile.
    pub fn request_cells(&self, seq_len: usize) -> usize {
        self.backend.request_cells(seq_len)
    }

    /// Number of queued requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Arrival time of the oldest queued request, if any (the minimum over
    /// the queue; robust to out-of-submission-order arrival times).
    pub fn oldest_arrival_ns(&self) -> Option<f64> {
        self.queue
            .iter()
            .map(|r| r.arrival_ns)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Arrival time of the front-of-queue (first-submitted still-queued)
    /// request, if any. O(1) companion to
    /// [`BatchScheduler::oldest_arrival_ns`] for engines that submit in
    /// non-decreasing arrival order: batch formation removes requests
    /// without reordering the queue, so under sorted submission the front
    /// request *is* the oldest and the two accessors agree.
    pub fn front_arrival_ns(&self) -> Option<f64> {
        self.queue.front().map(|r| r.arrival_ns)
    }

    /// Deadline-aware load shedding: removes and returns every queued
    /// request that can no longer meet its deadline, judged against the
    /// earliest possible completion `horizon_ns +
    /// service_estimate_ns(seq_len)`. `horizon_ns` is the earliest the
    /// next batch could launch (for a busy device, when it frees);
    /// `service_estimate_ns` is the device's *single-request* makespan for
    /// the given sequence length — an optimistic bound, so only requests
    /// that would miss even an immediate solo launch are shed. Requests
    /// without a deadline (`f64::INFINITY`) are never shed. Relative queue
    /// order of survivors is preserved.
    pub fn shed_doomed(
        &mut self,
        horizon_ns: f64,
        mut service_estimate_ns: impl FnMut(usize) -> f64,
    ) -> Vec<InferenceRequest> {
        let doomed = |r: &InferenceRequest, estimate: &mut dyn FnMut(usize) -> f64| {
            r.deadline_ns.is_finite() && r.deadline_ns < horizon_ns + estimate(r.seq_len)
        };
        // Fast path: the common launch has nothing to shed — avoid
        // rebuilding the queue on every batch formation.
        if !self
            .queue
            .iter()
            .any(|r| doomed(r, &mut service_estimate_ns))
        {
            return Vec::new();
        }
        let mut shed = Vec::new();
        let mut kept = VecDeque::with_capacity(self.queue.len());
        for request in self.queue.drain(..) {
            if doomed(&request, &mut service_estimate_ns) {
                shed.push(request);
            } else {
                kept.push_back(request);
            }
        }
        self.queue = kept;
        shed
    }

    /// Preemption hook for bounded-queue admission: if `incoming` is
    /// strictly more urgent (in [`SchedulingPolicy`] order) than the
    /// least-urgent queued request, evicts and returns that victim so the
    /// caller can admit `incoming` in its place; otherwise leaves the queue
    /// untouched and returns `None`. Under FCFS the incoming request (the
    /// latest arrival) is never more urgent than any queued one, so FCFS
    /// never preempts — preemption is meaningful for EDF (a tight-deadline
    /// newcomer displaces a deadline-less request) and priority classes.
    pub fn preempt_for(&mut self, incoming: &InferenceRequest) -> Option<InferenceRequest> {
        let policy = self.config.policy;
        let victim = policy.victim_index(&self.queue)?;
        if policy.before(incoming, &self.queue[victim]) {
            self.queue.remove(victim)
        } else {
            None
        }
    }

    /// The earliest time at which the queue held a "full" batch, or `None`
    /// if it never has: scanning queued requests in submission order, the
    /// first request at which the running count reaches the batch-fill
    /// target — `min(max_batch_size, capacity / request_cells(max seq so
    /// far))`, i.e. the target implied by the queue's actual padded
    /// execution shape, not by any nominal request shape. Because the
    /// running max sequence only grows, the target only shrinks, so the
    /// scan is exact and exits after at most `max_batch_size` requests.
    ///
    /// The serving simulators use this as the batching window's fill
    /// signal: a non-full batch (`None`) waits out the window, a full one
    /// launches at `max(ready, fill_time)`.
    pub fn fill_time_ns(&self) -> Option<f64> {
        let mut max_seq_len = 0usize;
        let mut fill_time = f64::NEG_INFINITY;
        for (index, request) in self.queue.iter().enumerate() {
            max_seq_len = max_seq_len.max(request.seq_len);
            fill_time = fill_time.max(request.arrival_ns);
            let capacity_batch = (self.capacity_cells / self.request_cells(max_seq_len)).max(1);
            let target = self.config.max_batch_size.min(capacity_batch);
            if index + 1 >= target {
                return Some(fill_time);
            }
        }
        None
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::CapacityExceeded`] when the request alone
    /// would not fit one layer tile, and [`RuntimeError::InvalidConfig`] for
    /// an empty sequence. (Sequence lengths beyond the model's training MSL
    /// are allowed: like the perf model's figure sweeps, the scheduler
    /// treats `seq_len` as an analytic shape.)
    pub fn submit(&mut self, request: InferenceRequest) -> Result<()> {
        if request.seq_len == 0 {
            return Err(RuntimeError::InvalidConfig(format!(
                "request {} has an empty sequence",
                request.id
            )));
        }
        if request.arrival_ns.is_nan() {
            return Err(RuntimeError::InvalidConfig(format!(
                "request {} has a NaN arrival time",
                request.id
            )));
        }
        if request.deadline_ns.is_nan() {
            return Err(RuntimeError::InvalidConfig(format!(
                "request {} has a NaN deadline (use f64::INFINITY for no SLO)",
                request.id
            )));
        }
        let cells = self.request_cells(request.seq_len);
        if cells > self.capacity_cells {
            return Err(RuntimeError::CapacityExceeded(format!(
                "request {} needs {cells} tile cells but the layer tile has {} \
                 (raise pus_per_layer or shorten the sequence)",
                request.id, self.capacity_cells
            )));
        }
        self.queue.push_back(request);
        Ok(())
    }

    /// Index of the request the policy would serve next, if any.
    fn next_candidate(&self) -> Option<usize> {
        match self.config.policy {
            // FCFS queues are served front-first (submission order).
            SchedulingPolicy::Fcfs => (!self.queue.is_empty()).then_some(0),
            policy => {
                let mut best: Option<usize> = None;
                for (index, request) in self.queue.iter().enumerate() {
                    if best.is_none_or(|b| policy.before(request, &self.queue[b])) {
                        best = Some(index);
                    }
                }
                best
            }
        }
    }

    /// Continuous (iteration-level) batching: pops up to `slots` queued
    /// requests in policy order for admission into an *already running*
    /// batch at a token boundary. `fits` is the caller's admission gate —
    /// typically a KV-cell capacity check that accumulates the cells each
    /// admitted prompt will occupy. Like [`BatchScheduler::next_batch`],
    /// admission stops at the first policy-ordered request the gate
    /// rejects (no skip-ahead), so FCFS keeps strict arrival order and
    /// EDF/priority never starve their most-urgent request.
    ///
    /// Returns the admitted requests in admission order (possibly empty);
    /// rejected and unexamined requests stay queued.
    pub fn admit_continuous(
        &mut self,
        slots: usize,
        mut fits: impl FnMut(&InferenceRequest) -> bool,
    ) -> Vec<InferenceRequest> {
        let mut joined = Vec::new();
        while joined.len() < slots {
            let Some(candidate) = self.next_candidate() else {
                break;
            };
            if !fits(&self.queue[candidate]) {
                break;
            }
            let Some(request) = self.queue.remove(candidate) else {
                break;
            };
            joined.push(request);
        }
        joined
    }

    /// Forms the next batch in policy order: admits queued requests while
    /// both the batch-size cap and the tile capacity hold. Returns `None`
    /// when the queue is empty. A returned batch always satisfies
    /// `batch.len() <= max_batch_size` and `batch.cells_used <= capacity`.
    ///
    /// The batch executes padded to its longest sequence (that is the shape
    /// the device model evaluates), so admission charges *every* request the
    /// cells of the running maximum sequence length — a short request joining
    /// a long batch costs the long shape. Admission stops at the first
    /// policy-ordered request that no longer fits (no skip-ahead), so FCFS
    /// keeps its strict arrival order and EDF/priority never starve the
    /// request they rank most urgent.
    pub fn next_batch(&mut self) -> Option<Batch> {
        self.queue.front()?;
        let mut requests: Vec<InferenceRequest> = Vec::new();
        let mut max_seq_len = 0usize;
        while requests.len() < self.config.max_batch_size {
            let Some(candidate) = self.next_candidate() else {
                break;
            };
            let prospective_max = max_seq_len.max(self.queue[candidate].seq_len);
            let prospective_cells = (requests.len() + 1) * self.request_cells(prospective_max);
            if prospective_cells > self.capacity_cells {
                break;
            }
            max_seq_len = prospective_max;
            let Some(request) = self.queue.remove(candidate) else {
                break;
            };
            requests.push(request);
        }
        debug_assert!(!requests.is_empty(), "submit() rejects oversized requests");
        let cells_used = requests.len() * self.request_cells(max_seq_len);
        Some(Batch {
            requests,
            cells_used,
            max_seq_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyflex_baselines::{AcceleratorBackend, NonPim};

    fn scheduler(max_batch_size: usize, pus_per_layer: usize) -> BatchScheduler {
        BatchScheduler::new(
            HyFlexPimConfig::paper_default(),
            ModelConfig::bert_large(),
            SchedulerConfig {
                max_batch_size,
                max_wait_ns: 0.0,
                pus_per_layer,
                ..SchedulerConfig::default()
            },
        )
        .unwrap()
    }

    fn request(id: u64, seq_len: usize) -> InferenceRequest {
        InferenceRequest::new(id, id as f64, seq_len)
    }

    #[test]
    fn construction_validates_policy() {
        let hw = HyFlexPimConfig::paper_default();
        let model = ModelConfig::bert_large();
        for bad in [
            SchedulerConfig {
                max_batch_size: 0,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                pus_per_layer: 0,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                max_wait_ns: -1.0,
                ..SchedulerConfig::default()
            },
        ] {
            assert!(BatchScheduler::new(hw, model.clone(), bad).is_err());
        }
        assert!(BatchScheduler::new(hw, model, SchedulerConfig::default()).is_ok());
    }

    #[test]
    fn legacy_constructor_matches_the_backend_capacity_contract() {
        // The (hw, model) constructor must charge exactly the digital-cell
        // budget the pre-refactor scheduler used.
        let hw = HyFlexPimConfig::paper_default();
        let s = scheduler(4, 2);
        assert_eq!(s.capacity_cells(), 2 * hw.digital_cells_per_pu());
        let chip = hyflex_pim::arch::Chip::new(hw).unwrap();
        assert_eq!(
            s.request_cells(512),
            chip.digital_cells_for_layer(&ModelConfig::bert_large(), 512)
        );
    }

    #[test]
    fn generic_scheduler_admits_against_the_backend_budget() {
        let backend = Arc::new(AcceleratorBackend::new(
            NonPim::new(),
            ModelConfig::bert_large(),
        ));
        let capacity = backend.capacity();
        let mut s = BatchScheduler::for_backend(backend, SchedulerConfig::default()).unwrap();
        assert_eq!(s.capacity_cells(), capacity);
        for id in 0..20 {
            s.submit(request(id, 128)).unwrap();
        }
        while let Some(batch) = s.next_batch() {
            assert!(batch.cells_used <= s.capacity_cells());
            assert!(batch.len() <= 16);
        }
    }

    #[test]
    fn batches_never_exceed_size_cap_or_tile_capacity() {
        let mut s = scheduler(4, 1);
        // Mixed sequence lengths, far more requests than one batch holds.
        for id in 0..64 {
            let seq = [64usize, 128, 384, 512][id as usize % 4];
            s.submit(request(id, seq)).unwrap();
        }
        let mut drained = 0;
        let mut last_id = None;
        while let Some(batch) = s.next_batch() {
            assert!(batch.len() <= 4);
            assert!(!batch.is_empty());
            assert!(
                batch.cells_used <= s.capacity_cells(),
                "batch uses {} of {} cells",
                batch.cells_used,
                s.capacity_cells()
            );
            // Capacity is charged at the padded (max-seq) execution shape.
            let recomputed = batch.len() * s.request_cells(batch.max_seq_len);
            assert_eq!(batch.cells_used, recomputed);
            assert_eq!(
                batch.max_seq_len,
                batch.requests.iter().map(|r| r.seq_len).max().unwrap()
            );
            // FCFS: ids strictly increase across and within batches.
            for r in &batch.requests {
                assert!(last_id.is_none_or(|prev| r.id > prev));
                last_id = Some(r.id);
            }
            drained += batch.len();
        }
        assert_eq!(drained, 64);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn padding_waste_accounts_for_mixed_lengths() {
        let mut s = scheduler(4, 2);
        for (id, seq) in [64usize, 128, 256, 64].into_iter().enumerate() {
            s.submit(request(id as u64, seq)).unwrap();
        }
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.actual_token_count(), 64 + 128 + 256 + 64);
        assert_eq!(batch.padded_token_count(), 4 * 256);
        let expected = 1.0 - 512.0 / 1024.0;
        assert!((batch.padding_waste() - expected).abs() < 1e-12);

        // A uniform batch wastes nothing.
        let mut s = scheduler(2, 1);
        s.submit(request(0, 128)).unwrap();
        s.submit(request(1, 128)).unwrap();
        let batch = s.next_batch().unwrap();
        assert_eq!(batch.padding_waste(), 0.0);
    }

    #[test]
    fn capacity_binds_before_batch_size_for_long_sequences() {
        // At N = 8192 one BERT-Large request needs multiple PUs' worth of
        // digital cells, so a 1-PU tile rejects it outright...
        let mut one_pu = scheduler(16, 1);
        let err = one_pu.submit(request(0, 8192)).unwrap_err();
        assert!(matches!(err, RuntimeError::CapacityExceeded(_)));
        // ...while a 8-PU tile accepts it but fits fewer than max_batch_size
        // per batch.
        let mut wide = scheduler(16, 8);
        for id in 0..4 {
            wide.submit(request(id, 8192)).unwrap();
        }
        let batch = wide.next_batch().unwrap();
        assert!(batch.len() < 4, "capacity should split the batch");
        assert!(batch.cells_used <= wide.capacity_cells());
    }

    #[test]
    fn submit_rejects_degenerate_sequences() {
        let mut s = scheduler(4, 1);
        assert!(s.submit(request(0, 0)).is_err());
        assert!(s
            .submit(request(1, 128).with_deadline_ns(f64::NAN))
            .is_err());
        assert!(s.submit(InferenceRequest::new(2, f64::NAN, 128)).is_err());
        assert_eq!(s.queue_len(), 0);
        assert!(s.next_batch().is_none());
        assert!(s.oldest_arrival_ns().is_none());
        assert!(s.fill_time_ns().is_none());
    }

    #[test]
    fn shed_doomed_drops_only_unmeetable_deadlines() {
        let mut s = scheduler(8, 1);
        s.submit(request(0, 128)).unwrap(); // no deadline: never shed
        s.submit(request(1, 128).with_deadline_ns(1_000.0)).unwrap();
        s.submit(request(2, 128).with_deadline_ns(50_000.0))
            .unwrap();
        s.submit(request(3, 128).with_deadline_ns(10_000.0))
            .unwrap();
        // Launching at t = 5 000 with a 10 000 ns service estimate completes
        // at 15 000: requests 1 (deadline 1 000) and 3 (deadline 10 000)
        // cannot make it; 2 (deadline 50 000) and the SLO-less 0 survive.
        let shed = s.shed_doomed(5_000.0, |_| 10_000.0);
        let shed_ids: Vec<u64> = shed.iter().map(|r| r.id).collect();
        assert_eq!(shed_ids, vec![1, 3]);
        assert_eq!(s.queue_len(), 2);
        let batch = s.next_batch().unwrap();
        let kept_ids: Vec<u64> = batch.requests.iter().map(|r| r.id).collect();
        assert_eq!(kept_ids, vec![0, 2], "survivor order preserved");
        // Nothing doomed: the fast path returns empty without reordering.
        let mut s = scheduler(8, 1);
        s.submit(request(0, 128).with_deadline_ns(1e9)).unwrap();
        assert!(s.shed_doomed(0.0, |_| 1.0).is_empty());
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn preemption_evicts_the_policy_worst_request_only_when_more_urgent() {
        // EDF: a tight-deadline newcomer displaces the deadline-less victim.
        let mut s = policy_scheduler(SchedulingPolicy::Edf, 4);
        s.submit(request(0, 128)).unwrap(); // no deadline
        s.submit(request(1, 128).with_deadline_ns(5_000.0)).unwrap();
        let urgent = request(2, 128).with_deadline_ns(1_000.0);
        let victim = s.preempt_for(&urgent).unwrap();
        assert_eq!(victim.id, 0);
        assert_eq!(s.queue_len(), 1);
        // A looser newcomer than every queued request preempts nothing.
        let loose = request(3, 128).with_deadline_ns(9e9);
        assert!(s.preempt_for(&loose).is_none());
        assert_eq!(s.queue_len(), 1);
        // FCFS: the newcomer is always the policy-worst, so never preempts.
        let mut s = policy_scheduler(SchedulingPolicy::Fcfs, 4);
        s.submit(request(0, 128)).unwrap();
        assert!(s.preempt_for(&request(9, 128)).is_none());
        // Empty queue: nothing to evict.
        let mut s = policy_scheduler(SchedulingPolicy::Edf, 4);
        assert!(s.preempt_for(&urgent).is_none());
    }

    #[test]
    fn continuous_admission_respects_slots_gate_and_policy_order() {
        let mut s = scheduler(8, 1);
        for id in 0..6 {
            s.submit(request(id, 128)).unwrap();
        }
        // Slots bind: only two admitted, FCFS order, rest stay queued.
        let joined = s.admit_continuous(2, |_| true);
        assert_eq!(joined.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s.queue_len(), 4);
        // The gate binds: admission stops at the first rejection with no
        // skip-ahead, even if later requests would pass.
        let mut budget = 1;
        let joined = s.admit_continuous(8, |_| {
            if budget > 0 {
                budget -= 1;
                true
            } else {
                false
            }
        });
        assert_eq!(joined.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(s.queue_len(), 3);
        // Zero slots admits nothing; an empty queue admits nothing.
        assert!(s.admit_continuous(0, |_| true).is_empty());
        let drained = s.admit_continuous(8, |_| true);
        assert_eq!(drained.len(), 3);
        assert!(s.admit_continuous(8, |_| true).is_empty());

        // EDF: continuous admission serves the tightest deadline first.
        let mut s = policy_scheduler(SchedulingPolicy::Edf, 4);
        s.submit(request(0, 128).with_deadline_ns(9_000.0)).unwrap();
        s.submit(request(1, 128).with_deadline_ns(1_000.0)).unwrap();
        let joined = s.admit_continuous(1, |_| true);
        assert_eq!(joined[0].id, 1);
    }

    #[test]
    fn front_arrival_matches_oldest_under_sorted_submission() {
        let mut s = scheduler(2, 1);
        assert_eq!(s.front_arrival_ns(), None);
        for id in 0..6 {
            s.submit(request(id, 128)).unwrap();
        }
        while s.queue_len() > 0 {
            assert_eq!(s.front_arrival_ns(), s.oldest_arrival_ns());
            s.next_batch().unwrap();
        }
        assert_eq!(s.front_arrival_ns(), None);
    }

    fn policy_scheduler(policy: SchedulingPolicy, max_batch_size: usize) -> BatchScheduler {
        BatchScheduler::new(
            HyFlexPimConfig::paper_default(),
            ModelConfig::bert_large(),
            SchedulerConfig {
                max_batch_size,
                max_wait_ns: 0.0,
                policy,
                ..SchedulerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn edf_serves_tight_deadlines_first_and_slo_less_last() {
        let mut s = policy_scheduler(SchedulingPolicy::Edf, 2);
        s.submit(request(0, 128)).unwrap(); // no deadline
        s.submit(request(1, 128).with_deadline_ns(9_000.0)).unwrap();
        s.submit(request(2, 128).with_deadline_ns(1_000.0)).unwrap();
        s.submit(request(3, 128).with_deadline_ns(5_000.0)).unwrap();
        let ids: Vec<Vec<u64>> = std::iter::from_fn(|| s.next_batch())
            .map(|b| b.requests.iter().map(|r| r.id).collect())
            .collect();
        assert_eq!(ids, vec![vec![2, 3], vec![1, 0]]);
    }

    #[test]
    fn priority_classes_are_strict_with_fcfs_within_a_class() {
        let mut s = policy_scheduler(SchedulingPolicy::Priority, 2);
        s.submit(request(0, 128).with_priority(2)).unwrap();
        s.submit(request(1, 128).with_priority(0)).unwrap();
        s.submit(request(2, 128).with_priority(1)).unwrap();
        s.submit(request(3, 128).with_priority(0)).unwrap();
        let ids: Vec<Vec<u64>> = std::iter::from_fn(|| s.next_batch())
            .map(|b| b.requests.iter().map(|r| r.id).collect())
            .collect();
        assert_eq!(ids, vec![vec![1, 3], vec![2, 0]]);
    }

    #[test]
    fn policy_batches_respect_the_same_caps_as_fcfs() {
        for policy in SchedulingPolicy::ALL {
            let mut s = policy_scheduler(policy, 4);
            for id in 0..32 {
                let seq = [64usize, 512, 128, 384][id as usize % 4];
                let r = request(id, seq)
                    .with_deadline_ns(1e6 - id as f64)
                    .with_priority((id % 3) as u8);
                s.submit(r).unwrap();
            }
            let mut drained = 0;
            while let Some(batch) = s.next_batch() {
                assert!(batch.len() <= 4);
                assert!(batch.cells_used <= s.capacity_cells());
                assert_eq!(
                    batch.cells_used,
                    batch.len() * s.request_cells(batch.max_seq_len)
                );
                drained += batch.len();
            }
            assert_eq!(drained, 32, "{policy} dropped requests");
        }
    }

    #[test]
    fn fill_time_tracks_the_queues_actual_shape() {
        // Size cap binds: the fill time is the target-th request's arrival.
        let mut s = scheduler(3, 1);
        s.submit(request(0, 64)).unwrap();
        s.submit(request(1, 64)).unwrap();
        assert_eq!(s.fill_time_ns(), None, "two of three queued");
        s.submit(request(2, 64)).unwrap();
        assert_eq!(s.fill_time_ns(), Some(2.0));
        // Extra requests never move the fill time earlier or later.
        s.submit(request(3, 64)).unwrap();
        assert_eq!(s.fill_time_ns(), Some(2.0));

        // Capacity binds: a long request shrinks the target, so a queue
        // that was not full becomes full the moment the long one arrives.
        let mut s = scheduler(16, 2);
        s.submit(request(0, 64)).unwrap();
        s.submit(request(1, 64)).unwrap();
        assert_eq!(s.fill_time_ns(), None);
        let long = 4096;
        let capacity_batch = s.capacity_cells() / s.request_cells(long);
        assert!(
            (1..=3).contains(&capacity_batch),
            "test premise: long requests bind (capacity batch {capacity_batch})"
        );
        s.submit(request(2, long)).unwrap();
        assert_eq!(s.fill_time_ns(), Some(2.0));
    }
}
